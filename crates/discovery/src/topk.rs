//! Top-k rule discovery under objective + subjective measures, the
//! learned user-preference model, coverage diversification, and the
//! anytime iterator ([37]; paper §3 "Rule discovery" (a)–(b), §5.2 "Prior
//! knowledge learning").
//!
//! * **Objective** measures: support, confidence.
//! * **Subjective** measures: a [`PreferenceModel`] — logistic regression
//!   over structural rule features — trained from user labels ("After a
//!   handful of rules are labeled, Rock takes them as training instances,
//!   and trains a scoring model to learn the preferences of users").
//! * **Diversification**: greedy max-coverage selection so the returned
//!   top-k rules flag *different* data (§5.2: "Rock (optionally) uses the
//!   data coverage as the diversification metric").
//! * **Anytime**: [`AnytimeMiner`] yields the next-best rules on demand
//!   and accepts incremental feedback that retrains the preference model.

use rock_ml::linear::{LogisticRegression, SgdParams};
use rock_rees::{Predicate, Rule};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// A scored rule (index into the candidate pool plus its score parts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleScore {
    pub rule_index: usize,
    pub objective: f64,
    pub subjective: f64,
    pub total: f64,
}

/// Structural features of a rule for the preference model.
pub fn rule_features(rule: &Rule) -> Vec<f64> {
    let mut n_const = 0.0;
    let mut n_attr = 0.0;
    let mut n_ml = 0.0;
    let mut n_temporal = 0.0;
    let mut n_null = 0.0;
    for p in rule.all_predicates() {
        match p {
            Predicate::Const { .. } => n_const += 1.0,
            Predicate::Attr { .. } => n_attr += 1.0,
            Predicate::Temporal { .. } | Predicate::MlRank { .. } => n_temporal += 1.0,
            Predicate::IsNull { .. } => n_null += 1.0,
            p if p.is_ml() => n_ml += 1.0,
            _ => {}
        }
    }
    vec![
        rule.precondition.len() as f64 / 4.0,
        n_const / 4.0,
        n_attr / 4.0,
        n_ml / 2.0,
        n_temporal / 2.0,
        n_null,
        rule.support.min(1.0),
        rule.confidence,
        rule.uses_ml() as u8 as f64,
    ]
}

/// Learned user-preference model over rule features.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    lr: LogisticRegression,
    trained: bool,
}

impl Default for PreferenceModel {
    fn default() -> Self {
        Self::new()
    }
}

impl PreferenceModel {
    pub fn new() -> Self {
        PreferenceModel {
            lr: LogisticRegression::zeros(9),
            trained: false,
        }
    }

    /// Train from labeled rules (true = useful).
    pub fn train(&mut self, labeled: &[(&Rule, bool)]) {
        if labeled.is_empty() {
            return;
        }
        let xs: Vec<Vec<f64>> = labeled.iter().map(|(r, _)| rule_features(r)).collect();
        let ys: Vec<bool> = labeled.iter().map(|(_, y)| *y).collect();
        self.lr = LogisticRegression::zeros(9);
        self.lr.train(&xs, &ys, SgdParams::default());
        self.trained = true;
    }

    /// Preference score in [0, 1]; 0.5 (neutral) before any training.
    pub fn score(&self, rule: &Rule) -> f64 {
        if !self.trained {
            return 0.5;
        }
        self.lr.prob(&rule_features(rule))
    }

    pub fn is_trained(&self) -> bool {
        self.trained
    }
}

/// Score all rules: `total = w_obj · (supp_norm + conf)/2 + w_subj · pref`.
/// `supp_norm` rescales log-support into [0, 1] (raw support spans many
/// orders of magnitude).
pub fn score_rules(
    rules: &[Rule],
    pref: &PreferenceModel,
    w_objective: f64,
    w_subjective: f64,
) -> Vec<RuleScore> {
    rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let supp_norm = if r.support <= 0.0 {
                0.0
            } else {
                // map 1e-8..1 to 0..1 on a log scale
                ((r.support.log10() + 8.0) / 8.0).clamp(0.0, 1.0)
            };
            let objective = (supp_norm + r.confidence) / 2.0;
            let subjective = pref.score(r);
            RuleScore {
                rule_index: i,
                objective,
                subjective,
                total: w_objective * objective + w_subjective * subjective,
            }
        })
        .collect()
}

/// Greedy diversified top-k: pick the highest-scored rule whose *coverage*
/// (the set of tuples its precondition touches, supplied by the caller)
/// adds the most uncovered elements, scaled by its score.
pub fn diversified_top_k(
    scores: &[RuleScore],
    coverage: &[FxHashSet<u32>],
    k: usize,
) -> Vec<usize> {
    assert_eq!(scores.len(), coverage.len());
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered: FxHashSet<u32> = FxHashSet::default();
    let mut remaining: Vec<usize> = (0..scores.len()).collect();
    while chosen.len() < k && !remaining.is_empty() {
        let Some((pos, &best)) = remaining.iter().enumerate().max_by(|(_, &a), (_, &b)| {
            let ga = gain(&covered, &coverage[a], scores[a].total);
            let gb = gain(&covered, &coverage[b], scores[b].total);
            ga.total_cmp(&gb).then_with(|| b.cmp(&a))
        }) else {
            break;
        };
        chosen.push(best);
        covered.extend(coverage[best].iter().copied());
        remaining.remove(pos);
    }
    chosen
}

fn gain(covered: &FxHashSet<u32>, cov: &FxHashSet<u32>, score: f64) -> f64 {
    let fresh = cov.iter().filter(|x| !covered.contains(x)).count();
    score * (1.0 + fresh as f64)
}

/// Anytime top-k miner: holds a scored candidate pool, yields the next
/// best batch on demand, and accepts feedback that re-ranks the remainder
/// ("an anytime algorithm to continually return the next top-k results …
/// iteratively gathers feedback from the users and incrementally trains
/// the model").
pub struct AnytimeMiner {
    pool: Vec<Rule>,
    emitted: FxHashSet<usize>,
    pref: PreferenceModel,
    feedback: Vec<(usize, bool)>,
    pub w_objective: f64,
    pub w_subjective: f64,
}

impl AnytimeMiner {
    pub fn new(pool: Vec<Rule>) -> Self {
        AnytimeMiner {
            pool,
            emitted: FxHashSet::default(),
            pref: PreferenceModel::new(),
            feedback: Vec::new(),
            w_objective: 0.6,
            w_subjective: 0.4,
        }
    }

    /// Number of rules not yet emitted.
    pub fn remaining(&self) -> usize {
        self.pool.len() - self.emitted.len()
    }

    /// Yield the next `k` best un-emitted rules (indices into the pool).
    pub fn next_k(&mut self, k: usize) -> Vec<usize> {
        let scores = score_rules(&self.pool, &self.pref, self.w_objective, self.w_subjective);
        let mut order: Vec<usize> = (0..self.pool.len())
            .filter(|i| !self.emitted.contains(i))
            .collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .total
                .total_cmp(&scores[a].total)
                .then_with(|| a.cmp(&b))
        });
        order.truncate(k);
        self.emitted.extend(order.iter().copied());
        order
    }

    /// Record user feedback on an emitted rule and retrain the preference
    /// model incrementally.
    pub fn feedback(&mut self, rule_index: usize, useful: bool) {
        self.feedback.push((rule_index, useful));
        let labeled: Vec<(&Rule, bool)> = self
            .feedback
            .iter()
            .map(|(i, y)| (&self.pool[*i], *y))
            .collect();
        self.pref.train(&labeled);
    }

    pub fn rule(&self, i: usize) -> &Rule {
        &self.pool[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, RelId};
    use rock_rees::{CmpOp, ModelRef};

    fn rule(name: &str, supp: f64, conf: f64, ml: bool) -> Rule {
        let mut pre = vec![Predicate::Attr {
            lvar: 0,
            lattr: AttrId(0),
            op: CmpOp::Eq,
            rvar: 1,
            rattr: AttrId(0),
        }];
        if ml {
            pre.push(Predicate::Ml {
                model: ModelRef::named("M"),
                lvar: 0,
                lattrs: vec![AttrId(0)],
                rvar: 1,
                rattrs: vec![AttrId(0)],
            });
        }
        let mut r = Rule::new(
            name,
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            pre,
            Predicate::Attr {
                lvar: 0,
                lattr: AttrId(1),
                op: CmpOp::Eq,
                rvar: 1,
                rattr: AttrId(1),
            },
        );
        r.support = supp;
        r.confidence = conf;
        r
    }

    #[test]
    fn objective_scores_order_by_measures() {
        let rules = vec![
            rule("good", 1e-2, 0.99, false),
            rule("weak", 1e-7, 0.9, false),
        ];
        let pref = PreferenceModel::new();
        let scores = score_rules(&rules, &pref, 1.0, 0.0);
        assert!(scores[0].total > scores[1].total);
        assert_eq!(scores[0].subjective, 0.5);
    }

    #[test]
    fn preference_model_learns_ml_bias() {
        // user likes ML rules
        let ml_rules: Vec<Rule> = (0..10)
            .map(|i| rule(&format!("m{i}"), 1e-3, 0.95, true))
            .collect();
        let plain: Vec<Rule> = (0..10)
            .map(|i| rule(&format!("p{i}"), 1e-3, 0.95, false))
            .collect();
        let mut labeled: Vec<(&Rule, bool)> = Vec::new();
        labeled.extend(ml_rules.iter().map(|r| (r, true)));
        labeled.extend(plain.iter().map(|r| (r, false)));
        let mut pref = PreferenceModel::new();
        pref.train(&labeled);
        assert!(pref.is_trained());
        assert!(
            pref.score(&rule("x", 1e-3, 0.95, true)) > pref.score(&rule("y", 1e-3, 0.95, false))
        );
    }

    #[test]
    fn diversified_topk_prefers_fresh_coverage() {
        let rules = vec![
            rule("a", 1e-2, 0.99, false),
            rule("b", 1e-2, 0.98, false),
            rule("c", 1e-2, 0.97, false),
        ];
        let pref = PreferenceModel::new();
        let scores = score_rules(&rules, &pref, 1.0, 0.0);
        // a and b cover the same tuples; c covers different ones
        let coverage = vec![
            [1u32, 2, 3].into_iter().collect(),
            [1u32, 2, 3].into_iter().collect(),
            [7u32, 8].into_iter().collect(),
        ];
        let picked = diversified_top_k(&scores, &coverage, 2);
        assert_eq!(picked.len(), 2);
        assert!(picked.contains(&0));
        assert!(
            picked.contains(&2),
            "diversification must pick c over b: {picked:?}"
        );
    }

    #[test]
    fn anytime_yields_disjoint_batches_and_learns() {
        let pool: Vec<Rule> = (0..6)
            .map(|i| {
                rule(
                    &format!("r{i}"),
                    1e-3 * (i + 1) as f64,
                    0.9 + 0.01 * i as f64,
                    i % 2 == 0,
                )
            })
            .collect();
        let mut miner = AnytimeMiner::new(pool);
        let first = miner.next_k(2);
        let second = miner.next_k(2);
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        assert!(first.iter().all(|i| !second.contains(i)));
        assert_eq!(miner.remaining(), 2);
        // feedback flows into the preference model
        miner.feedback(first[0], true);
        miner.feedback(first[1], false);
        let third = miner.next_k(10);
        assert_eq!(third.len(), 2);
        assert_eq!(miner.remaining(), 0);
    }

    #[test]
    fn rule_features_shape() {
        let f = rule_features(&rule("x", 0.5, 0.9, true));
        assert_eq!(f.len(), 9);
        assert_eq!(f[8], 1.0);
    }
}
