//! Predicate pruning and polynomial-expression discovery (paper §5.4).
//!
//! * **FDX-style correlation pruning** — "given a target predicate, Rock
//!   adopts an unsupervised ML model based on FDX [95] to prune predicate
//!   candidates that are not correlated to the target, to speed up rule
//!   discovery." FDX estimates structure from *value-difference*
//!   statistics: for sampled tuple pairs, whether attributes agree. We
//!   compute, per candidate attribute `A` and target `B`, the mutual
//!   information between the agree-indicators of `A` and `B` over sampled
//!   pairs, and prune candidates below a threshold.
//! * **Polynomial expressions** — gradient boosting ranks numerical
//!   attributes (the XGBoost role), LASSO fits a sparse polynomial over
//!   the selected features; non-zero weights become arithmetic
//!   consistency checks (e.g. `total ≈ price · qty`).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rock_data::{AttrId, Database, RelId};
use rock_ml::linear::Lasso;
use rock_ml::tree::GradientBoosting;

/// Ordinary least squares restricted to the `support` columns of `xs`,
/// with an intercept; solved via ridge-stabilized normal equations and
/// Gaussian elimination (supports are tiny, ≤ a dozen terms). Returns the
/// support weights and the intercept.
#[allow(clippy::needless_range_loop)] // Gaussian elimination indexes rows/cols
fn ols(xs: &[Vec<f64>], ys: &[f64], support: &[usize]) -> (Vec<f64>, f64) {
    let k = support.len() + 1; // + intercept column
    let mut ata = vec![vec![0.0f64; k]; k];
    let mut aty = vec![0.0f64; k];
    for (row, &y) in xs.iter().zip(ys) {
        let mut a = Vec::with_capacity(k);
        for &j in support {
            a.push(row[j]);
        }
        a.push(1.0);
        for i in 0..k {
            for j in 0..k {
                ata[i][j] += a[i] * a[j];
            }
            aty[i] += a[i] * y;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-8; // ridge jitter for collinear supports
    }
    // Gaussian elimination with partial pivoting
    let mut m = ata;
    let mut b = aty;
    for col in 0..k {
        let pivot = m
            .iter()
            .enumerate()
            .skip(col)
            .map(|(i, r)| (i, r[col].abs()))
            .max_by(|a, c| a.1.total_cmp(&c.1))
            .map_or(col, |(i, _)| i);
        m.swap(col, pivot);
        b.swap(col, pivot);
        let diag = m[col][col];
        if diag.abs() < 1e-12 {
            continue;
        }
        for row in (col + 1)..k {
            let f = m[row][col] / diag;
            for c in col..k {
                m[row][c] -= f * m[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = b[row];
        for c in (row + 1)..k {
            acc -= m[row][c] * w[c];
        }
        w[row] = if m[row][row].abs() < 1e-12 {
            0.0
        } else {
            acc / m[row][row]
        };
    }
    let intercept = w.pop().unwrap_or(0.0);
    (w, intercept)
}

/// Mutual information (in nats) between two binary vectors.
pub fn binary_mutual_information(xs: &[bool], ys: &[bool]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint = [[0f64; 2]; 2];
    for (&x, &y) in xs.iter().zip(ys) {
        joint[x as usize][y as usize] += 1.0;
    }
    let nf = n as f64;
    let px = [
        (joint[0][0] + joint[0][1]) / nf,
        (joint[1][0] + joint[1][1]) / nf,
    ];
    let py = [
        (joint[0][0] + joint[1][0]) / nf,
        (joint[0][1] + joint[1][1]) / nf,
    ];
    let mut mi = 0.0;
    for x in 0..2 {
        for y in 0..2 {
            let pxy = joint[x][y] / nf;
            if pxy > 0.0 && px[x] > 0.0 && py[y] > 0.0 {
                mi += pxy * (pxy / (px[x] * py[y])).ln();
            }
        }
    }
    mi.max(0.0)
}

/// FDX-style pruning: which attributes correlate (in agree-indicator MI
/// over sampled tuple pairs) with the target attribute. Returns attribute
/// ids with MI ≥ `min_mi`, sorted by MI descending.
#[allow(clippy::needless_range_loop)] // parallel per-attribute vectors
pub fn correlated_attributes(
    db: &Database,
    rel: RelId,
    target: AttrId,
    pairs: usize,
    min_mi: f64,
    seed: u64,
) -> Vec<(AttrId, f64)> {
    let r = db.relation(rel);
    let tids: Vec<_> = r.tids().collect();
    if tids.len() < 2 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agree_target = Vec::with_capacity(pairs);
    let arity = r.schema.arity();
    let mut agree_attr: Vec<Vec<bool>> = vec![Vec::with_capacity(pairs); arity];
    for _ in 0..pairs {
        let i = tids[rng.gen_range(0..tids.len())];
        let j = tids[rng.gen_range(0..tids.len())];
        if i == j {
            continue;
        }
        let (Some(ti), Some(tj)) = (r.get(i), r.get(j)) else {
            continue;
        };
        agree_target.push(ti.get(target).sql_eq(tj.get(target)));
        for a in 0..arity {
            let attr = AttrId(a as u16);
            agree_attr[a].push(ti.get(attr).sql_eq(tj.get(attr)));
        }
    }
    let mut out: Vec<(AttrId, f64)> = (0..arity)
        .filter(|&a| AttrId(a as u16) != target)
        .map(|a| {
            (
                AttrId(a as u16),
                binary_mutual_information(&agree_attr[a], &agree_target),
            )
        })
        .filter(|(_, mi)| *mi >= min_mi)
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// A discovered polynomial expression `target ≈ Σ wᵢ · termᵢ` over
/// numeric attributes (degree ≤ 2 terms: attributes and pairwise
/// products).
#[derive(Debug, Clone)]
pub struct PolynomialExpression {
    pub rel: RelId,
    pub target: AttrId,
    /// (term attributes — one = linear, two = product, weight)
    pub terms: Vec<(Vec<AttrId>, f64)>,
    pub intercept: f64,
    /// mean absolute residual on the training rows
    pub mean_abs_residual: f64,
}

impl PolynomialExpression {
    /// Evaluate on a tuple's numeric view; `None` if a needed attribute is
    /// null/non-numeric.
    pub fn eval(&self, values: &[rock_data::Value]) -> Option<f64> {
        let mut y = self.intercept;
        for (attrs, w) in &self.terms {
            let mut term = *w;
            for a in attrs {
                term *= values.get(a.index())?.as_f64()?;
            }
            y += term;
        }
        Some(y)
    }

    /// Is a tuple consistent with the expression within `tolerance`
    /// (relative)?
    pub fn check(&self, values: &[rock_data::Value], tolerance: f64) -> Option<bool> {
        let pred = self.eval(values)?;
        let actual = values.get(self.target.index())?.as_f64()?;
        let scale = actual.abs().max(pred.abs()).max(1.0);
        Some((pred - actual).abs() / scale <= tolerance)
    }
}

/// Discover a polynomial expression for `target` from the relation's
/// numeric attributes: boosting-based feature ranking prunes attributes,
/// then LASSO fits a sparse degree-2 polynomial (§5.4).
pub fn discover_polynomial(
    db: &Database,
    rel: RelId,
    target: AttrId,
    lambda: f64,
) -> Option<PolynomialExpression> {
    let r = db.relation(rel);
    let numeric: Vec<AttrId> = r
        .schema
        .iter_attrs()
        .filter(|(a, meta)| *a != target && meta.ty.is_numeric())
        .map(|(a, _)| a)
        .collect();
    if numeric.is_empty() {
        return None;
    }
    // rows with target and all numeric attrs non-null
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for t in r.iter() {
        let Some(y) = t.get(target).as_f64() else {
            continue;
        };
        let feats: Option<Vec<f64>> = numeric.iter().map(|a| t.get(*a).as_f64()).collect();
        if let Some(f) = feats {
            xs.push(f);
            ys.push(y);
        }
    }
    if xs.len() < 4 {
        return None;
    }
    // 1. feature pruning. The boosting ranker exists to cut *wide* numeric
    // schemas down before the quadratic term expansion; greedy stumps give
    // zero importance to a small-magnitude addend that a collinear feature
    // shadows (e.g. `fee` next to `amount` in `total = amount + fee`), so
    // for narrow schemas we keep everything and let LASSO select terms.
    let mut selected: Vec<usize> = if numeric.len() <= 6 {
        (0..numeric.len()).collect()
    } else {
        let gb = GradientBoosting::fit(&xs, &ys, 24, 0.3);
        let mut top = gb.selected_features(0.001);
        top.truncate(6);
        if top.is_empty() {
            top = (0..numeric.len().min(6)).collect();
        }
        top
    };
    selected.sort_unstable();
    // 2. degree-2 terms over selected features
    let mut terms: Vec<Vec<usize>> = selected.iter().map(|&i| vec![i]).collect();
    for (ii, &i) in selected.iter().enumerate() {
        for &j in &selected[ii..] {
            terms.push(vec![i, j]);
        }
    }
    let poly_xs: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            terms
                .iter()
                .map(|t| t.iter().map(|&i| x[i]).product())
                .collect()
        })
        .collect();
    // Standardize term columns and the response before LASSO — the raw
    // degree-2 design matrix is badly conditioned (amount² spans orders of
    // magnitude more than amount), which both slows coordinate descent and
    // makes the L1 shrinkage wildly non-uniform across terms.
    let dim = terms.len();
    let mut scale = vec![0.0f64; dim];
    for row in &poly_xs {
        for (j, v) in row.iter().enumerate() {
            scale[j] = scale[j].max(v.abs());
        }
    }
    for s in &mut scale {
        if *s == 0.0 {
            *s = 1.0;
        }
    }
    let y_scale = ys.iter().fold(0.0f64, |m, y| m.max(y.abs())).max(1.0);
    let scaled_xs: Vec<Vec<f64>> = poly_xs
        .iter()
        .map(|row| row.iter().zip(&scale).map(|(v, s)| v / s).collect())
        .collect();
    let scaled_ys: Vec<f64> = ys.iter().map(|y| y / y_scale).collect();
    let lasso = Lasso::fit(&scaled_xs, &scaled_ys, lambda / 100.0, 600);
    // Relaxed LASSO: the L1 penalty biases weights toward zero (≈1%
    // relative — enough to mis-flag small-magnitude rows at a 2%
    // tolerance), so refit OLS on the selected support to debias.
    let support: Vec<usize> = lasso
        .weights
        .iter()
        .enumerate()
        .filter(|(_, w)| w.abs() > 1e-6)
        .map(|(i, _)| i)
        .collect();
    if support.is_empty() {
        return None;
    }
    let (ols_w, ols_b) = ols(&scaled_xs, &scaled_ys, &support);
    let mut kept: Vec<(Vec<AttrId>, f64)> = Vec::new();
    for (si, &ti) in support.iter().enumerate() {
        // unscale: w' = w · y_scale / term_scale
        let w = ols_w[si] * y_scale / scale[ti];
        if w.abs() > 1e-9 {
            kept.push((terms[ti].iter().map(|&i| numeric[i]).collect(), w));
        }
    }
    if kept.is_empty() {
        return None;
    }
    let expr = PolynomialExpression {
        rel,
        target,
        terms: kept,
        intercept: ols_b * y_scale,
        mean_abs_residual: 0.0,
    };
    // residual on training rows
    let mut resid = 0.0;
    let mut n = 0usize;
    for t in r.iter() {
        if let (Some(pred), Some(y)) = (expr.eval(&t.values), t.get(target).as_f64()) {
            resid += (pred - y).abs();
            n += 1;
        }
    }
    Some(PolynomialExpression {
        mean_abs_residual: if n == 0 {
            f64::INFINITY
        } else {
            resid / n as f64
        },
        ..expr
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, Value};

    #[test]
    fn mi_basics() {
        let x = vec![true, true, false, false];
        assert!(binary_mutual_information(&x, &x) > 0.6); // ≈ ln 2
        let indep = vec![true, false, true, false];
        assert!(binary_mutual_information(&x, &indep) < 1e-9);
        assert_eq!(binary_mutual_information(&[], &[]), 0.0);
    }

    fn corr_db() -> Database {
        // city determines area_code; id is independent of both
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[
                ("id", AttrType::Int),
                ("city", AttrType::Str),
                ("area_code", AttrType::Str),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..40i64 {
            let (c, a) = if i % 2 == 0 {
                ("Beijing", "010")
            } else {
                ("Shanghai", "021")
            };
            r.insert_row(vec![Value::Int(i), Value::str(c), Value::str(a)])
                .unwrap();
        }
        db
    }

    #[test]
    fn fdx_pruning_keeps_correlated_attribute() {
        let db = corr_db();
        let kept = correlated_attributes(&db, RelId(0), AttrId(2), 600, 0.05, 1);
        assert!(!kept.is_empty());
        assert_eq!(kept[0].0, AttrId(1), "city must rank first: {kept:?}");
        assert!(
            !kept.iter().any(|(a, _)| *a == AttrId(0)),
            "independent id must be pruned: {kept:?}"
        );
    }

    fn poly_db() -> Database {
        // total = price * qty
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Order",
            &[
                ("price", AttrType::Float),
                ("qty", AttrType::Float),
                ("noise", AttrType::Float),
                ("total", AttrType::Float),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 1..40 {
            let price = (i % 7 + 1) as f64 * 10.0;
            let qty = (i % 5 + 1) as f64;
            let noise = ((i * 31) % 13) as f64;
            r.insert_row(vec![
                Value::Float(price),
                Value::Float(qty),
                Value::Float(noise),
                Value::Float(price * qty),
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn polynomial_recovers_price_times_qty() {
        let db = poly_db();
        let expr = discover_polynomial(&db, RelId(0), AttrId(3), 0.05).expect("expression");
        assert!(
            expr.mean_abs_residual < 2.0,
            "residual {} terms {:?}",
            expr.mean_abs_residual,
            expr.terms
        );
        // the product term price·qty must dominate
        let product_w: f64 = expr
            .terms
            .iter()
            .filter(|(attrs, _)| attrs.as_slice() == [AttrId(0), AttrId(1)])
            .map(|(_, w)| *w)
            .sum();
        assert!((product_w - 1.0).abs() < 0.2, "terms {:?}", expr.terms);
        // a consistent row checks out; a corrupted one does not
        let good = vec![
            Value::Float(20.0),
            Value::Float(3.0),
            Value::Float(1.0),
            Value::Float(60.0),
        ];
        let bad = vec![
            Value::Float(20.0),
            Value::Float(3.0),
            Value::Float(1.0),
            Value::Float(999.0),
        ];
        assert_eq!(expr.check(&good, 0.05), Some(true));
        assert_eq!(expr.check(&bad, 0.05), Some(false));
        assert_eq!(
            expr.check(&[Value::Null, Value::Null, Value::Null, Value::Null], 0.05),
            None
        );
    }

    #[test]
    fn polynomial_none_without_numeric_columns() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Float)],
        )]);
        let db = Database::new(&schema);
        assert!(discover_polynomial(&db, RelId(0), AttrId(1), 0.1).is_none());
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use rock_data::{AttrType, Database, DatabaseSchema, RelationSchema, Value};

    #[test]
    fn debug_linear_sum_fit() {
        // the rock-core poly.rs scenario: total = amount + fee, fee = amount/10
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Payment",
            &[
                ("amount", AttrType::Float),
                ("fee", AttrType::Float),
                ("total", AttrType::Float),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 1..40 {
            let amount = i as f64 * 10.0;
            let fee = i as f64;
            r.insert_row(vec![
                Value::Float(amount),
                Value::Float(fee),
                Value::Float(amount + fee),
            ])
            .unwrap();
        }
        let e = discover_polynomial(&db, RelId(0), AttrId(2), 0.05).unwrap();
        eprintln!(
            "terms={:?} intercept={} resid={}",
            e.terms, e.intercept, e.mean_abs_residual
        );
        // residual must be tiny relative to smallest total (11)
        assert!(e.mean_abs_residual < 0.05, "resid {}", e.mean_abs_residual);
        // and small rows must check out at 2% tolerance
        let row = vec![Value::Float(10.0), Value::Float(1.0), Value::Float(11.0)];
        assert_eq!(e.check(&row, 0.02), Some(true), "pred {:?}", e.eval(&row));
    }
}
