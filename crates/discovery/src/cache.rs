//! The predicate satisfaction-bitset cache behind the levelwise miner.
//!
//! Discovery's cost used to grow multiplicatively with level depth: every
//! candidate conjunction re-evaluated each of its predicates from raw
//! tuples. This module materializes, once per `(predicate, partition)`
//! over the candidate instance set, the bitset of satisfied instances
//! ([`rock_rees::measures::predicate_sat_bits`]) — ML-predicate outputs
//! included, so each embedded classifier runs once per instance rather
//! than once per candidate containing it. The levelwise loop then measures
//! `supp(X ∧ p)` / `conf` with AND+popcount kernels over these bitsets.
//!
//! Materialized bitsets live behind a configurable byte budget with LRU
//! eviction ([`BitsetCache`]): a pair-domain bitset costs `n²/8` bytes, so
//! wide relations can overflow memory if every predicate's bitset were
//! pinned. Entries that no longer fit **spill back to re-evaluation** —
//! the cache simply rebuilds them on the next request (counted as a miss)
//! instead of returning an error, so the budget only ever trades time for
//! memory, never correctness. Hit/miss/eviction/byte counters are exposed
//! via [`CacheStats`] and surfaced in the miner's `DiscoveryReport`.

use rock_crystal::sync::{Arc, LockRank, OnceLock, RankedMutex};
use rock_data::{Bitset, Database, RelId, TupleId};
use rock_ml::ModelRegistry;
use rock_rees::measures::{measure_bits, pair_offdiag, predicate_sat_bits, Measures, SatBits};
use rock_rees::{EvalContext, Predicate, Rule};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Which materialized form of a predicate a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitsForm {
    /// A precondition predicate, in its natural (unary or pair) domain.
    Precondition,
    /// A consequence predicate, in its natural domain.
    Consequence,
    /// A unary consequence broadcast into the pair domain (built from the
    /// `Consequence` entry with a word-fill, not by re-evaluation).
    ConsequencePair,
}

/// Cache key: one bitset per `(predicate slot, partition)`. Predicates are
/// identified by their stable index in the predicate space (`Predicate`
/// itself is not hashable — it contains float constants), partitions by
/// their tid range over the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredKey {
    pub form: BitsForm,
    pub slot: u32,
    pub start: u32,
    pub end: u32,
}

/// Counters describing a cache's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from a resident bitset.
    pub hits: u64,
    /// Requests that had to (re)build the bitset.
    pub misses: u64,
    /// Entries dropped by the LRU policy to respect the budget.
    pub evictions: u64,
    /// Builds whose result exceeded the whole budget and was returned to
    /// the caller without ever being retained.
    pub spills: u64,
    /// Resident entries at snapshot time.
    pub entries: usize,
    /// Resident bytes at snapshot time.
    pub bytes: usize,
    /// High-water mark of resident bytes.
    pub bytes_peak: usize,
    /// The configured budget.
    pub budget_bytes: usize,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    bits: Arc<SatBits>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: FxHashMap<PredKey, Entry>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    spills: u64,
    bytes_peak: usize,
}

/// A `Sync` LRU cache of satisfaction bitsets under a byte budget.
pub struct BitsetCache {
    budget: usize,
    // DiscoveryCache is a leaf rank: builds run outside the lock, so no
    // other lock is ever acquired while this one is held.
    inner: RankedMutex<Inner>,
}

impl BitsetCache {
    pub fn new(budget_bytes: usize) -> BitsetCache {
        BitsetCache {
            budget: budget_bytes,
            inner: RankedMutex::new(
                LockRank::DiscoveryCache,
                Inner {
                    entries: FxHashMap::default(),
                    tick: 0,
                    bytes: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                    spills: 0,
                    bytes_peak: 0,
                },
            ),
        }
    }

    /// Return the bitset for `key`, building it with `build` on a miss.
    /// The build runs outside the lock, so concurrent workers never
    /// serialize on predicate evaluation; a lost race simply adopts the
    /// winner's entry.
    pub fn get_or_build<F: FnOnce() -> SatBits>(&self, key: PredKey, build: F) -> Arc<SatBits> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&key) {
                entry.last_used = tick;
                let bits = Arc::clone(&entry.bits);
                inner.hits += 1;
                return bits;
            }
        }
        let bits = Arc::new(build());
        let bytes = bits.heap_bytes();
        let mut inner = self.inner.lock();
        inner.misses += 1;
        if let Some(entry) = inner.entries.get_mut(&key) {
            // another worker built it while we did: keep one copy resident
            return Arc::clone(&entry.bits);
        }
        if bytes > self.budget {
            // larger than the whole budget: spill — hand it out once and
            // re-evaluate on the next request rather than thrash the LRU
            inner.spills += 1;
            return bits;
        }
        let tick = inner.tick;
        inner.bytes += bytes;
        inner.entries.insert(
            key,
            Entry {
                bits: Arc::clone(&bits),
                bytes,
                last_used: tick,
            },
        );
        while inner.bytes > self.budget {
            // O(entries) LRU scan; the entry count is bounded by the
            // predicate-space size, not the data size
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes;
                inner.evictions += 1;
            }
        }
        inner.bytes_peak = inner.bytes_peak.max(inner.bytes);
        bits
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            spills: inner.spills,
            entries: inner.entries.len(),
            bytes: inner.bytes,
            bytes_peak: inner.bytes_peak,
            budget_bytes: self.budget,
        }
    }
}

/// Per-relation façade the miner works against: resolves the space's
/// predicates once, owns the tid↔bit-index mapping, and serves (cached)
/// satisfaction bitsets plus bitset-backed [`Measures`].
pub struct PredicateBitsets<'a> {
    ctx: &'a EvalContext<'a>,
    rel: RelId,
    tids: Vec<TupleId>,
    resolved_pre: Vec<Option<Predicate>>,
    resolved_cons: Vec<Option<Predicate>>,
    cache: BitsetCache,
    offdiag: OnceLock<Bitset>,
}

impl<'a> PredicateBitsets<'a> {
    pub fn new(
        ctx: &'a EvalContext<'a>,
        db: &Database,
        rel: RelId,
        preconditions: &[Predicate],
        consequences: &[Predicate],
        registry: &ModelRegistry,
        budget_bytes: usize,
    ) -> PredicateBitsets<'a> {
        let tids: Vec<TupleId> = db.relation(rel).tids().collect();
        let resolve = |p: &Predicate| resolve_predicate(p, rel, registry);
        PredicateBitsets {
            ctx,
            rel,
            tids,
            resolved_pre: preconditions.iter().map(resolve).collect(),
            resolved_cons: consequences.iter().map(resolve).collect(),
            cache: BitsetCache::new(budget_bytes),
            offdiag: OnceLock::new(),
        }
    }

    /// Number of live tuples (bits in the unary domain).
    pub fn n(&self) -> usize {
        self.tids.len()
    }

    /// All-ones root conjunction (the empty precondition): every tuple
    /// satisfies `X = ∅`, in the unary domain until a pair conjunct joins.
    pub fn root(&self) -> Arc<SatBits> {
        Arc::new(SatBits::Unary(Bitset::full(self.tids.len())))
    }

    /// Satisfaction bitset of precondition slot `i`; `None` when the
    /// predicate references an unknown ML model (such candidates are
    /// skipped by the miner, exactly like the scan path's `make_rule`).
    pub fn precondition(&self, i: usize) -> Option<Arc<SatBits>> {
        let p = self.resolved_pre[i].as_ref()?;
        Some(self.build(BitsForm::Precondition, i as u32, p))
    }

    /// Satisfaction bitset of consequence slot `ci` in its natural domain.
    pub fn consequence(&self, ci: usize) -> Option<Arc<SatBits>> {
        let p = self.resolved_cons[ci].as_ref()?;
        Some(self.build(BitsForm::Consequence, ci as u32, p))
    }

    fn build(&self, form: BitsForm, slot: u32, p: &Predicate) -> Arc<SatBits> {
        let key = PredKey {
            form,
            slot,
            start: 0,
            end: self.tids.len() as u32,
        };
        self.cache.get_or_build(key, || {
            predicate_sat_bits(p, self.ctx, self.rel, &self.tids)
        })
    }

    /// Consequence `ci` in the pair domain: pair-domain consequences are
    /// returned as-is; unary ones are row-broadcast (a word-fill over the
    /// natural-domain entry, cached under its own key — no re-evaluation).
    pub fn consequence_pair(&self, ci: usize) -> Option<Arc<SatBits>> {
        let natural = self.consequence(ci)?;
        match natural.as_ref() {
            SatBits::Pair(_) => Some(natural),
            SatBits::Unary(_) => {
                let n = self.tids.len();
                let key = PredKey {
                    form: BitsForm::ConsequencePair,
                    slot: ci as u32,
                    start: 0,
                    end: n as u32,
                };
                Some(self.cache.get_or_build(key, || match natural.as_ref() {
                    SatBits::Unary(u) => SatBits::Pair(rock_rees::measures::broadcast_rows(u, n)),
                    SatBits::Pair(p) => SatBits::Pair(p.clone()),
                }))
            }
        }
    }

    /// Bitset-backed measures of the candidate `pre → consequences[ci]`,
    /// matching `rock_rees::measures::measure` count-for-count. `None`
    /// when the consequence references an unknown model.
    pub fn measure(&self, ci: usize, pre: &SatBits) -> Option<Measures> {
        let n = self.tids.len();
        let cons = self.consequence(ci)?;
        if let (SatBits::Unary(p), SatBits::Unary(c)) = (pre, cons.as_ref()) {
            // one-variable rule: no pair domain, no off-diagonal mask —
            // the same counting as measure_bits' unary arm, inlined so the
            // all-unary path never materializes an n²-bit mask
            return Some(Measures {
                precondition_count: p.count_ones(),
                satisfying_count: p.and_popcount(c),
                possible: n as u64,
            });
        }
        let cons = self.consequence_pair(ci)?;
        let offdiag = self.offdiag.get_or_init(|| pair_offdiag(n));
        Some(measure_bits(pre, &cons, n, offdiag))
    }

    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Resolve one predicate's model references against the registry via a
/// probe rule (reusing [`Rule::resolve`]); `None` for unknown models.
fn resolve_predicate(p: &Predicate, rel: RelId, registry: &ModelRegistry) -> Option<Predicate> {
    let mut probe = Rule::new(
        "resolve-probe",
        vec![("t".into(), rel), ("s".into(), rel)],
        vec![],
        vec![],
        p.clone(),
    );
    probe.resolve(registry).ok()?;
    Some(probe.consequence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, AttrType, DatabaseSchema, RelationSchema, Value};
    use rock_rees::CmpOp;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..6 {
            let a = if i % 2 == 0 { "x" } else { "y" };
            r.insert_row(vec![Value::str(a), Value::str("1")]).unwrap();
        }
        db
    }

    fn const_pred(attr: u32, value: &str) -> Predicate {
        Predicate::Const {
            var: 0,
            attr: AttrId(attr),
            op: CmpOp::Eq,
            value: Value::str(value),
        }
    }

    #[test]
    fn hit_miss_counters() {
        let cache = BitsetCache::new(1 << 20);
        let key = PredKey {
            form: BitsForm::Precondition,
            slot: 0,
            start: 0,
            end: 64,
        };
        let mut builds = 0;
        for _ in 0..3 {
            let bits = cache.get_or_build(key, || {
                builds += 1;
                SatBits::Unary(Bitset::full(64))
            });
            assert_eq!(bits.bits().count_ones(), 64);
        }
        assert_eq!(builds, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert_eq!(s.bytes, 8);
        assert!(s.hit_rate() > 0.6);
    }

    #[test]
    fn lru_evicts_oldest_under_budget() {
        // budget fits exactly two 64-bit entries (8 bytes each)
        let cache = BitsetCache::new(16);
        let key = |slot: u32| PredKey {
            form: BitsForm::Precondition,
            slot,
            start: 0,
            end: 64,
        };
        let build = || SatBits::Unary(Bitset::new(64));
        cache.get_or_build(key(0), build);
        cache.get_or_build(key(1), build);
        cache.get_or_build(key(0), build); // touch 0 so 1 is LRU
        cache.get_or_build(key(2), build); // evicts 1
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        cache.get_or_build(key(0), build);
        cache.get_or_build(key(1), build); // rebuilt: was evicted
        let s = cache.stats();
        assert_eq!(s.misses, 4, "slot 1 re-evaluated after eviction");
        assert!(s.bytes <= 16 && s.bytes_peak <= 16);
    }

    #[test]
    fn oversized_entries_spill_without_residency() {
        let cache = BitsetCache::new(4); // smaller than any 64-bit entry
        let key = PredKey {
            form: BitsForm::Precondition,
            slot: 0,
            start: 0,
            end: 64,
        };
        let mut builds = 0;
        for _ in 0..2 {
            cache.get_or_build(key, || {
                builds += 1;
                SatBits::Unary(Bitset::new(64))
            });
        }
        assert_eq!(builds, 2, "spilled entries re-evaluate every time");
        let s = cache.stats();
        assert_eq!((s.spills, s.entries, s.bytes), (2, 0, 0));
    }

    #[test]
    fn predicate_bitsets_measures_and_caches() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let pre = vec![const_pred(0, "x")];
        let cons = vec![const_pred(1, "1")];
        let pb = PredicateBitsets::new(&ctx, &db, RelId(0), &pre, &cons, &reg, 1 << 20);
        assert_eq!(pb.n(), 6);
        let p0 = pb.precondition(0).unwrap();
        assert_eq!(p0.bits().count_ones(), 3);
        let running = pb.root().and(&p0, pb.n());
        let m = pb.measure(0, &running).unwrap();
        assert_eq!(m.precondition_count, 3);
        assert_eq!(m.satisfying_count, 3);
        assert_eq!(m.possible, 6, "one-variable rule: possible = n");
        // second fetch hits
        pb.precondition(0).unwrap();
        assert!(pb.stats().hits >= 1);
    }

    #[test]
    fn unknown_model_predicates_yield_none() {
        let db = db();
        let reg = ModelRegistry::new();
        let ctx = EvalContext::new(&db, &reg);
        let ml = Predicate::Ml {
            model: rock_rees::ModelRef::named("nope"),
            lvar: 0,
            lattrs: vec![AttrId(0)],
            rvar: 1,
            rattrs: vec![AttrId(0)],
        };
        let pb = PredicateBitsets::new(&ctx, &db, RelId(0), &[ml.clone()], &[ml], &reg, 1 << 20);
        assert!(pb.precondition(0).is_none());
        assert!(pb.consequence(0).is_none());
        assert!(pb.measure(0, &pb.root()).is_none());
    }
}
