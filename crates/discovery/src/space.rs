//! Predicate-space construction (paper §5.3, rule-discovery module step
//! (b): "predicates, to construct predicates and corresponding auxiliary
//! structures").
//!
//! Given a schema, per-column statistics and the registered ML models, the
//! space enumerates the candidate predicates a miner may combine:
//!
//! * constant predicates `t.A = c` over frequent values of categorical
//!   columns (bounded per column);
//! * attribute comparisons `t.A = s.A` / `t.A = s.B` over type-compatible
//!   pairs;
//! * ML predicates `M(t[Ā], s[B̄])` for models declared applicable to a
//!   relation's attributes;
//! * `null(t.A)` triggers for nullable columns;
//! * candidate consequences, per task: CR (`t.A = s.A`, `t.A = c`), ER
//!   (`t.eid = s.eid`), MI (`t.A = c` guarded by null), TD (`t ⪯A s`).

use rock_data::{AttrId, Database, RelId, TableStats};
use rock_rees::{CmpOp, ModelRef, Predicate};
use serde::{Deserialize, Serialize};

/// Declared applicability of a registered ML model (the "external
/// knowledge" metadata of §5.1 linking models to attributes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlSignature {
    pub model: String,
    pub rel: RelId,
    pub attrs: Vec<AttrId>,
}

/// Configuration for space construction.
#[derive(Debug, Clone)]
pub struct SpaceConfig {
    /// Max distinct values for a column to be treated as categorical.
    pub max_categorical: usize,
    /// Max constant predicates per column.
    pub max_constants: usize,
    /// Minimum frequency for a constant candidate.
    pub min_constant_count: usize,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        SpaceConfig {
            max_categorical: 24,
            max_constants: 8,
            min_constant_count: 2,
        }
    }
}

/// The enumerated predicate space for a two-variable template `R(t) ∧ R(s)`
/// (single-relation; cross-relation templates are built per relation pair).
#[derive(Debug, Clone, Default)]
pub struct PredicateSpace {
    /// Unary predicates over variable 0 (`t`).
    pub unary: Vec<Predicate>,
    /// Binary predicates over `(t, s)`.
    pub binary: Vec<Predicate>,
    /// Candidate consequences.
    pub consequences: Vec<Predicate>,
}

impl PredicateSpace {
    /// Build the space for one relation (template `R(t) ∧ R(s)`).
    pub fn build(
        db: &Database,
        rel: RelId,
        ml: &[MlSignature],
        cfg: &SpaceConfig,
    ) -> PredicateSpace {
        let stats = TableStats::compute(db.relation(rel), cfg.max_constants * 2);
        let schema = &db.relation(rel).schema;
        let mut unary = Vec::new();
        let mut binary = Vec::new();
        let mut consequences = Vec::new();

        for (attr, a) in schema.iter_attrs() {
            let col = stats.column(attr);
            // constants over categorical columns
            if col.is_categorical(cfg.max_categorical) {
                for (v, count) in col.top_values.iter().take(cfg.max_constants) {
                    if *count >= cfg.min_constant_count {
                        unary.push(Predicate::Const {
                            var: 0,
                            attr,
                            op: CmpOp::Eq,
                            value: v.clone(),
                        });
                        consequences.push(Predicate::Const {
                            var: 0,
                            attr,
                            op: CmpOp::Eq,
                            value: v.clone(),
                        });
                    }
                }
            }
            // null triggers for nullable columns
            if col.null_count > 0 {
                unary.push(Predicate::IsNull { var: 0, attr });
            }
            // same-attribute equality across the two variables
            binary.push(Predicate::Attr {
                lvar: 0,
                lattr: attr,
                op: CmpOp::Eq,
                rvar: 1,
                rattr: attr,
            });
            // numeric ≤ comparisons (φ6-style correlations)
            if a.ty.is_numeric() {
                binary.push(Predicate::Attr {
                    lvar: 0,
                    lattr: attr,
                    op: CmpOp::Le,
                    rvar: 1,
                    rattr: attr,
                });
            }
            // CR consequences
            consequences.push(Predicate::Attr {
                lvar: 0,
                lattr: attr,
                op: CmpOp::Eq,
                rvar: 1,
                rattr: attr,
            });
            // TD consequences
            consequences.push(Predicate::Temporal {
                lvar: 0,
                rvar: 1,
                attr,
                strict: false,
            });
        }
        // ML predicates from declared signatures
        for sig in ml.iter().filter(|s| s.rel == rel) {
            binary.push(Predicate::Ml {
                model: ModelRef::named(&sig.model),
                lvar: 0,
                lattrs: sig.attrs.clone(),
                rvar: 1,
                rattrs: sig.attrs.clone(),
            });
        }
        // ER consequence
        consequences.push(Predicate::EidCmp {
            lvar: 0,
            rvar: 1,
            eq: true,
        });

        PredicateSpace {
            unary,
            binary,
            consequences,
        }
    }

    /// All precondition candidates (unary + binary). The order — unary
    /// first, then binary, each in construction order — is a stable
    /// contract: the bitset cache keys predicates by their index in this
    /// vector (see [`crate::cache::PredKey`]).
    pub fn preconditions(&self) -> Vec<Predicate> {
        let mut out = self.unary.clone();
        out.extend(self.binary.iter().cloned());
        out
    }

    /// Number of precondition candidates (`preconditions().len()` without
    /// cloning) — an upper bound on the cache's `Precondition` entries.
    pub fn n_preconditions(&self) -> usize {
        self.unary.len() + self.binary.len()
    }

    /// Total size of the space.
    pub fn len(&self) -> usize {
        self.unary.len() + self.binary.len() + self.consequences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, Value};

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[
                ("name", AttrType::Str),
                ("city", AttrType::Str),
                ("sales", AttrType::Float),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..10 {
            let city = if i % 2 == 0 { "Beijing" } else { "Shanghai" };
            r.insert_row(vec![
                Value::str(format!("store-{i}")),
                Value::str(city),
                if i == 3 {
                    Value::Null
                } else {
                    Value::Float(i as f64)
                },
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn constants_only_for_categorical_frequent_values() {
        let db = db();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let consts: Vec<&Predicate> = space
            .unary
            .iter()
            .filter(|p| matches!(p, Predicate::Const { .. }))
            .collect();
        // city has 2 frequent values; name column has 10 distinct
        // singletons (below min_constant_count)
        assert_eq!(consts.len(), 2, "{consts:?}");
        for c in consts {
            if let Predicate::Const { attr, .. } = c {
                assert_eq!(*attr, AttrId(1));
            }
        }
    }

    #[test]
    fn null_trigger_for_nullable_column() {
        let db = db();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        assert!(space
            .unary
            .iter()
            .any(|p| matches!(p, Predicate::IsNull { attr, .. } if *attr == AttrId(2))));
        assert!(!space
            .unary
            .iter()
            .any(|p| matches!(p, Predicate::IsNull { attr, .. } if *attr == AttrId(0))));
    }

    #[test]
    fn binary_and_consequences_present() {
        let db = db();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        // eq per attribute + numeric ≤ for sales
        let eqs = space
            .binary
            .iter()
            .filter(|p| matches!(p, Predicate::Attr { op: CmpOp::Eq, .. }))
            .count();
        assert_eq!(eqs, 3);
        let les = space
            .binary
            .iter()
            .filter(|p| matches!(p, Predicate::Attr { op: CmpOp::Le, .. }))
            .count();
        assert_eq!(les, 1);
        assert!(space
            .consequences
            .iter()
            .any(|p| matches!(p, Predicate::EidCmp { eq: true, .. })));
        assert!(space
            .consequences
            .iter()
            .any(|p| matches!(p, Predicate::Temporal { .. })));
        assert!(!space.is_empty());
    }

    #[test]
    fn ml_signatures_injected() {
        let db = db();
        let sigs = vec![MlSignature {
            model: "Mname".into(),
            rel: RelId(0),
            attrs: vec![AttrId(0)],
        }];
        let space = PredicateSpace::build(&db, RelId(0), &sigs, &SpaceConfig::default());
        assert!(space
            .binary
            .iter()
            .any(|p| matches!(p, Predicate::Ml { model, .. } if model.name == "Mname")));
        // signatures for other relations ignored
        let other = vec![MlSignature {
            model: "M2".into(),
            rel: RelId(7),
            attrs: vec![],
        }];
        let space2 = PredicateSpace::build(&db, RelId(0), &other, &SpaceConfig::default());
        assert!(!space2.binary.iter().any(|p| p.is_ml()));
    }
}
