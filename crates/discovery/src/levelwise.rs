//! The levelwise REE++ miner, parallelized over Crystal work units.
//!
//! For each candidate consequence `p0` the miner searches conjunctions `X`
//! of increasing size (up to `max_preconditions`). Pruning:
//!
//! * **anti-monotone support** — `supp(X ∧ p0)` only shrinks as `X` grows,
//!   so a candidate below the support threshold is pruned along with all
//!   its supersets;
//! * **minimality** — once `X → p0` is accepted, no superset of `X` is
//!   explored for the same `p0` (its instances are already covered);
//! * **trivial-precondition filter** — `p0 ∈ X` is skipped.
//!
//! Support/confidence are the normalized measures of
//! [`rock_rees::measures`], and the thresholds default to the paper's
//! values (§6: support 1e-8, confidence 0.9).
//!
//! Two evaluation strategies produce identical rule sets:
//!
//! * **bitset path** (default) — predicates are materialized once into
//!   satisfaction bitsets via [`crate::cache::PredicateBitsets`]; each
//!   level-k candidate intersects its level-(k−1) parent's running bitset
//!   with one predicate bitset and measures by AND+popcount. Workers share
//!   the parent bitsets read-only (`Arc`), addressed through the Crystal
//!   work unit's `payload`.
//! * **scan path** (`use_bitset_cache: false`) — the original per-candidate
//!   tuple re-scan via [`measure`], kept as the equivalence baseline and
//!   the uncached arm of the benchmark panel.

use crate::cache::{CacheStats, PredicateBitsets};
use crate::space::PredicateSpace;
use rock_crystal::work::Partition;
use rock_crystal::{Cluster, ClusterConfig, FaultStats, UnitFailure, WorkUnit};
use rock_data::{Database, RelId};
use rock_kg::Graph;
use rock_ml::ModelRegistry;
use rock_rees::measures::{measure, SatBits};
use rock_rees::{EvalContext, Predicate, Rule, RuleSet};
use std::sync::Arc;

/// Discovery configuration.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Normalized support threshold (paper default 1e-8).
    pub min_support: f64,
    /// Confidence threshold (paper default 0.9).
    pub min_confidence: f64,
    /// Maximum precondition size.
    pub max_preconditions: usize,
    /// Crystal workers.
    pub workers: usize,
    /// Skip consequences whose own support is below this (a consequence
    /// that almost never holds cannot anchor a high-confidence rule).
    pub min_consequence_support: f64,
    /// Byte budget for the predicate satisfaction-bitset cache; entries
    /// beyond it are LRU-evicted and re-materialized on demand.
    pub cache_budget_bytes: usize,
    /// Evaluate candidates with bitset kernels (default). `false` selects
    /// the tuple re-scan path — same mined rules, no cache.
    pub use_bitset_cache: bool,
    /// Fault-injection / retry / speculation knobs for candidate
    /// measurement on the cluster.
    pub cluster: ClusterConfig,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_support: 1e-8,
            min_confidence: 0.9,
            max_preconditions: 3,
            workers: 1,
            min_consequence_support: 1e-9,
            cache_budget_bytes: 64 << 20,
            use_bitset_cache: true,
            cluster: ClusterConfig::default(),
        }
    }
}

/// Outcome of a discovery run.
#[derive(Debug)]
pub struct DiscoveryReport {
    pub rules: RuleSet,
    /// Candidates evaluated (search-space size actually visited).
    pub candidates_evaluated: usize,
    /// Candidates pruned by the support anti-monotonicity.
    pub pruned: usize,
    pub wall_seconds: f64,
    /// Per-candidate evaluation durations (for modeled parallel time).
    pub unit_seconds: Vec<f64>,
    /// Predicate-bitset cache counters (`None` on the scan path).
    pub cache: Option<CacheStats>,
    /// Fault/retry/speculation counters from the Crystal scheduler.
    pub fault_stats: FaultStats,
    /// Candidate units quarantined after exhausting retries; their
    /// candidates are treated as pruned (not measured).
    pub unit_failures: Vec<UnitFailure>,
    /// `rock-analyze` counters from the post-mining screen (runs on both
    /// the bitset and the scan path, over the same mined set).
    pub analyzer: rock_analyze::AnalyzerStats,
    /// Mined rules the screen rejected: error-severity diagnostics
    /// (unsatisfiable or ill-typed) or subsumed by another mined rule.
    pub rules_dropped_by_analyzer: usize,
}

impl DiscoveryReport {
    pub fn modeled_parallel_seconds(&self, workers: usize) -> f64 {
        rock_crystal::scheduler::makespan_lpt(&self.unit_seconds, workers)
    }
}

/// The miner.
pub struct Discoverer<'a> {
    pub registry: &'a ModelRegistry,
    pub graph: Option<&'a Graph>,
    pub config: DiscoveryConfig,
}

impl<'a> Discoverer<'a> {
    pub fn new(registry: &'a ModelRegistry, config: DiscoveryConfig) -> Self {
        Discoverer {
            registry,
            graph: None,
            config,
        }
    }

    /// Mine rules over one relation's two-variable template. The mined
    /// set is screened by `rock-analyze` before it is returned: rules with
    /// error-severity diagnostics or subsumed by another mined rule are
    /// dropped (with counters in the report), identically for the bitset
    /// and the scan path.
    pub fn mine_relation(
        &self,
        db: &Database,
        rel: RelId,
        space: &PredicateSpace,
    ) -> DiscoveryReport {
        let mut report = if self.config.use_bitset_cache {
            self.mine_relation_cached(db, rel, space)
        } else {
            self.mine_relation_scan(db, rel, space)
        };
        Self::screen_mined(db, &mut report);
        report
    }

    /// The static-analysis screen over a freshly mined ruleset. Mining
    /// enumerates predicates syntactically, so it can emit conjunctions no
    /// tuple satisfies (support floors catch most, but not rules accepted
    /// on vacuous confidence) and near-duplicate rules one of which
    /// subsumes the other; the analyzer rejects both classes before the
    /// chase ever schedules them.
    fn screen_mined(db: &Database, report: &mut DiscoveryReport) {
        let schema = db.schema();
        let analysis = rock_analyze::Analyzer::new(&schema).analyze(&report.rules);
        report.analyzer = analysis.stats();
        let errors = analysis.rules_with_errors();
        let subsumed = analysis.subsumed_rules();
        let before = report.rules.len();
        report
            .rules
            .rules
            .retain(|r| !errors.contains(&r.name) && !subsumed.contains(&r.name));
        report.rules_dropped_by_analyzer = before - report.rules.len();
    }

    /// Bitset-kernel mining: identical candidate generation, ordering and
    /// naming as the scan path, with measures computed by AND+popcount
    /// over cached satisfaction bitsets.
    fn mine_relation_cached(
        &self,
        db: &Database,
        rel: RelId,
        space: &PredicateSpace,
    ) -> DiscoveryReport {
        let start = std::time::Instant::now();
        let rel_name = db.relation(rel).schema.name.clone();
        let preconditions = space.preconditions();
        let mut report = DiscoveryReport {
            rules: RuleSet::default(),
            candidates_evaluated: 0,
            pruned: 0,
            wall_seconds: 0.0,
            unit_seconds: Vec::new(),
            cache: None,
            fault_stats: FaultStats::default(),
            unit_failures: Vec::new(),
            analyzer: rock_analyze::AnalyzerStats::default(),
            rules_dropped_by_analyzer: 0,
        };

        let ctx = self.ctx(db);
        let bits = PredicateBitsets::new(
            &ctx,
            db,
            rel,
            &preconditions,
            &space.consequences,
            self.registry,
            self.config.cache_budget_bytes,
        );
        let n = bits.n();
        let cluster = Cluster::with_config(self.config.workers, self.config.cluster.clone());
        let mut counter = 0usize;

        for (ci, consequence) in space.consequences.iter().enumerate() {
            // level 0: the consequence alone must clear the support floor.
            // An unknown-model consequence yields no measure and is skipped
            // exactly like the scan path's failed `make_rule`.
            let root = bits.root();
            let Some(base) = bits.measure(ci, &root) else {
                continue;
            };
            report.candidates_evaluated += 1;
            if base.support() < self.config.min_consequence_support {
                report.pruned += 1;
                continue;
            }

            // frontier: precondition index-vectors (sorted, no dups), each
            // carrying the running satisfaction bitset of its conjunction —
            // shared read-only with every worker expanding it at level k.
            let mut frontier: Vec<(Vec<usize>, Arc<SatBits>)> = vec![(Vec::new(), root)];
            let mut accepted_for_consequence: Vec<Vec<usize>> = Vec::new();

            for level in 1..=self.config.max_preconditions {
                // expand frontier (same order as the scan path)
                let mut candidates: Vec<Vec<usize>> = Vec::new();
                let mut parents: Vec<usize> = Vec::new();
                for (fi, (x, _)) in frontier.iter().enumerate() {
                    let startp = x.last().map(|&i| i + 1).unwrap_or(0);
                    #[allow(clippy::needless_range_loop)] // pi is also data
                    for pi in startp..preconditions.len() {
                        if &preconditions[pi] == consequence {
                            continue;
                        }
                        // minimality: skip supersets of accepted rules
                        let mut next = x.clone();
                        next.push(pi);
                        if accepted_for_consequence
                            .iter()
                            .any(|acc| acc.iter().all(|i| next.contains(i)))
                        {
                            continue;
                        }
                        candidates.push(next);
                        parents.push(fi);
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                let rules: Vec<Option<Rule>> = candidates
                    .iter()
                    .map(|idxs| {
                        counter += 1;
                        self.make_rule(
                            format!("{rel_name}-r{counter}"),
                            rel,
                            consequence,
                            idxs.iter().map(|&i| preconditions[i].clone()).collect(),
                        )
                    })
                    .collect();
                // prefetch each distinct new conjunct's bitset serially so
                // workers hit the cache instead of racing to materialize
                let mut fresh: Vec<usize> = candidates
                    .iter()
                    .filter_map(|idxs| idxs.last().copied())
                    .collect();
                fresh.sort_unstable();
                fresh.dedup();
                for &pi in &fresh {
                    let _ = bits.precondition(pi);
                }
                // measure candidates in parallel; the unit payload names
                // the parent frontier entry whose bitset the worker reuses
                let units: Vec<WorkUnit> = (0..candidates.len())
                    .map(|i| {
                        WorkUnit::new(i as u32, vec![Partition::new(rel.0, 0, n as u32)])
                            .with_payload(parents[i] as u64)
                    })
                    .collect();
                let frontier_ref = &frontier;
                let outcome = cluster.execute(units, |u| {
                    let i = u.rule as usize;
                    let evaluate = || {
                        rules[i].as_ref()?;
                        let pi = *candidates[i].last()?;
                        let parent = &frontier_ref[u.payload as usize].1;
                        let child = parent.and(&bits.precondition(pi)?, n);
                        let m = bits.measure(ci, &child)?;
                        Some((m, Arc::new(child)))
                    };
                    Ok(evaluate())
                });
                report.unit_seconds.extend(outcome.stats.unit_seconds);
                report.fault_stats.merge(&outcome.stats.faults);
                report.unit_failures.extend(outcome.failures);
                // a quarantined unit leaves `None`: its candidate is
                // dropped exactly like a support-pruned one
                let outs = outcome.results.into_iter().map(Option::flatten);

                let mut next_frontier: Vec<(Vec<usize>, Arc<SatBits>)> = Vec::new();
                for ((idxs, rule), out) in candidates.into_iter().zip(rules).zip(outs) {
                    let (Some(mut rule), Some((m, child))) = (rule, out) else {
                        continue;
                    };
                    report.candidates_evaluated += 1;
                    if m.support() < self.config.min_support {
                        report.pruned += 1;
                        continue; // anti-monotone: no supersets either
                    }
                    if m.confidence() >= self.config.min_confidence && m.precondition_count > 0 {
                        rule.support = m.support();
                        rule.confidence = m.confidence();
                        accepted_for_consequence.push(idxs);
                        report.rules.push(rule);
                    } else if level < self.config.max_preconditions {
                        next_frontier.push((idxs, child));
                    }
                }
                frontier = next_frontier;
                if frontier.is_empty() {
                    break;
                }
            }
        }
        report.cache = Some(bits.stats());
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    /// Tuple re-scan mining (the pre-cache implementation): measures every
    /// candidate by enumerating valuations. Selected by
    /// `use_bitset_cache: false`; mines the same rule set as the bitset
    /// path, which the discovery equivalence tests assert.
    fn mine_relation_scan(
        &self,
        db: &Database,
        rel: RelId,
        space: &PredicateSpace,
    ) -> DiscoveryReport {
        let start = std::time::Instant::now();
        let rel_name = db.relation(rel).schema.name.clone();
        let preconditions = space.preconditions();
        let mut report = DiscoveryReport {
            rules: RuleSet::default(),
            candidates_evaluated: 0,
            pruned: 0,
            wall_seconds: 0.0,
            unit_seconds: Vec::new(),
            cache: None,
            fault_stats: FaultStats::default(),
            unit_failures: Vec::new(),
            analyzer: rock_analyze::AnalyzerStats::default(),
            rules_dropped_by_analyzer: 0,
        };

        // Parallel evaluation of candidates happens per level: build the
        // level's candidate list, measure each as a work unit, then expand
        // survivors.
        let cluster = Cluster::with_config(self.config.workers, self.config.cluster.clone());
        let mut counter = 0usize;

        for (ci, consequence) in space.consequences.iter().enumerate() {
            // level 0: the consequence alone must clear the support floor
            let base_rule =
                self.make_rule(format!("{rel_name}-c{ci}"), rel, consequence, Vec::new());
            let Some(base_rule) = base_rule else { continue };
            let ctx = self.ctx(db);
            let base = measure(&base_rule, &ctx);
            report.candidates_evaluated += 1;
            if base.support() < self.config.min_consequence_support {
                report.pruned += 1;
                continue;
            }

            // frontier: vectors of predicate indices (sorted, no dups)
            let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
            let mut accepted_for_consequence: Vec<Vec<usize>> = Vec::new();

            for level in 1..=self.config.max_preconditions {
                // expand frontier
                let mut candidates: Vec<Vec<usize>> = Vec::new();
                for x in &frontier {
                    let startp = x.last().map(|&i| i + 1).unwrap_or(0);
                    #[allow(clippy::needless_range_loop)] // pi is also data
                    for pi in startp..preconditions.len() {
                        if &preconditions[pi] == consequence {
                            continue;
                        }
                        // minimality: skip supersets of accepted rules
                        let mut next = x.clone();
                        next.push(pi);
                        if accepted_for_consequence
                            .iter()
                            .any(|acc| acc.iter().all(|i| next.contains(i)))
                        {
                            continue;
                        }
                        candidates.push(next);
                    }
                }
                if candidates.is_empty() {
                    break;
                }
                // measure candidates in parallel
                let units: Vec<WorkUnit> = (0..candidates.len())
                    .map(|i| WorkUnit::new(i as u32, vec![Partition::new(rel.0, 0, 1)]))
                    .collect();
                let rules: Vec<Option<Rule>> = candidates
                    .iter()
                    .map(|idxs| {
                        counter += 1;
                        self.make_rule(
                            format!("{rel_name}-r{counter}"),
                            rel,
                            consequence,
                            idxs.iter().map(|&i| preconditions[i].clone()).collect(),
                        )
                    })
                    .collect();
                let ctx = self.ctx(db);
                let outcome = cluster.execute(units, |u| {
                    let i = u.rule as usize;
                    Ok(rules[i].as_ref().map(|r| measure(r, &ctx)))
                });
                report.unit_seconds.extend(outcome.stats.unit_seconds);
                report.fault_stats.merge(&outcome.stats.faults);
                report.unit_failures.extend(outcome.failures);
                let measures = outcome.results.into_iter().map(Option::flatten);

                let mut next_frontier = Vec::new();
                for ((idxs, rule), m) in candidates.into_iter().zip(rules).zip(measures) {
                    let (Some(mut rule), Some(m)) = (rule, m) else {
                        continue;
                    };
                    report.candidates_evaluated += 1;
                    if m.support() < self.config.min_support {
                        report.pruned += 1;
                        continue; // anti-monotone: no supersets either
                    }
                    if m.confidence() >= self.config.min_confidence && m.precondition_count > 0 {
                        rule.support = m.support();
                        rule.confidence = m.confidence();
                        accepted_for_consequence.push(idxs);
                        report.rules.push(rule);
                    } else if level < self.config.max_preconditions {
                        next_frontier.push(idxs);
                    }
                }
                frontier = next_frontier;
                if frontier.is_empty() {
                    break;
                }
            }
        }
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    fn ctx<'b>(&'b self, db: &'b Database) -> EvalContext<'b> {
        let mut ctx = EvalContext::new(db, self.registry);
        if let Some(g) = self.graph {
            ctx = ctx.with_graph(g);
        }
        ctx
    }

    /// Assemble a two-variable rule, resolving models; `None` when a model
    /// is unknown (such candidates are skipped, not fatal). Rules that
    /// never touch the second variable are simplified to single-variable
    /// rules — a vacuous `R(s)` atom multiplies evaluation cost by |R|.
    fn make_rule(
        &self,
        name: String,
        rel: RelId,
        consequence: &Predicate,
        precondition: Vec<Predicate>,
    ) -> Option<Rule> {
        let uses_s = precondition
            .iter()
            .chain(std::iter::once(consequence))
            .any(|p| p.tuple_vars().contains(&1));
        let tuple_vars = if uses_s {
            vec![("t".into(), rel), ("s".into(), rel)]
        } else {
            vec![("t".into(), rel)]
        };
        let mut rule = Rule::new(name, tuple_vars, vec![], precondition, consequence.clone());
        rule.resolve(self.registry).ok()?;
        Some(rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, Value};

    /// city → area_code FD holds; name is a key (no FD from it violated).
    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[("city", AttrType::Str), ("area_code", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..8 {
            let (city, code) = if i % 2 == 0 {
                ("Beijing", "010")
            } else {
                ("Shanghai", "021")
            };
            r.insert_row(vec![Value::str(city), Value::str(code)])
                .unwrap();
        }
        db
    }

    #[test]
    fn discovers_fd_city_determines_area_code() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let miner = Discoverer::new(
            &reg,
            DiscoveryConfig {
                min_support: 0.01,
                min_confidence: 0.95,
                max_preconditions: 2,
                ..Default::default()
            },
        );
        let report = miner.mine_relation(&db, RelId(0), &space);
        assert!(report.candidates_evaluated > 0);
        // the FD t.city = s.city → t.area_code = s.area_code must be found
        let schema = db.schema();
        let found = report.rules.iter().any(|r| {
            matches!(
                (&r.precondition[..], &r.consequence),
                (
                    [Predicate::Attr { lattr: a, .. }],
                    Predicate::Attr { lattr: b, .. }
                ) if a.0 == 0 && b.0 == 1
            )
        });
        assert!(
            found,
            "rules: {:?}",
            report
                .rules
                .iter()
                .map(|r| r.display(&schema).to_string())
                .collect::<Vec<_>>()
        );
        // every accepted rule clears both thresholds
        for r in report.rules.iter() {
            assert!(r.support >= 0.01);
            assert!(r.confidence >= 0.95);
        }
        // the default path populates cache statistics
        let stats = report.cache.expect("bitset path reports cache stats");
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn constant_rules_discovered() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let miner = Discoverer::new(
            &reg,
            DiscoveryConfig {
                min_support: 0.01,
                min_confidence: 0.95,
                max_preconditions: 1,
                ..Default::default()
            },
        );
        let report = miner.mine_relation(&db, RelId(0), &space);
        // φ12-style: t.city='Beijing' → t.area_code='010'
        let found = report.rules.iter().any(|r| {
            matches!(
                (&r.precondition[..], &r.consequence),
                (
                    [Predicate::Const { attr: a, value: va, .. }],
                    Predicate::Const { attr: b, value: vb, .. }
                ) if a.0 == 0 && b.0 == 1
                    && va == &Value::str("Beijing") && vb == &Value::str("010")
            )
        });
        assert!(found);
    }

    #[test]
    fn minimality_no_redundant_supersets() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let miner = Discoverer::new(
            &reg,
            DiscoveryConfig {
                min_support: 0.01,
                min_confidence: 0.95,
                max_preconditions: 3,
                ..Default::default()
            },
        );
        let report = miner.mine_relation(&db, RelId(0), &space);
        // For a fixed consequence, no accepted precondition set is a
        // superset of another accepted set.
        for (i, a) in report.rules.iter().enumerate() {
            for (j, b) in report.rules.iter().enumerate() {
                if i == j || a.consequence != b.consequence {
                    continue;
                }
                let a_in_b = a.precondition.iter().all(|p| b.precondition.contains(p));
                assert!(
                    !(a_in_b && a.precondition.len() < b.precondition.len()),
                    "{} subsumes {}",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn parallel_mining_matches_sequential() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let cfg = DiscoveryConfig {
            min_support: 0.01,
            min_confidence: 0.9,
            max_preconditions: 2,
            ..Default::default()
        };
        let seq = Discoverer::new(&reg, cfg.clone()).mine_relation(&db, RelId(0), &space);
        let par = Discoverer::new(&reg, DiscoveryConfig { workers: 4, ..cfg }).mine_relation(
            &db,
            RelId(0),
            &space,
        );
        assert_eq!(seq.rules.len(), par.rules.len());
        let names = |r: &DiscoveryReport| -> Vec<(Vec<Predicate>, Predicate)> {
            r.rules
                .iter()
                .map(|r| (r.precondition.clone(), r.consequence.clone()))
                .collect()
        };
        assert_eq!(names(&seq), names(&par));
    }

    #[test]
    fn strict_thresholds_prune_everything() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let miner = Discoverer::new(
            &reg,
            DiscoveryConfig {
                min_support: 0.9,
                min_confidence: 0.99,
                max_preconditions: 2,
                ..Default::default()
            },
        );
        let report = miner.mine_relation(&db, RelId(0), &space);
        assert!(report.pruned > 0);
        assert!(report.rules.is_empty() || report.rules.iter().all(|r| r.support >= 0.9));
    }

    /// The acceptance bar of the bitset rewrite: both strategies mine
    /// byte-identical rule sets (names, measures and all), with identical
    /// search-space accounting.
    #[test]
    fn cached_and_scan_paths_mine_identical_rules() {
        let db = db();
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        for max_preconditions in 1..=3 {
            let cfg = DiscoveryConfig {
                min_support: 0.01,
                min_confidence: 0.9,
                max_preconditions,
                ..Default::default()
            };
            let cached = Discoverer::new(&reg, cfg.clone()).mine_relation(&db, RelId(0), &space);
            let scan = Discoverer::new(
                &reg,
                DiscoveryConfig {
                    use_bitset_cache: false,
                    ..cfg
                },
            )
            .mine_relation(&db, RelId(0), &space);
            assert_eq!(
                serde_json::to_string(&cached.rules).unwrap(),
                serde_json::to_string(&scan.rules).unwrap(),
                "rule sets diverge at max_preconditions={max_preconditions}"
            );
            assert_eq!(cached.candidates_evaluated, scan.candidates_evaluated);
            assert_eq!(cached.pruned, scan.pruned);
            assert!(cached.cache.is_some() && scan.cache.is_none());
        }
    }
}
