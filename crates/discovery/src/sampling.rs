//! Multi-round sampling with probabilistic accuracy guarantees ([36];
//! paper §5.2 "Rock samples data with an accuracy guarantee during the
//! discovery process if the estimated cost of REE++ deduction is large").
//!
//! The connection between sample and population measures: support and
//! confidence are means of bounded indicator variables over valuations, so
//! Hoeffding's inequality bounds the deviation — with `n` sampled
//! valuations, `P(|supp̂ − supp| ≥ ε) ≤ 2·exp(−2nε²)`. [`required_sample`]
//! inverts this to the sample size achieving (ε, δ); the driver mines on a
//! sampled database and then *verifies* survivors on the full data (the
//! multi-round part), so reported measures are exact while pruning cost is
//! paid on the sample.

use crate::levelwise::{Discoverer, DiscoveryConfig, DiscoveryReport};
use crate::space::PredicateSpace;
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rock_data::{Database, RelId, Relation};
use rock_rees::measures::measure_into;
use rock_rees::EvalContext;

/// Hoeffding sample size for deviation ε with failure probability δ:
/// `n ≥ ln(2/δ) / (2ε²)`.
pub fn required_sample(epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

/// Two-sided Hoeffding deviation bound for a given sample size and δ.
pub fn deviation_bound(n: usize, delta: f64) -> f64 {
    assert!(n > 0 && delta > 0.0 && delta < 1.0);
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Uniformly sample a fraction `ratio` of each relation (without
/// replacement, seeded). Timestamps of sampled tuples are carried over.
pub fn sample_database(db: &Database, ratio: f64, seed: u64) -> Database {
    assert!((0.0..=1.0).contains(&ratio));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut relations = Vec::new();
    for (_, rel) in db.iter() {
        let mut out = Relation::new(rel.schema.clone());
        let tids: Vec<_> = rel.tids().collect();
        let k = ((tids.len() as f64) * ratio).round() as usize;
        let mut chosen: Vec<usize> = if k >= tids.len() {
            (0..tids.len()).collect()
        } else {
            index_sample(&mut rng, tids.len(), k).into_vec()
        };
        chosen.sort_unstable();
        for idx in chosen {
            let Some(t) = rel.get(tids[idx]) else {
                continue;
            };
            let Ok(new_tid) = out.insert(t.eid, t.values.clone()) else {
                continue;
            };
            for (a, _) in rel.schema.iter_attrs() {
                if let Some(ts) = rel.timestamps.get(t.tid, a) {
                    out.set_timestamp(new_tid, a, ts);
                }
            }
        }
        relations.push(out);
    }
    Database::from_relations(relations)
}

/// Sampled discovery: mine on a `ratio` sample, then re-measure the mined
/// rules on the full database and keep those clearing the thresholds.
/// The sample-phase thresholds are relaxed by the Hoeffding deviation at
/// the sample's valuation count so that true positives survive the sample
/// round with probability ≥ 1 − δ each.
///
/// The sample-phase miner inherits the caller's full `DiscoveryConfig`
/// (struct-update below), so it runs the bitset-cache path with the same
/// budget by default; the verification round re-measures the few surviving
/// rules by direct scan, where a cache would not pay for itself.
pub fn mine_with_sampling(
    discoverer: &Discoverer<'_>,
    db: &Database,
    rel: RelId,
    space: &PredicateSpace,
    ratio: f64,
    delta: f64,
    seed: u64,
) -> DiscoveryReport {
    let sampled = sample_database(db, ratio, seed);
    let n = sampled.relation(rel).len().max(2);
    // valuation count for a 2-variable template ≈ n².
    let eps = deviation_bound(n * n, delta).min(0.2);
    let relaxed = Discoverer::new(
        discoverer.registry,
        DiscoveryConfig {
            min_support: (discoverer.config.min_support - eps).max(0.0),
            min_confidence: (discoverer.config.min_confidence - eps).max(0.0),
            ..discoverer.config.clone()
        },
    );
    let mut report = relaxed.mine_relation(&sampled, rel, space);
    // verification round on the full data with the true thresholds
    let ctx = EvalContext::new(db, discoverer.registry);
    report.rules.rules.retain_mut(|rule| {
        let m = measure_into(rule, &ctx);
        m.support() >= discoverer.config.min_support
            && m.confidence() >= discoverer.config.min_confidence
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceConfig;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, Value};
    use rock_ml::ModelRegistry;

    fn db(n: usize) -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[("city", AttrType::Str), ("area_code", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..n {
            let (c, a) = match i % 3 {
                0 => ("Beijing", "010"),
                1 => ("Shanghai", "021"),
                _ => ("Shenzhen", "0755"),
            };
            r.insert_row(vec![Value::str(c), Value::str(a)]).unwrap();
        }
        db
    }

    #[test]
    fn hoeffding_bounds_invert() {
        let n = required_sample(0.05, 0.01);
        assert!(deviation_bound(n, 0.01) <= 0.05 + 1e-9);
        assert!(deviation_bound(n - 50, 0.01) > deviation_bound(n, 0.01));
        assert!(required_sample(0.01, 0.01) > required_sample(0.1, 0.01));
    }

    #[test]
    fn sample_ratio_respected() {
        let d = db(100);
        let s = sample_database(&d, 0.1, 7);
        assert_eq!(s.relation(RelId(0)).len(), 10);
        let full = sample_database(&d, 1.0, 7);
        assert_eq!(full.relation(RelId(0)).len(), 100);
        let empty = sample_database(&d, 0.0, 7);
        assert_eq!(empty.relation(RelId(0)).len(), 0);
    }

    #[test]
    fn sampling_deterministic_per_seed() {
        let d = db(50);
        let a = sample_database(&d, 0.2, 42);
        let b = sample_database(&d, 0.2, 42);
        let vals = |db: &Database| -> Vec<Value> {
            db.relation(RelId(0))
                .iter()
                .map(|t| t.get(rock_data::AttrId(0)).clone())
                .collect()
        };
        assert_eq!(vals(&a), vals(&b));
    }

    #[test]
    fn sampled_mining_recovers_fd_verified_on_full_data() {
        let d = db(120);
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&d, RelId(0), &[], &SpaceConfig::default());
        let disc = Discoverer::new(
            &reg,
            DiscoveryConfig {
                min_support: 0.02,
                min_confidence: 0.95,
                max_preconditions: 1,
                ..Default::default()
            },
        );
        let report = mine_with_sampling(&disc, &d, RelId(0), &space, 0.3, 0.05, 3);
        // the FD city → area_code must survive verification, with exact
        // full-data measures recorded
        assert!(!report.rules.is_empty());
        for r in report.rules.iter() {
            assert!(r.support >= 0.02, "{} supp {}", r.name, r.support);
            assert!(r.confidence >= 0.95);
        }
    }
}
