//! # rock-discovery — REE++ rule discovery (paper §3, §5.2, §5.4)
//!
//! Rock mines/learns REE++s from (possibly large, possibly dirty) data.
//! This crate implements the discovery stack:
//!
//! * [`space`] — predicate-space construction from the schema, column
//!   statistics and the registered ML models ("predicates, to construct
//!   predicates and corresponding auxiliary structures", §5.3 Fig. 3).
//! * [`cache`] — the predicate satisfaction-bitset cache: each predicate is
//!   evaluated once per instance set (ML inference included), materialized
//!   as a dense bitset, and candidate measures reduce to AND+popcount. A
//!   byte budget with LRU spill bounds residency.
//! * [`levelwise`] — the core miner: levelwise search over precondition
//!   conjunctions with support/confidence thresholds and anti-monotone
//!   pruning, parallelized over Crystal work units.
//! * [`sampling`] — multi-round sampling with probabilistic accuracy
//!   guarantees ([36]): mine on a fraction of D, with Hoeffding bounds
//!   connecting sample support/confidence to their true values.
//! * [`topk`] — top-k discovery under objective (support, confidence,
//!   coverage diversification) and subjective (learned user preference)
//!   measures, plus the anytime iterator ([37]).
//! * [`prune`] — FDX-style correlation pruning of predicate candidates and
//!   the polynomial-expression learner (XGBoost-style feature ranking +
//!   LASSO) of §5.4.

// Mining runs on the Crystal cluster's worker threads: a panic in a
// candidate evaluation quarantines the unit and silently shrinks the
// mined ruleset, so non-test code surfaces errors as values (same gate
// as the engine crates).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod levelwise;
pub mod prune;
pub mod sampling;
pub mod space;
pub mod topk;

pub use cache::{BitsetCache, CacheStats, PredicateBitsets};
pub use levelwise::{Discoverer, DiscoveryConfig};
pub use space::PredicateSpace;
pub use topk::{AnytimeMiner, PreferenceModel, RuleScore};
