//! `rock-lint` — static concurrency analysis for the Rock workspace.
//!
//! The chase, scheduler, and caches are all concurrent; PRs touching them
//! are one forgotten rank away from a deadlock and one Relaxed load away
//! from a stale read. This crate walks the workspace sources and enforces
//! the concurrency contract mechanically:
//!
//! | code | rule | severity |
//! |------|------|----------|
//! | L001 | raw `std::sync`/`parking_lot`/`crossbeam::utils::Backoff` primitive outside the `rock_crystal::sync` shim | error |
//! | L002 | nested lock acquisition violating the static `LockRank` order | error |
//! | L003 | `Ordering::SeqCst` without a `lint:allow(L003) <reason>` justification | warning |
//! | L004 | atomic store/load ordering mismatch on the same field | warning |
//! | L005 | blocking file I/O inside a scheduler work closure | warning |
//! | L006 | `.lock().unwrap()` poison propagation outside tests | warning |
//!
//! Any code can be suppressed at a site with a justified
//! `lint:allow(LXXX) <reason>` comment — the reason is mandatory.
//!
//! The crate is dependency-free on purpose: it gates the rest of the
//! workspace in CI, so it must build before everything else. Diagnostics
//! follow the `rock-analyze` idiom (typed codes, spans, severities that
//! map to exit codes 0/1/2, human + JSON output).
//!
//! Recall and precision are pinned by the seeded defect fixtures under
//! `fixtures/lint_defects/`: every `//~ LXXX` marker must be hit on its
//! exact line (100% recall) and nothing else may fire (zero false
//! positives) — [`check_fixtures`] is the self-check CI runs.

pub mod diag;
pub mod lints;
pub mod tokens;

pub use diag::{max_severity, to_json, Diagnostic, LintCode, Severity, Span};
pub use lints::{harvest_ranks, lint_file, RankTable};

use std::path::{Path, PathBuf};

/// Files the lints skip (the shim and the model checker are where the raw
/// primitives are *supposed* to live). Matched as path suffixes.
const SHIM_FILES: [&str; 2] = ["crystal/src/sync.rs", "crystal/src/model.rs"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    "tests",
    "benches",
    "examples",
    "fixtures",
    "node_modules",
];

fn is_shim(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    SHIM_FILES.iter().any(|s| norm.ends_with(s))
}

/// Collect `.rs` files under `root`, skipping [`SKIP_DIRS`], sorted for
/// deterministic output.
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn rel_key(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every source under `root` (a workspace or any directory).
/// Shim files contribute to the rank harvest but are not themselves
/// linted. Returns diagnostics sorted by (file, line, col).
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let paths = collect_sources(root);
    let mut files = Vec::new();
    for p in &paths {
        let Ok(src) = std::fs::read_to_string(p) else {
            continue; // non-UTF8: nothing for a token linter to do
        };
        files.push((rel_key(root, p), src));
    }
    let tokenized: Vec<(String, tokens::TokenStream)> = files
        .iter()
        .map(|(k, src)| (k.clone(), tokens::tokenize(src)))
        .collect();
    let ranks = harvest_ranks(&tokenized);
    let mut diags = Vec::new();
    for (key, src) in &files {
        if is_shim(key) {
            continue;
        }
        diags.extend(lint_file(key, src, &ranks));
    }
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.span.line, a.span.start).cmp(&(
            b.file.as_str(),
            b.span.line,
            b.span.start,
        ))
    });
    Ok(diags)
}

/// Outcome of checking the seeded defect fixtures.
#[derive(Debug, Default)]
pub struct FixtureReport {
    /// Markers that fired on their exact line (code, file, line).
    pub matched: Vec<(LintCode, String, u32)>,
    /// Markers no diagnostic hit — recall failures.
    pub missed: Vec<(LintCode, String, u32)>,
    /// Diagnostics with no marker — precision failures (false positives).
    pub unexpected: Vec<Diagnostic>,
}

impl FixtureReport {
    pub fn ok(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty() && !self.matched.is_empty()
    }
}

/// Check the seeded defect fixtures under `dir`: every `//~ LXXX` trailing
/// marker must produce a diagnostic of that code on that line, and no
/// diagnostic may fire on an unmarked site.
pub fn check_fixtures(dir: &Path) -> std::io::Result<FixtureReport> {
    let diags = lint_tree(dir)?;
    let mut expected: Vec<(LintCode, String, u32)> = Vec::new();
    for p in collect_sources(dir) {
        let Ok(src) = std::fs::read_to_string(&p) else {
            continue;
        };
        let key = rel_key(dir, &p);
        let ts = tokens::tokenize(&src);
        for c in &ts.comments {
            let Some(rest) = c.text.strip_prefix('~') else {
                continue;
            };
            for word in rest.split_whitespace() {
                if let Some(code) = LintCode::parse(word) {
                    expected.push((code, key.clone(), c.line));
                }
            }
        }
    }
    let mut report = FixtureReport::default();
    let mut unclaimed = diags;
    for (code, file, line) in expected {
        if let Some(pos) = unclaimed
            .iter()
            .position(|d| d.code == code && d.file == file && d.span.line == line)
        {
            unclaimed.remove(pos);
            report.matched.push((code, file, line));
        } else {
            report.missed.push((code, file, line));
        }
    }
    report.unexpected = unclaimed;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root, assuming the canonical crates/lint location.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root")
    }

    #[test]
    fn workspace_is_clean() {
        let diags = lint_tree(&workspace_root()).expect("lint workspace");
        assert!(
            diags.is_empty(),
            "the workspace must carry zero concurrency lint violations:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixtures_have_full_recall_and_precision() {
        let dir = workspace_root().join("fixtures/lint_defects");
        let report = check_fixtures(&dir).expect("lint fixtures");
        assert!(
            report.ok(),
            "missed (recall): {:?}\nunexpected (precision): {}",
            report.missed,
            report
                .unexpected
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // every code is represented at least once
        for code in LintCode::ALL {
            assert!(
                report.matched.iter().any(|(c, _, _)| *c == code),
                "fixture coverage gap: no seeded defect for {}",
                code.as_str()
            );
        }
    }

    #[test]
    fn shim_files_are_exempt() {
        assert!(is_shim("crates/crystal/src/sync.rs"));
        assert!(is_shim("crates/crystal/src/model.rs"));
        assert!(!is_shim("crates/data/src/column.rs"));
    }

    #[test]
    fn lint_tree_on_a_tempdir() {
        let dir = std::env::temp_dir().join(format!("rock-lint-test-{}", std::process::id()));
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(src_dir.join("bad.rs"), "use std::sync::Mutex;\n").unwrap();
        let diags = lint_tree(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::L001);
        assert_eq!(diags[0].file, "src/bad.rs");
    }
}
