//! A hand-rolled Rust lexer — just enough structure for the concurrency
//! lints: identifiers, punctuation, and literals with line/column spans,
//! with comments lifted out into a side channel (so `lint:allow(...)`
//! justifications and `//~ LXXX` fixture markers stay inspectable while
//! primitive names inside doc comments or strings never trigger a lint).
//!
//! It is deliberately not a full lexer: numeric literal suffixes, nested
//! generic disambiguation, and macro fragments are out of scope. The lints
//! operate on token *patterns* (`std :: sync :: Mutex`, `. lock ( )`), so
//! fidelity at that granularity is all that matters.

/// Kinds the lints care to distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, char, or numeric literal (text is the raw slice).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One token with its 1-based position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// A comment (line or block) with the line it starts on. Text excludes the
/// delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct TokenStream {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl TokenStream {
    /// All comment text attached to `line` (starting on it).
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

/// Tokenize `src`. Unterminated constructs (strings, block comments) are
/// closed at end of input rather than reported — the linter's job is to
/// scan code that already compiles.
pub fn tokenize(src: &str) -> TokenStream {
    let b: Vec<char> = src.chars().collect();
    let mut out = TokenStream::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // whitespace
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // line comment
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < b.len() && b[i] != '\n' {
                text.push(b[i]);
                bump!();
            }
            out.comments.push(Comment {
                line: start_line,
                text: text.trim_start_matches('/').trim().to_owned(),
            });
            continue;
        }
        // block comment (nesting)
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    bump!();
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: text.trim().trim_start_matches('*').trim().to_owned(),
            });
            continue;
        }
        // raw string r"..." / r#"..."#
        if c == 'r' && i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') {
            let (tl, tc) = (line, col);
            let save = i;
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                // consume through the matching `"###...`
                while i <= j {
                    bump!();
                }
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < b.len() && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            while i < k {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("r\"…\""),
                    line: tl,
                    col: tc,
                });
                continue;
            }
            let _ = save; // not a raw string (e.g. `r#foo` raw ident): fall through
        }
        // string literal
        if c == '"' {
            let (tl, tc) = (line, col);
            bump!();
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    bump!();
                    bump!();
                    continue;
                }
                if b[i] == '"' {
                    bump!();
                    break;
                }
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("\"…\""),
                line: tl,
                col: tc,
            });
            continue;
        }
        // char literal vs lifetime: 'a' is a char, 'a (no closing quote
        // right after one ident) is a lifetime
        if c == '\'' {
            let (tl, tc) = (line, col);
            // escape: definitely a char literal
            if i + 1 < b.len() && b[i + 1] == '\\' {
                bump!();
                bump!();
                bump!(); // escaped char
                if i < b.len() && b[i] == '\'' {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("'…'"),
                    line: tl,
                    col: tc,
                });
                continue;
            }
            // 'x' → char literal; otherwise lifetime
            if i + 2 < b.len() && b[i + 2] == '\'' {
                bump!();
                bump!();
                bump!();
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("'…'"),
                    line: tl,
                    col: tc,
                });
                continue;
            }
            bump!();
            let mut name = String::from("'");
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                name.push(b[i]);
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: name,
                line: tl,
                col: tc,
            });
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let (tl, tc) = (line, col);
            let mut text = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                // stop a range like `0..10` from swallowing the dots
                if b[i] == '.' && i + 1 < b.len() && b[i + 1] == '.' {
                    break;
                }
                text.push(b[i]);
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text,
                line: tl,
                col: tc,
            });
            continue;
        }
        // identifier / keyword
        if c.is_alphanumeric() || c == '_' {
            let (tl, tc) = (line, col);
            let mut text = String::new();
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                text.push(b[i]);
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tl,
                col: tc,
            });
            continue;
        }
        // punctuation, one char at a time
        let (tl, tc) = (line, col);
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tl,
            col: tc,
        });
        bump!();
    }
    out
}

/// True when tokens `toks[i..]` spell the `::`-separated path `segments`
/// (e.g. `["std", "sync", "Mutex"]` matches `std :: sync :: Mutex`).
pub fn path_at(toks: &[Tok], i: usize, segments: &[&str]) -> bool {
    let mut j = i;
    for (n, seg) in segments.iter().enumerate() {
        if n > 0 {
            if j + 1 >= toks.len() || !toks[j].is(":") || !toks[j + 1].is(":") {
                return false;
            }
            j += 2;
        }
        if j >= toks.len() || !toks[j].is_ident(seg) {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_spans() {
        let ts = tokenize("let x = a.lock();");
        let texts: Vec<&str> = ts.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "lock", "(", ")", ";"]
        );
        assert_eq!(ts.toks[0].line, 1);
        assert_eq!(ts.toks[0].col, 1);
        assert_eq!(ts.toks[1].col, 5);
    }

    #[test]
    fn comments_are_lifted_out() {
        let ts = tokenize("a // std::sync::Mutex\nb /* parking_lot */ c");
        let texts: Vec<&str> = ts.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
        assert_eq!(ts.comments.len(), 2);
        assert_eq!(ts.comments[0].line, 1);
        assert!(ts.comments[0].text.contains("std::sync::Mutex"));
        assert_eq!(ts.comments[1].line, 2);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let ts = tokenize(r#"let s = "std::sync::Mutex { } // x"; y"#);
        assert!(ts.toks.iter().all(|t| t.text != "Mutex" && t.text != "{"));
        assert!(ts.toks.iter().any(|t| t.is_ident("y")));
        assert!(ts.comments.is_empty());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let ts = tokenize("let a = r#\"quote \" inside\"#; let b = \"esc \\\" q\"; z");
        assert!(ts.toks.iter().any(|t| t.is_ident("z")));
        assert_eq!(
            ts.toks
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = tokenize("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(ts
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(
            ts.toks
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let ts = tokenize("for i in 0..10 {}");
        let texts: Vec<&str> = ts.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
    }

    #[test]
    fn path_matching() {
        let ts = tokenize("use std::sync::Mutex;");
        assert!(path_at(&ts.toks, 1, &["std", "sync", "Mutex"]));
        assert!(!path_at(&ts.toks, 1, &["std", "sync", "RwLock"]));
        assert!(!path_at(&ts.toks, 0, &["std"]));
        assert!(path_at(&ts.toks, 1, &["std", "sync"]));
    }
}
