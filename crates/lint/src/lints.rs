//! The six concurrency lint passes (L001–L006) over the token stream of
//! one file, plus the cross-file rank harvest they share.
//!
//! Every pass honours a universal suppression: a comment on the same line
//! or the line above reading `lint:allow(LXXX) <reason>` silences that
//! code at that site — and the reason must be non-empty, so every
//! suppression carries its justification (this is how L003's SeqCst
//! allowlist works, and how the seeded-defect fixtures annotate their own
//! miniature shim).

use crate::diag::{Diagnostic, LintCode, Span};
use crate::tokens::{path_at, tokenize, Tok, TokenStream};
use std::collections::HashMap;

/// `std::sync` items that must go through the shim.
const DENY_STD_SYNC: [&str; 9] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

// Everything else in `std::sync` stays allowed — `Arc`, `Weak`, and
// `mpsc` carry no lock-rank or loom-modelling concerns.

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Ranks harvested from the scanned file set: the `LockRank` enum values
/// plus, per file, which struct field holds which rank (read off
/// `field: RankedMutex::new(LockRank::Name, …)` constructor sites).
#[derive(Debug, Default)]
pub struct RankTable {
    /// `LockRank` variant → discriminant value.
    pub values: HashMap<String, u64>,
    /// file → (field name → rank variant name).
    pub fields: HashMap<String, HashMap<String, String>>,
}

impl RankTable {
    fn field_rank(&self, file: &str, field: &str) -> Option<(&str, u64)> {
        let name = self.fields.get(file)?.get(field)?;
        let v = self.values.get(name)?;
        Some((name.as_str(), *v))
    }
}

/// Harvest pass: runs over every file (including the shim) before linting.
pub fn harvest_ranks(files: &[(String, TokenStream)]) -> RankTable {
    let mut table = RankTable::default();
    for (path, ts) in files {
        let toks = &ts.toks;
        let mut i = 0;
        while i < toks.len() {
            // enum LockRank { Name = N, … }
            if toks[i].is_ident("enum")
                && i + 2 < toks.len()
                && toks[i + 1].is_ident("LockRank")
                && toks[i + 2].is("{")
            {
                let mut j = i + 3;
                while j < toks.len() && !toks[j].is("}") {
                    if j + 2 < toks.len()
                        && toks[j].kind == crate::tokens::TokKind::Ident
                        && toks[j + 1].is("=")
                    {
                        if let Ok(v) = toks[j + 2].text.replace('_', "").parse::<u64>() {
                            table.values.insert(toks[j].text.clone(), v);
                        }
                        j += 3;
                    } else {
                        j += 1;
                    }
                }
                i = j;
                continue;
            }
            // field: RankedMutex::new(LockRank::Name  (struct literals and
            // `let field = RankedMutex::new(…)` both match — the ident two
            // tokens back is the binding either way)
            if (toks[i].is_ident("RankedMutex") || toks[i].is_ident("RankedRwLock"))
                && path_at(toks, i, &[&toks[i].text, "new"])
                && i >= 2
                && (toks[i - 1].is(":") || toks[i - 1].is("="))
                && toks[i - 2].kind == crate::tokens::TokKind::Ident
            {
                // …( LockRank :: Name
                let mut j = i + 4; // past `RankedMutex : : new`
                if j < toks.len() && toks[j].is("(") {
                    j += 1;
                    if path_at(toks, j, &["LockRank"]) && j + 3 < toks.len() {
                        let name = toks[j + 3].text.clone();
                        table
                            .fields
                            .entry(path.clone())
                            .or_default()
                            .insert(toks[i - 2].text.clone(), name);
                    }
                }
            }
            i += 1;
        }
    }
    table
}

/// True when `code` is suppressed at `line` by a justified
/// `lint:allow(LXXX) reason` comment on the same or the preceding line.
fn allowed(ts: &TokenStream, code: LintCode, line: u32) -> bool {
    let needle = format!("lint:allow({})", code.as_str());
    for l in [line.saturating_sub(1), line] {
        for c in ts.comments_on(l) {
            if let Some(pos) = c.text.find(&needle) {
                let reason = c.text[pos + needle.len()..]
                    .trim_start_matches([' ', ':', '-', '—', '–'])
                    .trim();
                if !reason.is_empty() {
                    return true;
                }
            }
        }
    }
    false
}

fn span(t: &Tok) -> Span {
    Span::at(t.line, t.col, t.col + t.text.chars().count() as u32)
}

/// Index of the `)` matching the `(` at `open`, or the last token.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is("(") {
            depth += 1;
        } else if toks[i].is(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Token index ranges covered by `#[cfg(test)]` or `#[test]` items.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = toks[i].is("#")
            && i + 6 < toks.len()
            && toks[i + 1].is("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is(")")
            && toks[i + 6].is("]");
        let is_test_attr = toks[i].is("#")
            && i + 3 < toks.len()
            && toks[i + 1].is("[")
            && toks[i + 2].is_ident("test")
            && toks[i + 3].is("]");
        if is_cfg_test || is_test_attr {
            // the attached item runs to the close of its first brace block
            let mut j = i;
            while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is("{") {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is("{") {
                        depth += 1;
                    } else if toks[k].is("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                regions.push((i, k.min(toks.len() - 1)));
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|(s, e)| i >= *s && i <= *e)
}

/// Receiver field of a method call: the ident directly before the `.` at
/// `dot`, looking through one `[index]` suffix (`self.shards[i].lock()`).
fn receiver_field(toks: &[Tok], dot: usize) -> Option<usize> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    if toks[j].is("]") {
        let mut depth = 0usize;
        loop {
            if toks[j].is("]") {
                depth += 1;
            } else if toks[j].is("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (toks[j].kind == crate::tokens::TokKind::Ident).then_some(j)
}

/// Lint one file. `ranks` comes from [`harvest_ranks`] over the whole file
/// set; `file` is the path key used there.
pub fn lint_file(file: &str, src: &str, ranks: &RankTable) -> Vec<Diagnostic> {
    let ts = tokenize(src);
    let mut diags = Vec::new();
    l001_raw_primitives(file, &ts, &mut diags);
    l002_lock_ranks(file, &ts, ranks, &mut diags);
    l003_seqcst(file, &ts, &mut diags);
    l004_ordering_mismatch(file, &ts, &mut diags);
    l005_blocking_io(file, &ts, &mut diags);
    l006_poison_unwrap(file, &ts, &mut diags);
    diags.sort_by_key(|d| (d.span.line, d.span.start));
    diags
}

fn push(
    diags: &mut Vec<Diagnostic>,
    ts: &TokenStream,
    code: LintCode,
    file: &str,
    t: &Tok,
    message: String,
    note: &str,
) {
    if allowed(ts, code, t.line) {
        return;
    }
    let mut d = Diagnostic::new(code, file, span(t), message);
    if !note.is_empty() {
        d = d.with_note(note.to_owned());
    }
    diags.push(d);
}

/// L001: raw `std::sync` / `parking_lot` / `crossbeam::utils::Backoff`
/// primitives outside the shim.
fn l001_raw_primitives(file: &str, ts: &TokenStream, diags: &mut Vec<Diagnostic>) {
    const NOTE: &str = "route synchronization through rock_crystal::sync so loom models and \
                        lock ranks see it";
    let toks = &ts.toks;
    let mut i = 0;
    while i < toks.len() {
        // std :: sync :: …
        if path_at(toks, i, &["std", "sync"])
            && i + 5 < toks.len()
            && toks[i + 4].is(":")
            && toks[i + 5].is(":")
        {
            let after = i + 6; // `std : : sync : :` → the item
            if after < toks.len() {
                let t = &toks[after];
                if DENY_STD_SYNC.contains(&t.text.as_str()) || t.is_ident("atomic") {
                    push(
                        diags,
                        ts,
                        LintCode::L001,
                        file,
                        t,
                        format!("direct use of std::sync::{}", t.text),
                        NOTE,
                    );
                } else if t.is("{") {
                    // use std::sync::{Arc, Mutex, atomic::{…}}
                    let mut j = after + 1;
                    let mut depth = 1usize;
                    while j < toks.len() && depth > 0 {
                        if toks[j].is("{") {
                            depth += 1;
                        } else if toks[j].is("}") {
                            depth -= 1;
                        } else if depth == 1
                            && toks[j].kind == crate::tokens::TokKind::Ident
                            && (DENY_STD_SYNC.contains(&toks[j].text.as_str())
                                || toks[j].is_ident("atomic"))
                        {
                            push(
                                diags,
                                ts,
                                LintCode::L001,
                                file,
                                &toks[j],
                                format!("direct use of std::sync::{}", toks[j].text),
                                NOTE,
                            );
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
            }
        }
        // parking_lot :: …
        if toks[i].is_ident("parking_lot")
            && i + 2 < toks.len()
            && toks[i + 1].is(":")
            && toks[i + 2].is(":")
        {
            push(
                diags,
                ts,
                LintCode::L001,
                file,
                &toks[i],
                "direct use of parking_lot".to_owned(),
                NOTE,
            );
            i += 3;
            continue;
        }
        // crossbeam :: utils :: Backoff (deque/scope/channel stay allowed)
        if path_at(toks, i, &["crossbeam", "utils", "Backoff"]) {
            push(
                diags,
                ts,
                LintCode::L001,
                file,
                &toks[i],
                "direct use of crossbeam::utils::Backoff".to_owned(),
                NOTE,
            );
        }
        i += 1;
    }
}

/// L002: acquiring a ranked lock while holding one of equal or higher
/// rank. Intraprocedural over guard bindings: `let g = self.f.lock()` is
/// held to end of scope (or `drop(g)`); a chained call
/// (`self.f.read().get(…)`) and bare statement temporaries die at the end
/// of their statement; condition temporaries at the `{` that follows.
fn l002_lock_ranks(file: &str, ts: &TokenStream, ranks: &RankTable, diags: &mut Vec<Diagnostic>) {
    struct Guard {
        name: Option<String>,
        rank_name: String,
        rank: u64,
        depth: usize,
        temp: bool,
    }
    let toks = &ts.toks;
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut pending_let: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is("{") {
            depth += 1;
            held.retain(|g| !g.temp);
            pending_let = None;
        } else if t.is("}") {
            depth = depth.saturating_sub(1);
            held.retain(|g| g.depth <= depth);
            pending_let = None;
        } else if t.is(";") {
            held.retain(|g| !(g.temp && g.depth >= depth));
            pending_let = None;
        } else if t.is_ident("let") {
            // let [mut] name =
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len()
                && toks[j].kind == crate::tokens::TokKind::Ident
                && toks[j + 1].is("=")
            {
                pending_let = Some(toks[j].text.clone());
            }
        } else if t.is_ident("drop") && i + 2 < toks.len() && toks[i + 1].is("(") {
            let name = &toks[i + 2].text;
            held.retain(|g| g.name.as_deref() != Some(name.as_str()));
        } else if (t.is_ident("lock")
            || t.is_ident("read")
            || t.is_ident("write")
            || t.is_ident("try_lock"))
            && i >= 2
            && toks[i - 1].is(".")
            && i + 2 < toks.len()
            && toks[i + 1].is("(")
            && toks[i + 2].is(")")
        {
            if let Some(fidx) = receiver_field(toks, i - 1) {
                if let Some((rname, rank)) = ranks.field_rank(file, &toks[fidx].text) {
                    for g in &held {
                        if g.rank >= rank {
                            push(
                                diags,
                                ts,
                                LintCode::L002,
                                file,
                                t,
                                format!(
                                    "acquiring {} (rank {rank}) while holding {} (rank {})",
                                    rname, g.rank_name, g.rank
                                ),
                                "LockRank order is total: nested acquisitions must strictly \
                                 increase; restructure or drop the outer guard first",
                            );
                        }
                    }
                    // chained call → the guard is consumed, not bound
                    let chained = i + 3 < toks.len() && toks[i + 3].is(".");
                    let bound = pending_let.clone().filter(|_| !chained);
                    held.push(Guard {
                        temp: bound.is_none(),
                        name: bound,
                        rank_name: rname.to_owned(),
                        rank,
                        depth,
                    });
                }
            }
        }
        i += 1;
    }
}

/// L003: `SeqCst` without a justified `lint:allow(L003)` comment.
fn l003_seqcst(file: &str, ts: &TokenStream, diags: &mut Vec<Diagnostic>) {
    for t in &ts.toks {
        if t.is_ident("SeqCst") {
            push(
                diags,
                ts,
                LintCode::L003,
                file,
                t,
                "Ordering::SeqCst without justification".to_owned(),
                "state why acquire/release is insufficient in a `lint:allow(L003) <reason>` \
                 comment, or weaken the ordering",
            );
        }
    }
}

/// L004: a field written with `store` and read with `load` at mismatched
/// strengths — Release stores read by Relaxed loads (lost publication) or
/// Relaxed stores read by Acquire loads (acquire with nothing to pair).
fn l004_ordering_mismatch(file: &str, ts: &TokenStream, diags: &mut Vec<Diagnostic>) {
    #[derive(Default)]
    struct Sites {
        stores: Vec<(String, usize)>,
        loads: Vec<(String, usize)>,
    }
    let toks = &ts.toks;
    let mut fields: HashMap<String, Sites> = HashMap::new();
    for i in 0..toks.len() {
        let is_store = toks[i].is_ident("store");
        let is_load = toks[i].is_ident("load");
        if !(is_store || is_load) || i == 0 || !toks[i - 1].is(".") {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is("(") {
            continue;
        }
        let Some(fidx) = receiver_field(toks, i - 1) else {
            continue;
        };
        let close = match_paren(toks, i + 1);
        let ordering = toks[i + 1..close]
            .iter()
            .rev()
            .find(|t| ORDERINGS.contains(&t.text.as_str()));
        let Some(ord) = ordering else { continue };
        let entry = fields.entry(toks[fidx].text.clone()).or_default();
        if is_store {
            entry.stores.push((ord.text.clone(), i));
        } else {
            entry.loads.push((ord.text.clone(), i));
        }
    }
    for (field, sites) in fields {
        let store_pub = sites
            .stores
            .iter()
            .any(|(o, _)| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"));
        let store_relaxed = sites.stores.iter().any(|(o, _)| o == "Relaxed");
        let load_acq = sites
            .loads
            .iter()
            .any(|(o, _)| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"));
        let load_relaxed = sites.loads.iter().any(|(o, _)| o == "Relaxed");
        if store_pub && load_relaxed {
            for (o, i) in &sites.loads {
                if o == "Relaxed" {
                    push(
                        diags,
                        ts,
                        LintCode::L004,
                        file,
                        &toks[*i],
                        format!(
                            "field `{field}` is published with Release stores but read with a \
                             Relaxed load"
                        ),
                        "a Relaxed load does not synchronize with the Release store: memory \
                         written before the store may not be visible; load with Acquire",
                    );
                }
            }
        }
        if store_relaxed && load_acq {
            for (o, i) in &sites.stores {
                if o == "Relaxed" {
                    push(
                        diags,
                        ts,
                        LintCode::L004,
                        file,
                        &toks[*i],
                        format!(
                            "field `{field}` is read with Acquire loads but written with a \
                             Relaxed store"
                        ),
                        "an Acquire load only synchronizes with a Release (or stronger) store; \
                         store with Release",
                    );
                }
            }
        }
    }
}

/// L005: blocking file I/O inside a scheduler work closure (the argument
/// list of an `.execute(…)` call).
fn l005_blocking_io(file: &str, ts: &TokenStream, diags: &mut Vec<Diagnostic>) {
    const NOTE: &str = "work closures run on scheduler worker threads; a blocked worker stalls \
                        every unit behind it — move I/O outside execute() or hand it to a \
                        dedicated thread";
    let toks = &ts.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("execute") && i > 0 && toks[i - 1].is(".")) {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is("(") {
            continue;
        }
        let close = match_paren(toks, i + 1);
        let mut j = i + 2;
        while j < close {
            let hit = if path_at(toks, j, &["std", "fs"]) {
                Some("std::fs")
            } else if toks[j].is_ident("fs")
                && j + 2 < close
                && toks[j + 1].is(":")
                && toks[j + 2].is(":")
                && (j == 0 || !toks[j - 1].is(":"))
            {
                Some("fs::")
            } else if path_at(toks, j, &["File", "open"]) || path_at(toks, j, &["File", "create"]) {
                Some("File")
            } else if toks[j].is_ident("OpenOptions") {
                Some("OpenOptions")
            } else {
                None
            };
            if let Some(what) = hit {
                push(
                    diags,
                    ts,
                    LintCode::L005,
                    file,
                    &toks[j],
                    format!("blocking file I/O ({what}) inside a scheduler work closure"),
                    NOTE,
                );
                // one diagnostic per execute() call is enough
                break;
            }
            j += 1;
        }
    }
}

/// L006: `.lock().unwrap()` (and rwlock read/write variants) outside test
/// code — poison propagation where the shim's poison-free guards belong.
fn l006_poison_unwrap(file: &str, ts: &TokenStream, diags: &mut Vec<Diagnostic>) {
    let toks = &ts.toks;
    let regions = test_regions(toks);
    for i in 0..toks.len() {
        if !(toks[i].is_ident("lock") || toks[i].is_ident("read") || toks[i].is_ident("write")) {
            continue;
        }
        // . lock ( ) . unwrap ( )
        if i == 0
            || !toks[i - 1].is(".")
            || i + 6 >= toks.len()
            || !toks[i + 1].is("(")
            || !toks[i + 2].is(")")
            || !toks[i + 3].is(".")
            || !(toks[i + 4].is_ident("unwrap") || toks[i + 4].is_ident("expect"))
            || !toks[i + 5].is("(")
        {
            continue;
        }
        if in_regions(&regions, i) {
            continue;
        }
        push(
            diags,
            ts,
            LintCode::L006,
            file,
            &toks[i + 4],
            format!(
                "`.{}().{}()` propagates lock poisoning",
                toks[i].text,
                toks[i + 4].text
            ),
            "a panic in one critical section poisons the lock and cascades panics through \
             every later user; use the rock_crystal::sync shim (poison-free guards)",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let files = vec![("t.rs".to_owned(), tokenize(src))];
        let ranks = harvest_ranks(&files);
        lint_file("t.rs", src, &ranks)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn l001_flags_raw_primitives_and_groups() {
        let d = lint_src("use std::sync::Mutex;\n");
        assert_eq!(codes(&d), vec!["L001"]);
        let d = lint_src("use std::sync::{Arc, RwLock, atomic::{AtomicU64, Ordering}};\n");
        assert_eq!(codes(&d), vec!["L001", "L001"]); // RwLock + atomic, not Arc
        let d = lint_src("use parking_lot::Mutex;\nuse crossbeam::utils::Backoff;\n");
        assert_eq!(codes(&d), vec!["L001", "L001"]);
    }

    #[test]
    fn l001_allows_arc_channels_and_deque() {
        let d = lint_src(
            "use std::sync::Arc;\nuse std::sync::mpsc;\nuse crossbeam::deque::Injector;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l001_ignores_comments_and_strings() {
        let d = lint_src("// std::sync::Mutex\nlet s = \"parking_lot::Mutex\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l002_flags_inverted_nesting() {
        let src = "\
enum LockRank { Low = 10, High = 20 }
struct S;
fn new() {
    let s = T { low: RankedMutex::new(LockRank::Low, 0), high: RankedMutex::new(LockRank::High, 0) };
}
fn bad(s: &T) {
    let g = s.high.lock();
    let h = s.low.lock();
}
fn good(s: &T) {
    let g = s.low.lock();
    let h = s.high.lock();
}
";
        let d = lint_src(src);
        assert_eq!(codes(&d), vec!["L002"]);
        assert_eq!(d[0].span.line, 8);
        assert!(d[0].message.contains("Low (rank 10)"));
        assert!(d[0].message.contains("High (rank 20)"));
    }

    #[test]
    fn l002_guard_drops_release_ranks() {
        let src = "\
enum LockRank { Low = 10, High = 20 }
fn new() {
    let s = T { low: RankedMutex::new(LockRank::Low, 0), high: RankedMutex::new(LockRank::High, 0) };
}
fn ok(s: &T) {
    let g = s.high.lock();
    drop(g);
    let h = s.low.lock();
}
fn ok_scoped(s: &T) {
    { let g = s.high.lock(); }
    let h = s.low.lock();
}
fn ok_chained(s: &T) {
    let v = s.high.lock().clone();
    let h = s.low.lock();
}
";
        let d = lint_src(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l002_same_rank_reacquisition_flagged() {
        let src = "\
enum LockRank { Only = 10 }
fn new() { let s = T { a: RankedMutex::new(LockRank::Only, 0) }; }
fn bad(s: &T) {
    let g = s.a.lock();
    let h = s.a.lock();
}
";
        let d = lint_src(src);
        assert_eq!(codes(&d), vec!["L002"]);
    }

    #[test]
    fn l003_requires_justification() {
        let d = lint_src("x.store(1, Ordering::SeqCst);\n");
        assert_eq!(codes(&d), vec!["L003"]);
        let d = lint_src(
            "// lint:allow(L003) store must order with the CAS in try_claim\n\
             x.store(1, Ordering::SeqCst);\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // an empty reason does not count
        let d = lint_src("// lint:allow(L003)\nx.store(1, Ordering::SeqCst);\n");
        assert_eq!(codes(&d), vec!["L003"]);
    }

    #[test]
    fn l004_flags_release_store_relaxed_load() {
        let src = "\
fn a(s: &S) { s.flag.store(true, Ordering::Release); }
fn b(s: &S) -> bool { s.flag.load(Ordering::Relaxed) }
";
        let d = lint_src(src);
        assert_eq!(codes(&d), vec!["L004"]);
        assert!(d[0].message.contains("`flag`"));
    }

    #[test]
    fn l004_flags_relaxed_store_acquire_load() {
        let src = "\
fn a(s: &S) { s.flag.store(true, Ordering::Relaxed); }
fn b(s: &S) -> bool { s.flag.load(Ordering::Acquire) }
";
        let d = lint_src(src);
        assert_eq!(codes(&d), vec!["L004"]);
    }

    #[test]
    fn l004_consistent_pairs_and_rmws_are_clean() {
        let src = "\
fn a(s: &S) { s.flag.store(true, Ordering::Release); }
fn b(s: &S) -> bool { s.flag.load(Ordering::Acquire) }
fn c(s: &S) { s.count.fetch_add(1, Ordering::Relaxed); }
fn d(s: &S) -> u64 { s.count.load(Ordering::Relaxed) }
";
        let d = lint_src(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l005_flags_fs_in_execute_closure() {
        let src = "\
fn run(c: &Cluster) {
    let out = c.execute(units, |u| {
        std::fs::write(\"/tmp/x\", b\"y\").unwrap();
        u.id
    });
}
";
        let d = lint_src(src);
        assert_eq!(codes(&d), vec!["L005"]);
        // I/O outside the closure is fine
        let d = lint_src("fn f() { std::fs::write(\"/tmp/x\", b\"y\").unwrap(); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l006_flags_poison_unwrap_outside_tests() {
        let d = lint_src("fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap() }\n");
        assert_eq!(codes(&d), vec!["L006"]);
        let d = lint_src(
            "#[cfg(test)]\nmod tests {\n    fn f(m: &M) -> u8 { *m.lock().unwrap() }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // io-style read(&mut buf) has arguments: not a lock
        let d = lint_src("fn f(mut r: R) { r.read(&mut buf).unwrap(); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn harvest_reads_enum_and_fields() {
        let files = vec![(
            "a.rs".to_owned(),
            tokenize(
                "enum LockRank { A = 10, B = 20 }\n\
                 fn n() { let s = S { x: RankedMutex::new(LockRank::A, 0) }; }\n",
            ),
        )];
        let t = harvest_ranks(&files);
        assert_eq!(t.values.get("A"), Some(&10));
        assert_eq!(t.values.get("B"), Some(&20));
        assert_eq!(t.field_rank("a.rs", "x"), Some(("A", 10)));
        assert_eq!(t.field_rank("a.rs", "y"), None);
    }
}
