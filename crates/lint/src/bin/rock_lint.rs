//! `rock-lint` — the workspace concurrency linter from the CLI.
//!
//! ```text
//! rock-lint [--workspace | --path DIR] [--root DIR] \
//!           [--format human|json] [--fixtures]
//! ```
//!
//! `--workspace` (the default) lints every crate source under the
//! workspace root; `--path` lints an arbitrary tree. `--fixtures` runs the
//! seeded-defect self-check instead: every `//~ LXXX` marker in
//! `fixtures/lint_defects/` must be hit on its exact line and nothing else
//! may fire. Exit code is the maximum severity seen: 0 clean, 1 warnings,
//! 2 errors (and 2 on any fixture recall/precision failure).

use rock_lint::{check_fixtures, lint_tree, max_severity, to_json, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    path: Option<PathBuf>,
    root: PathBuf,
    format: String,
    fixtures: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        path: None,
        root: PathBuf::from("."),
        format: "human".to_owned(),
        fixtures: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--workspace" | "-w" => opts.path = None,
            "--path" | "-p" => opts.path = Some(PathBuf::from(take("--path")?)),
            "--root" => opts.root = PathBuf::from(take("--root")?),
            "--format" | "-f" => opts.format = take("--format")?,
            "--fixtures" => opts.fixtures = true,
            "--help" | "-h" => {
                println!(
                    "usage: rock-lint [--workspace | --path DIR] [--root DIR] \
                     [--format human|json] [--fixtures]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !matches!(opts.format.as_str(), "human" | "json") {
        return Err(format!("unknown format '{}'", opts.format));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rock-lint: {e}");
            return ExitCode::from(64); // EX_USAGE
        }
    };
    if opts.fixtures {
        return run_fixtures(&opts);
    }
    let target = opts.path.clone().unwrap_or_else(|| opts.root.clone());
    let label = if opts.path.is_some() {
        target.to_string_lossy().into_owned()
    } else {
        "workspace".to_owned()
    };
    let diags = match lint_tree(&target) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rock-lint: scanning {}: {e}", target.display());
            return ExitCode::from(70); // EX_SOFTWARE
        }
    };
    if opts.format == "json" {
        println!("{}", to_json(&label, &diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count();
        println!(
            "rock-lint: {label}: {} violation(s) ({errors} error(s), {} warning(s))",
            diags.len(),
            diags.len() - errors
        );
    }
    ExitCode::from(max_severity(&diags).map_or(0, |s| s.exit_code() as u8))
}

fn run_fixtures(opts: &Opts) -> ExitCode {
    let dir = opts.root.join("fixtures/lint_defects");
    let report = match check_fixtures(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rock-lint: scanning {}: {e}", dir.display());
            return ExitCode::from(70);
        }
    };
    println!(
        "rock-lint fixtures: {} matched, {} missed, {} unexpected",
        report.matched.len(),
        report.missed.len(),
        report.unexpected.len()
    );
    for (code, file, line) in &report.matched {
        println!("   hit {} {file}:{line}", code.as_str());
    }
    for (code, file, line) in &report.missed {
        println!("   MISSED (recall) {} {file}:{line}", code.as_str());
    }
    for d in &report.unexpected {
        println!("   UNEXPECTED (precision) {d}");
    }
    if report.ok() {
        println!("rock-lint fixtures: 100% recall, zero false positives");
        ExitCode::from(0)
    } else {
        ExitCode::from(2)
    }
}
