//! Lint diagnostics in the `rock-analyze` style: typed codes, severities
//! that map onto process exit codes, spans, and notes — plus a hand-rolled
//! JSON rendering (this crate is dependency-free by design).

use std::fmt;

/// Where in a file a diagnostic points. Lines and columns are 1-based;
/// `end` is exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn at(line: u32, start: u32, end: u32) -> Span {
        Span { line, start, end }
    }
}

/// Severity, ordered so `max()` yields the process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn exit_code(self) -> i32 {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The concurrency lint codes, 1:1 with a severity and a rule name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Direct use of a raw synchronization primitive outside the
    /// `rock_crystal::sync` shim.
    L001,
    /// Nested lock acquisition that violates the static `LockRank` order.
    L002,
    /// `Ordering::SeqCst` without a `lint:allow(L003)` justification.
    L003,
    /// Atomic store/load ordering mismatch on the same field.
    L004,
    /// Blocking file I/O inside a scheduler work closure.
    L005,
    /// `.lock().unwrap()` poison propagation outside test code.
    L006,
}

impl LintCode {
    pub const ALL: [LintCode; 6] = [
        LintCode::L001,
        LintCode::L002,
        LintCode::L003,
        LintCode::L004,
        LintCode::L005,
        LintCode::L006,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::L001 => "L001",
            LintCode::L002 => "L002",
            LintCode::L003 => "L003",
            LintCode::L004 => "L004",
            LintCode::L005 => "L005",
            LintCode::L006 => "L006",
        }
    }

    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    pub fn severity(self) -> Severity {
        match self {
            LintCode::L001 | LintCode::L002 => Severity::Error,
            LintCode::L003 | LintCode::L004 | LintCode::L005 | LintCode::L006 => Severity::Warning,
        }
    }

    pub fn rule(self) -> &'static str {
        match self {
            LintCode::L001 => "raw-sync-primitive",
            LintCode::L002 => "lock-rank-violation",
            LintCode::L003 => "unjustified-seqcst",
            LintCode::L004 => "ordering-mismatch",
            LintCode::L005 => "blocking-io-in-work-closure",
            LintCode::L006 => "lock-poison-unwrap",
        }
    }
}

/// One finding: a code, where it is, what it says, and why it matters.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: LintCode,
    /// Path as scanned (workspace-relative when walking a workspace).
    pub file: String,
    pub span: Span,
    pub message: String,
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: LintCode, file: &str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            file: file.to_owned(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}:{}:{}: {}",
            self.severity().as_str(),
            self.code.as_str(),
            self.code.rule(),
            self.file,
            self.span.line,
            self.span.start,
            self.message
        )?;
        for n in &self.notes {
            write!(f, "\n   note: {n}")?;
        }
        Ok(())
    }
}

/// Highest severity across a batch (None when empty): the exit code.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity()).max()
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a batch of diagnostics as one JSON document (the CI artifact).
pub fn to_json(label: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"rock-lint\",\n");
    out.push_str(&format!("  \"target\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str(&format!(
        "  \"errors\": {},\n",
        diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    ));
    out.push_str(&format!(
        "  \"warnings\": {},\n",
        diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"code\": \"{}\", ", d.code.as_str()));
        out.push_str(&format!("\"severity\": \"{}\", ", d.severity().as_str()));
        out.push_str(&format!("\"rule\": \"{}\", ", d.code.rule()));
        out.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file)));
        out.push_str(&format!(
            "\"line\": {}, \"col\": {}, ",
            d.span.line, d.span.start
        ));
        out.push_str(&format!("\"message\": \"{}\", ", json_escape(&d.message)));
        out.push_str("\"notes\": [");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("]}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_exit_codes() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::Error.exit_code(), 2);
        assert_eq!(Severity::Warning.exit_code(), 1);
        assert_eq!(Severity::Info.exit_code(), 0);
    }

    #[test]
    fn codes_roundtrip_and_have_rules() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
            assert!(!c.rule().is_empty());
        }
        assert_eq!(LintCode::parse("L999"), None);
    }

    #[test]
    fn display_carries_span_and_notes() {
        let d = Diagnostic::new(
            LintCode::L001,
            "crates/x/src/a.rs",
            Span::at(12, 5, 10),
            "direct use of std::sync::Mutex",
        )
        .with_note("route it through rock_crystal::sync::RankedMutex");
        let s = d.to_string();
        assert!(s.contains("error[L001/raw-sync-primitive]"));
        assert!(s.contains("crates/x/src/a.rs:12:5"));
        assert!(s.contains("note: route it"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic::new(LintCode::L003, "a\\b.rs", Span::at(1, 1, 2), "say \"why\"");
        let j = to_json("ws", &[d]);
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"warnings\": 1"));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"why\\\""));
    }

    #[test]
    fn empty_batch_has_no_severity() {
        assert_eq!(max_severity(&[]), None);
    }
}
