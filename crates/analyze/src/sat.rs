//! Pass 2 — local satisfiability of a rule's precondition.
//!
//! Purely syntactic abstract interpretation of the conjunction: constants
//! are compared with the engine's own SQL semantics (`CmpOp::eval`,
//! `Value::sql_cmp`), attribute–attribute comparisons are abstracted to
//! the set of orderings they admit, and reflexive predicates are
//! special-cased. A precondition flagged here can never hold on *any*
//! database, so the rule never fires — error severity (`E101`–`E103`) —
//! while trivially-true predicates are dead weight but harmless (`W104`).
//!
//! All checks are pairwise: `t.a > 5 && t.a < 3` is caught, the
//! three-way-only contradictions a full constraint solver would find are
//! deliberately out of scope (they do not occur in discovered rules,
//! whose preconditions are conjunctions of at most a handful of mined
//! predicates).

use rock_data::Value;
use rock_rees::{CmpOp, DiagCode, Diagnostic, Predicate, Rule};
use std::cmp::Ordering;

/// Orderings a comparison admits, as a bitmask over {Less, Equal, Greater}.
const LESS: u8 = 1;
const EQUAL: u8 = 2;
const GREATER: u8 = 4;

fn admitted(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => EQUAL,
        CmpOp::Neq => LESS | GREATER,
        CmpOp::Lt => LESS,
        CmpOp::Le => LESS | EQUAL,
        CmpOp::Gt => GREATER,
        CmpOp::Ge => GREATER | EQUAL,
    }
}

/// The operator as seen with its operands swapped (`a < b` ⇔ `b > a`).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Neq => CmpOp::Neq,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Check one rule's precondition; returns every `E101`/`E102`/`E103`/`W104`
/// it warrants. The caller guarantees the rule is well-formed (variable and
/// attribute indices valid).
pub fn check_rule(rule: &Rule) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_reflexive(rule, &mut out);
    check_consts(rule, &mut out);
    check_attr_pairs(rule, &mut out);
    check_null_overlap(rule, &mut out);
    out
}

/// E103/W104: predicates comparing a cell (or eid) with itself.
fn check_reflexive(rule: &Rule, out: &mut Vec<Diagnostic>) {
    for (i, p) in rule.precondition.iter().enumerate() {
        let span = rule.spans.precondition(i);
        match p {
            Predicate::Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } if lvar == rvar && lattr == rattr => match op {
                CmpOp::Neq | CmpOp::Lt | CmpOp::Gt => out.push(Diagnostic::new(
                    DiagCode::ReflexiveNeverTrue,
                    &rule.name,
                    span,
                    format!("{p} compares a cell with itself and can never hold"),
                )),
                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => out.push(Diagnostic::new(
                    DiagCode::TriviallyTrue,
                    &rule.name,
                    span,
                    format!("{p} compares a cell with itself and only filters nulls"),
                )),
            },
            Predicate::EidCmp { lvar, rvar, eq } if lvar == rvar => {
                if *eq {
                    out.push(Diagnostic::new(
                        DiagCode::TriviallyTrue,
                        &rule.name,
                        span,
                        format!("{p} compares a tuple's entity with itself and is always true"),
                    ));
                } else {
                    out.push(Diagnostic::new(
                        DiagCode::ReflexiveNeverTrue,
                        &rule.name,
                        span,
                        format!("{p} requires a tuple's entity to differ from itself"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// E101/E102: contradictory constant predicates on the same cell.
fn check_consts(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let consts: Vec<(usize, usize, rock_data::AttrId, CmpOp, &Value)> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::Const {
                var,
                attr,
                op,
                value,
            } => Some((i, *var, *attr, *op, value)),
            _ => None,
        })
        .collect();
    for (a, &(i, vi, ai, opi, ci)) in consts.iter().enumerate() {
        for &(j, vj, aj, opj, cj) in &consts[a + 1..] {
            if vi != vj || ai != aj {
                continue;
            }
            let span = rule.spans.precondition(j);
            let other = &rule.precondition[i];
            match (opi, opj) {
                (CmpOp::Eq, CmpOp::Eq) => {
                    if !ci.sql_eq(cj) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatConstEq,
                                &rule.name,
                                span,
                                format!(
                                    "cell is bound to '{cj}' here but to '{ci}' earlier \
                                     in the same precondition"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                // an equality fixes the value; any other constant
                // comparison on the cell must accept it
                (CmpOp::Eq, _) | (_, CmpOp::Eq) => {
                    let (eq_v, cmp_op, cmp_v) = if opi == CmpOp::Eq {
                        (ci, opj, cj)
                    } else {
                        (cj, opi, ci)
                    };
                    if !cmp_op.eval(eq_v, cmp_v) {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatCompare,
                                &rule.name,
                                span,
                                format!(
                                    "cell is fixed to '{eq_v}' but also required \
                                     {cmp_op} '{cmp_v}'"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                // a lower bound above an upper bound empties the interval
                (CmpOp::Gt | CmpOp::Ge, CmpOp::Lt | CmpOp::Le)
                | (CmpOp::Lt | CmpOp::Le, CmpOp::Gt | CmpOp::Ge) => {
                    let (lo, lo_op, hi, hi_op) = if matches!(opi, CmpOp::Gt | CmpOp::Ge) {
                        (ci, opi, cj, opj)
                    } else {
                        (cj, opj, ci, opi)
                    };
                    let strict = lo_op == CmpOp::Gt || hi_op == CmpOp::Lt;
                    let empty = match lo.sql_cmp(hi) {
                        Some(Ordering::Greater) => true,
                        Some(Ordering::Equal) => strict,
                        _ => false,
                    };
                    if empty {
                        out.push(
                            Diagnostic::new(
                                DiagCode::UnsatCompare,
                                &rule.name,
                                span,
                                format!(
                                    "bounds {lo_op} '{lo}' and {hi_op} '{hi}' leave \
                                     no possible value"
                                ),
                            )
                            .with_note(format!("conflicts with {other}")),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// E102: attribute–attribute comparisons on the same operand pair whose
/// admitted orderings are disjoint (`t.a < s.b && t.a > s.b`).
fn check_attr_pairs(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let attrs: Vec<(
        usize,
        (usize, rock_data::AttrId),
        (usize, rock_data::AttrId),
        CmpOp,
    )> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } if (lvar, lattr) != (rvar, rattr) => {
                // normalize operand order so mirrored writings compare equal
                let (l, r) = ((*lvar, *lattr), (*rvar, *rattr));
                if l <= r {
                    Some((i, l, r, *op))
                } else {
                    Some((i, r, l, mirror(*op)))
                }
            }
            _ => None,
        })
        .collect();
    for (a, &(i, li, ri, opi)) in attrs.iter().enumerate() {
        for &(j, lj, rj, opj) in &attrs[a + 1..] {
            if li != lj || ri != rj {
                continue;
            }
            if admitted(opi) & admitted(opj) == 0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::UnsatCompare,
                        &rule.name,
                        rule.spans.precondition(j),
                        format!(
                            "{} contradicts an earlier comparison of the same cells",
                            rule.precondition[j]
                        ),
                    )
                    .with_note(format!("conflicts with {}", rule.precondition[i])),
                );
            }
        }
    }
}

/// E102: `null(t.A)` conjoined with any comparison reading `t.A` — the
/// comparison needs a non-null value, the null check forbids one.
fn check_null_overlap(rule: &Rule, out: &mut Vec<Diagnostic>) {
    let nulls: Vec<(usize, usize, rock_data::AttrId)> = rule
        .precondition
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Predicate::IsNull { var, attr } => Some((i, *var, *attr)),
            _ => None,
        })
        .collect();
    if nulls.is_empty() {
        return;
    }
    for (j, p) in rule.precondition.iter().enumerate() {
        if !matches!(p, Predicate::Const { .. } | Predicate::Attr { .. }) {
            continue;
        }
        for v in p.tuple_vars() {
            for a in p.reads_of(v) {
                if let Some(&(i, ..)) = nulls
                    .iter()
                    .find(|&&(ni, nv, na)| nv == v && na == a && ni != j)
                {
                    out.push(
                        Diagnostic::new(
                            DiagCode::UnsatCompare,
                            &rule.name,
                            rule.spans.precondition(j),
                            format!(
                                "{p} compares a cell that null({}) requires to be null",
                                rule.precondition[i]
                            ),
                        )
                        .with_note("comparisons with null are always false".to_owned()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema};
    use rock_rees::parse_rule;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("a", AttrType::Str),
                ("b", AttrType::Int),
                ("c", AttrType::Int),
            ],
        )])
    }

    fn check(text: &str) -> Vec<Diagnostic> {
        check_rule(&parse_rule(text, &schema()).expect("rule parses"))
    }

    #[test]
    fn conflicting_const_eq_is_e101() {
        let ds = check("rule r: T(t) && t.a = 'x' && t.a = 'y' -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatConstEq);
        assert!(check("rule r: T(t) && t.a = 'x' && t.a = 'x' -> t.b = 1").is_empty());
    }

    #[test]
    fn eq_vs_comparison_is_e102() {
        let ds = check("rule r: T(t) && t.b = 5 && t.b > 9 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        let ds = check("rule r: T(t) && t.b != 5 && t.b = 5 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert!(check("rule r: T(t) && t.b = 5 && t.b > 1 -> t.a = 'x'").is_empty());
    }

    #[test]
    fn empty_interval_is_e102() {
        let ds = check("rule r: T(t) && t.b > 5 && t.b < 3 -> t.a = 'x'");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // touching bounds: strict empties, non-strict admits the point
        assert_eq!(
            check("rule r: T(t) && t.b >= 5 && t.b < 5 -> t.a = 'x'").len(),
            1
        );
        assert!(check("rule r: T(t) && t.b >= 5 && t.b <= 5 -> t.a = 'x'").is_empty());
    }

    #[test]
    fn reflexive_traps() {
        let ds = check("rule r: T(t) && t.a != t.a -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ReflexiveNeverTrue);
        let ds = check("rule r: T(t) && t.a = t.a -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::TriviallyTrue);
        let ds = check("rule r: T(t) && t.eid != t.eid -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ReflexiveNeverTrue);
    }

    #[test]
    fn contradictory_attr_pair_mirrored() {
        // written with operands swapped: t.b < s.b vs s.b < t.b
        let ds = check("rule r: T(t) && T(s) && t.b < s.b && s.b < t.b -> t.a = s.a");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // <= both ways admits equality — satisfiable
        assert!(check("rule r: T(t) && T(s) && t.b <= s.b && s.b <= t.b -> t.a = s.a").is_empty());
    }

    #[test]
    fn null_overlap_is_e102() {
        let ds = check("rule r: T(t) && null(t.a) && t.a = 'x' -> t.b = 1");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::UnsatCompare);
        // null on a different attribute is fine (the MI idiom)
        assert!(check("rule r: T(t) && null(t.a) && t.b = 1 -> t.c = 2").is_empty());
    }
}
