//! # rock-analyze — static analysis over REE++ rulesets
//!
//! Rock's guarantee that every fix is a *certain* logical consequence of
//! the rules and ground truth (paper §4) only holds when the ruleset
//! itself is sound: a contradictory precondition never fires, a dead rule
//! wastes every round it is evaluated in, and two rules assigning
//! different constants to the same cell surface as runtime chase conflicts
//! that a static pass could have predicted. Related systems make this a
//! first-class phase — HoloClean compiles and analyzes denial constraints
//! before repair, ERBlox restricts matching dependencies to a provably
//! confluent class — and this crate gives REE++ the same treatment.
//!
//! Four passes, all purely syntactic (no data, no ML models):
//!
//! 1. **Well-formedness** ([`wellformed`]) — typed version of the classic
//!    `Rule::validate` checks plus constant-domain and ML-predicate sanity
//!    (`E001`–`E007`).
//! 2. **Local satisfiability** ([`sat`]) — preconditions that can never
//!    hold: conflicting constant bindings, contradictory comparisons,
//!    reflexive traps (`E101`–`E103`), and trivially-true dead weight
//!    (`W104`).
//! 3. **Inter-rule analysis** ([`graph`]) — builds the [`RuleGraph`] of
//!    (consequence action) → (precondition read) edges and reports dead
//!    and subsumed rules (`W201`/`W202`).
//! 4. **Chase certification** ([`certify`]) — classifies the ruleset's
//!    chase termination (static round bound / stratified lattice bound /
//!    unbounded), upgrades the confluence check to critical-pair
//!    co-satisfiability, and exports the stratified
//!    [`ChaseSchedule`](rock_rees::ChaseSchedule) (`W203`,
//!    `E301`/`W301`/`W302`).
//!
//! The graph and sat passes themselves live in `rock-rees`
//! ([`rock_rees::graph`], [`rock_rees::sat`], [`rock_rees::schedule`]) so
//! the chase can rebuild the same artifacts without depending on this
//! crate; this crate re-exports them path-compatibly and adds the
//! diagnostics, the certification pass and the CLI. The [`RuleGraph`] is
//! the scheduling artifact behind `ChaseConfig { use_rule_graph: true }`,
//! and the schedule is the certified variant behind
//! `ChaseConfig { use_schedule: true }` (see `rock-chase`).

// Same gate as rock-rees/rock-chase: the analyzer runs inside discovery's
// mining loop and the CI gate; a panic must not take those down.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rock_data::DatabaseSchema;
use rock_rees::schedule::ChaseSchedule;
use rock_rees::{Diagnostic, RuleSet, Severity};
use rustc_hash::FxHashSet;
use std::collections::BTreeMap;

pub mod certify;
pub mod wellformed;

// Path-compatible façade over the passes that moved into rock-rees: the
// analyzer's consumers keep importing `rock_analyze::{graph, sat}`.
pub use rock_rees::{graph, sat};

pub use rock_rees::graph::RuleGraph;

/// The analyzer: schema-bound, stateless across rulesets.
pub struct Analyzer<'a> {
    schema: &'a DatabaseSchema,
}

impl<'a> Analyzer<'a> {
    pub fn new(schema: &'a DatabaseSchema) -> Self {
        Analyzer { schema }
    }

    /// Run all three passes over a ruleset.
    pub fn analyze(&self, rules: &RuleSet) -> AnalysisReport {
        let mut diagnostics = Vec::new();
        // Pass 1: well-formedness. Rules with binding errors are excluded
        // from the later passes — their variable indices cannot be trusted.
        let mut malformed = vec![false; rules.len()];
        for (i, r) in rules.iter().enumerate() {
            let ds = wellformed::check_rule(r, self.schema);
            malformed[i] = ds.iter().any(|d| d.severity == Severity::Error);
            diagnostics.extend(ds);
        }
        // Pass 2: local satisfiability.
        let mut unsat = vec![false; rules.len()];
        for (i, r) in rules.iter().enumerate() {
            if malformed[i] {
                continue;
            }
            let ds = sat::check_rule(r);
            unsat[i] = ds.iter().any(|d| d.severity == Severity::Error);
            diagnostics.extend(ds);
        }
        // Pass 3: inter-rule analysis over the structurally sound rules.
        let graph = RuleGraph::build_masked(rules, self.schema, &malformed, &unsat);
        diagnostics.extend(graph.diagnose(rules, self.schema));
        // Pass 4: chase certification over the same graph.
        let schedule = ChaseSchedule::from_graph(graph.clone(), rules);
        diagnostics.extend(certify::diagnose(rules, &schedule, self.schema));
        AnalysisReport {
            diagnostics,
            graph,
            schedule,
        }
    }
}

/// Everything the analyzer found, plus the scheduling graph and the
/// termination certificate / stratified schedule.
#[derive(Debug)]
pub struct AnalysisReport {
    pub diagnostics: Vec<Diagnostic>,
    pub graph: RuleGraph,
    pub schedule: ChaseSchedule,
}

impl AnalysisReport {
    pub fn max_severity(&self) -> Option<Severity> {
        rock_rees::max_severity(&self.diagnostics)
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Diagnostic counts keyed by stable code (`"E101"` → 2, …).
    pub fn counts_by_code(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for d in &self.diagnostics {
            *out.entry(d.code.as_str()).or_insert(0) += 1;
        }
        out
    }

    /// Names of rules carrying at least one error-severity diagnostic —
    /// what discovery drops before accepting mined rules.
    pub fn rules_with_errors(&self) -> FxHashSet<String> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.rule.clone())
            .collect()
    }

    /// Names of rules flagged `W202` (subsumed by another rule).
    pub fn subsumed_rules(&self) -> FxHashSet<String> {
        self.diagnostics
            .iter()
            .filter(|d| d.code == rock_rees::DiagCode::SubsumedRule)
            .map(|d| d.rule.clone())
            .collect()
    }

    /// Process exit code contract: 0 clean/info, 1 warnings, 2 errors.
    pub fn exit_code(&self) -> i32 {
        self.max_severity().map_or(0, |s| s.exit_code())
    }

    /// Compact serializable summary for `DiscoveryReport` and the bench
    /// panels.
    pub fn stats(&self) -> AnalyzerStats {
        AnalyzerStats {
            rules: self.graph.nrules,
            errors: self.error_count(),
            warnings: self.warning_count(),
            dead_rules: self.graph.dead.iter().filter(|d| **d).count(),
            subsumed_rules: self.subsumed_rules().len(),
            diagnostics_by_code: self
                .counts_by_code()
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }

    /// Machine-readable report (the CLI's `--format json` and the CI
    /// artifact shape).
    pub fn to_json(&self, ruleset: &str) -> serde_json::Value {
        serde_json::json!({
            "ruleset": ruleset,
            "rules": self.graph.nrules,
            "max_severity": self.max_severity().map(|s| s.as_str()),
            "counts": self.counts_by_code(),
            "graph": {
                "edges": self.graph.edges,
                "dead": self.graph.dead,
                "follows_writes": self.graph.follows_writes,
            },
            "certificate": {
                "class": self.schedule.class.as_str(),
                "bound": self.schedule.bound,
                "strata": self.schedule.strata.len(),
                "cyclic_strata": self.schedule.stratum_cyclic.iter().filter(|c| **c).count(),
                "oscillations": self.schedule.oscillations,
                "cascades": self.schedule.cascades,
            },
            "diagnostics": self.diagnostics.iter().map(|d| serde_json::json!({
                "code": d.code.as_str(),
                "severity": d.severity.as_str(),
                "rule": d.rule,
                "line": d.span.line,
                "span": [d.span.start, d.span.end],
                "message": d.message,
                "notes": d.notes,
            })).collect::<Vec<_>>(),
        })
    }
}

/// Serializable analyzer summary threaded into `DiscoveryReport` and the
/// `figures -- analyze` panel.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyzerStats {
    pub rules: usize,
    pub errors: usize,
    pub warnings: usize,
    pub dead_rules: usize,
    pub subsumed_rules: usize,
    pub diagnostics_by_code: BTreeMap<String, usize>,
}

impl AnalyzerStats {
    /// Accumulate another report's counters (discovery mines per relation
    /// and sums the screens into one `DiscoveryOutcome`).
    pub fn merge(&mut self, other: &AnalyzerStats) {
        self.rules += other.rules;
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.dead_rules += other.dead_rules;
        self.subsumed_rules += other.subsumed_rules;
        for (k, v) in &other.diagnostics_by_code {
            *self.diagnostics_by_code.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, RelationSchema};
    use rock_rees::parse_rules;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("city", AttrType::Str),
                ("code", AttrType::Str),
                ("pop", AttrType::Int),
            ],
        )])
    }

    fn analyze(text: &str) -> AnalysisReport {
        let s = schema();
        let rules = RuleSet::new(parse_rules(text, &s).expect("rules parse"));
        Analyzer::new(&s).analyze(&rules)
    }

    #[test]
    fn clean_ruleset_is_clean() {
        let rep = analyze(
            "rule fd: T(t) && T(s) && t.city = s.city -> t.code = s.code\n\
             rule c1: T(t) && t.city = 'beijing' -> t.code = '010'\n\
             rule c2: T(t) && t.city = 'shanghai' -> t.code = '021'\n",
        );
        assert!(rep.is_clean(), "{:#?}", rep.diagnostics);
        assert_eq!(rep.exit_code(), 0);
    }

    #[test]
    fn report_counts_and_json() {
        let rep = analyze(
            "rule bad: T(t) && t.city = 'a' && t.city = 'b' -> t.code = '1'\n\
             rule ok: T(t) && t.city = 'a' -> t.code = '1'\n",
        );
        assert_eq!(rep.error_count(), 1);
        assert_eq!(rep.counts_by_code().get("E101"), Some(&1));
        assert!(rep.rules_with_errors().contains("bad"));
        assert_eq!(rep.exit_code(), 2);
        let j = rep.to_json("test");
        assert_eq!(j["ruleset"], "test");
        assert_eq!(j["diagnostics"][0]["code"], "E101");
    }
}
