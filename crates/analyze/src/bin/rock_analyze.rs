//! `rock-analyze` — static analysis of REE++ rulesets from the CLI.
//!
//! ```text
//! rock-analyze [--workload bank|logistics|sales|all] \
//!              [--format human|json] [--defects] [--seed N] [--why]
//! ```
//!
//! Analyzes each workload's curated ruleset against its schema and prints
//! the diagnostics, either human-readable or as one JSON document (the CI
//! artifact). `--defects` first injects the seeded defective rules from
//! `rock-workloads` — a self-check that every defect class is caught.
//! `--why` replays each witnessed competing-writer hazard (`W301`) through
//! a one-tuple durable chase and prints the competing
//! `ProvenanceGraph::why` fix chains — the provenance-backed
//! counterexample. Exit code is the maximum severity seen: 0 clean,
//! 1 warnings, 2 errors.

use rock_analyze::{certify, Analyzer};
use rock_chase::provenance::replay_witness;
use rock_chase::FixKind;
use rock_data::DatabaseSchema;
use rock_ml::ModelRegistry;
use rock_rees::{RuleSet, Severity};
use rock_workloads::defects::{inject_defects, DefectKind};
use rock_workloads::workload::GenConfig;
use std::process::ExitCode;

struct Opts {
    workload: String,
    format: String,
    defects: bool,
    seed: u64,
    why: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        workload: "all".to_owned(),
        format: "human".to_owned(),
        defects: false,
        seed: 7,
        why: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--workload" | "-w" => opts.workload = take("--workload")?,
            "--format" | "-f" => opts.format = take("--format")?,
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--defects" => opts.defects = true,
            "--why" => opts.why = true,
            "--help" | "-h" => {
                println!(
                    "usage: rock-analyze [--workload bank|logistics|sales|all] \
                     [--format human|json] [--defects] [--seed N] [--why]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !matches!(
        opts.workload.as_str(),
        "bank" | "logistics" | "sales" | "all"
    ) {
        return Err(format!("unknown workload '{}'", opts.workload));
    }
    if !matches!(opts.format.as_str(), "human" | "json") {
        return Err(format!("unknown format '{}'", opts.format));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rock-analyze: {e}");
            return ExitCode::from(64); // EX_USAGE
        }
    };
    let names: Vec<&str> = if opts.workload == "all" {
        vec!["bank", "logistics", "sales"]
    } else {
        vec![opts.workload.as_str()]
    };
    // Small scale: the analyzer only needs schema + rules, not the data.
    let cfg = GenConfig {
        rows: 60,
        ..GenConfig::default()
    };
    let mut worst: Option<Severity> = None;
    let mut json_docs = Vec::new();
    for name in names {
        let w = match name {
            "bank" => rock_workloads::bank::generate(&cfg),
            "logistics" => rock_workloads::logistics::generate(&cfg),
            _ => rock_workloads::sales::generate(&cfg),
        };
        let schema = w.dirty.schema();
        let (rules, label) = if opts.defects {
            let (defective, injected) =
                inject_defects(&w.rules, &schema, opts.seed, &DefectKind::ALL);
            (
                defective,
                format!("{name} (+{} seeded defects)", injected.len()),
            )
        } else {
            (w.rules.clone(), name.to_owned())
        };
        let report = Analyzer::new(&schema).analyze(&rules);
        worst = worst.max(report.max_severity());
        if opts.format == "json" {
            json_docs.push(report.to_json(&label));
        } else {
            print_human(&label, &report);
        }
        if opts.why {
            print_why(&rules, &report, &schema);
        }
    }
    if opts.format == "json" {
        match serde_json::to_string_pretty(&json_docs) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("rock-analyze: serializing report: {e}");
                return ExitCode::from(70); // EX_SOFTWARE
            }
        }
    }
    ExitCode::from(worst.map_or(0, |s| s.exit_code() as u8))
}

fn print_human(label: &str, report: &rock_analyze::AnalysisReport) {
    println!(
        "== {label}: {} rules, {} errors, {} warnings ==",
        report.graph.nrules,
        report.error_count(),
        report.warning_count()
    );
    for d in &report.diagnostics {
        println!("{d}");
    }
    let dead = report.graph.dead.iter().filter(|x| **x).count();
    println!(
        "   graph: {} edges, {} skip-safe dead, {} follow-writes",
        report.graph.edges.len(),
        dead,
        report.graph.follows_writes.iter().filter(|x| **x).count()
    );
    let bound = match &report.schedule.bound {
        Some(rock_rees::RoundBound::Rounds(n)) => format!("{n} rounds"),
        Some(rock_rees::RoundBound::LatticeHeight {
            slack,
            ordered_attrs,
        }) => format!(
            "lattice height + {slack}{}",
            if *ordered_attrs { " (ordered)" } else { "" }
        ),
        None => "none".to_owned(),
    };
    println!(
        "   certificate: {}, {} strata ({} cyclic), bound: {bound}",
        report.schedule.class.as_str(),
        report.schedule.strata.len(),
        report
            .schedule
            .stratum_cyclic
            .iter()
            .filter(|c| **c)
            .count(),
    );
}

/// `--why`: replay every witnessed W301 hazard through a one-tuple durable
/// chase and print the competing provenance chains for the contested cell.
fn print_why(rules: &RuleSet, report: &rock_analyze::AnalysisReport, schema: &DatabaseSchema) {
    let hazards = certify::hazards(rules, &report.schedule, schema);
    let witnessed: Vec<_> = hazards.iter().filter(|h| h.witness.is_some()).collect();
    if witnessed.is_empty() {
        println!("   why: no witnessed competing-writer hazards (W301) to replay");
        return;
    }
    let registry = ModelRegistry::new();
    let rs: Vec<&rock_rees::Rule> = rules.iter().collect();
    for h in witnessed {
        let Some(tuple) = &h.witness else {
            continue;
        };
        let rel = schema.relation(h.rel);
        let cell = format!("{}.{}", rel.name, rel.attr_name(h.attr));
        println!(
            "-- why {cell}: '{}' vs '{}' on a tuple with {}",
            rs[h.i].name,
            rs[h.j].name,
            certify::render_witness(h.rel, tuple, schema)
        );
        match replay_witness(rules, &registry, schema, h.rel, tuple.clone(), h.attr) {
            Ok(rep) => {
                println!(
                    "   replay: {} round(s), {} conflict(s), {} committed fix chain(s)",
                    rep.rounds,
                    rep.conflicts,
                    rep.chains.len()
                );
                for chain in &rep.chains {
                    let by = rs
                        .get(chain.fix.rule as usize)
                        .map_or("?", |r| r.name.as_str());
                    println!(
                        "   chain: fix #{} by rule '{by}' in round {} ({} ancestor fix(es))",
                        chain.fix.id,
                        chain.fix.round,
                        chain.ancestors.len()
                    );
                    if let FixKind::Cell { old, new, .. } = &chain.fix.kind {
                        println!("          {cell}: '{old}' -> '{new}'");
                    }
                }
            }
            Err(e) => println!("   replay failed: {e}"),
        }
    }
}
