//! Pass 3 — the rule-dependency graph and inter-rule diagnostics.
//!
//! Edges run from a rule's *consequence action* to every rule whose
//! *precondition reads* it can change: value writes (`SetCell` /
//! `EquateCells` targets) feed value reads, order writes (temporal
//! consequences) feed temporal reads, and merge consequences feed every
//! rule touching a mergeable relation (a merge can rewrite any validated
//! attribute of the united class, so it is ⊤ over those relations).
//!
//! The graph doubles as the chase's scheduling artifact
//! (`ChaseConfig::use_rule_graph`):
//!
//! * [`RuleGraph::dead`] — rules that provably never extend the fix
//!   store: unsatisfiable or malformed preconditions, and reflexive
//!   merge consequences (`t.eid = t.eid` is a union–find no-op). The
//!   chase drops them from activation entirely. This is deliberately a
//!   *subset* of the rules `W201` warns about: a rule whose equality
//!   consequence restates its precondition still *validates* cells
//!   (which strict gating can observe), so it is dead weight but not
//!   skip-safe.
//! * [`RuleGraph::follows_writes`] — rules whose written cells another
//!   rule (or a merge) can also write. Their proposals participate in
//!   conflict clusters with other writers, so they must stay active
//!   whenever the store changed; everything else re-activates only when
//!   its own reads or relations saw a delta.
//! * [`RuleGraph::rels`] — relations each rule binds, intersected with
//!   the round's tuple-level delta.

use rock_data::{AttrId, DatabaseSchema, RelId};
use rock_rees::{CmpOp, DiagCode, Diagnostic, Predicate, Rule, RuleSet};
use serde::Serialize;

/// The rule-dependency graph over a ruleset (see module docs).
#[derive(Debug, Clone, Default, Serialize)]
pub struct RuleGraph {
    pub nrules: usize,
    /// Relations each rule binds (sorted, deduped).
    pub rels: Vec<Vec<RelId>>,
    /// `(relation, attribute)` cells each rule's consequence can write.
    pub cell_writes: Vec<Vec<(RelId, AttrId)>>,
    /// Rules whose consequence merges entities (`t.eid = s.eid`).
    pub merge_rule: Vec<bool>,
    /// Skip-safe rules: provably never extend the fix store.
    pub dead: Vec<bool>,
    /// `subsumed_by[i] = Some(j)` — rule `i` can never fire without rule
    /// `j` firing on the same valuation with the same consequence.
    pub subsumed_by: Vec<Option<usize>>,
    /// Rules that must re-activate whenever any round committed a write
    /// (their proposals cluster with other writers of the same cells).
    pub follows_writes: Vec<bool>,
    /// Action → read edges `(writer, reader)`, writer ≠ reader.
    pub edges: Vec<(usize, usize)>,
}

impl RuleGraph {
    /// Build the graph for a ruleset assumed well-formed and satisfiable
    /// (the common case: parsed + validated rules).
    pub fn build(rules: &RuleSet, schema: &DatabaseSchema) -> RuleGraph {
        let mask = vec![false; rules.len()];
        RuleGraph::build_masked(rules, schema, &mask, &mask)
    }

    /// Build with per-rule masks from the earlier passes: `malformed`
    /// rules are excluded from every computation (their variable indices
    /// cannot be trusted), `unsat` rules join the dead set.
    pub fn build_masked(
        rules: &RuleSet,
        _schema: &DatabaseSchema,
        malformed: &[bool],
        unsat: &[bool],
    ) -> RuleGraph {
        let n = rules.len();
        let rs: Vec<&Rule> = rules.iter().collect();

        let mut rels = vec![Vec::new(); n];
        let mut cell_writes = vec![Vec::new(); n];
        let mut merge_rule = vec![false; n];
        let mut dead = vec![false; n];
        for i in 0..n {
            dead[i] = malformed[i] || unsat[i];
            if malformed[i] {
                continue;
            }
            let r = rs[i];
            let mut rr: Vec<RelId> = r.tuple_vars.iter().map(|(_, rel)| *rel).collect();
            rr.sort_unstable();
            rr.dedup();
            rels[i] = rr;
            cell_writes[i] = consequence_cell_writes(r);
            merge_rule[i] = matches!(r.consequence, Predicate::EidCmp { eq: true, .. });
            if reflexive_merge(&r.consequence) || inert_merge(r) {
                dead[i] = true;
            }
        }

        // Relations any merge consequence can touch: a merge validated on
        // (R, S) can rewrite validated attributes of either side's class.
        let mut merge_rels: Vec<RelId> = Vec::new();
        for i in 0..n {
            if merge_rule[i] && !dead[i] {
                if let Predicate::EidCmp { lvar, rvar, .. } = rs[i].consequence {
                    merge_rels.push(rs[i].rel_of(lvar));
                    merge_rels.push(rs[i].rel_of(rvar));
                }
            }
        }
        merge_rels.sort_unstable();
        merge_rels.dedup();

        let mut follows_writes = vec![false; n];
        for i in 0..n {
            if dead[i] || cell_writes[i].is_empty() {
                continue;
            }
            follows_writes[i] = (0..n).any(|j| {
                j != i
                    && !dead[j]
                    && (cell_writes[j].iter().any(|c| cell_writes[i].contains(c))
                        || (merge_rule[j]
                            && cell_writes[i]
                                .iter()
                                .any(|(r, _)| merge_rels.binary_search(r).is_ok())))
            });
        }

        let mut subsumed_by = vec![None; n];
        for i in 0..n {
            if dead[i] || malformed[i] || unsat[i] {
                continue;
            }
            for j in 0..n {
                if i == j || dead[j] || malformed[j] || unsat[j] {
                    continue;
                }
                if covers(rs[j], rs[i]) && (!covers(rs[i], rs[j]) || j < i) {
                    subsumed_by[i] = Some(j);
                    break;
                }
            }
        }

        let mut edges = Vec::new();
        for i in 0..n {
            if dead[i] {
                continue;
            }
            let order_w = order_writes(rs[i]);
            for j in 0..n {
                if i == j || dead[j] {
                    continue;
                }
                let value_edge = cell_writes[i]
                    .iter()
                    .any(|c| value_reads(rs[j]).contains(c));
                let order_edge = order_w.iter().any(|c| order_reads(rs[j]).contains(c));
                let merge_edge =
                    merge_rule[i] && rels[i].iter().any(|r| rels[j].binary_search(r).is_ok());
                if value_edge || order_edge || merge_edge {
                    edges.push((i, j));
                }
            }
        }

        RuleGraph {
            nrules: n,
            rels,
            cell_writes,
            merge_rule,
            dead,
            subsumed_by,
            follows_writes,
            edges,
        }
    }

    /// The inter-rule diagnostics (`W201`–`W203`).
    pub fn diagnose(&self, rules: &RuleSet, schema: &DatabaseSchema) -> Vec<Diagnostic> {
        let rs: Vec<&Rule> = rules.iter().collect();
        let mut out = Vec::new();
        // W201 — dead weight: the consequence cannot add information.
        for (i, r) in rs.iter().enumerate() {
            if self.rels[i].is_empty() && self.cell_writes[i].is_empty() && self.dead[i] {
                continue; // malformed/unsat: already reported with errors
            }
            let span = r.spans.consequence;
            if r.precondition.contains(&r.consequence) {
                out.push(Diagnostic::new(
                    DiagCode::DeadRule,
                    &r.name,
                    span,
                    "consequence already appears in the precondition — the rule can \
                     only restate what it matched"
                        .to_owned(),
                ));
            } else if trivial_consequence(&r.consequence) {
                out.push(Diagnostic::new(
                    DiagCode::DeadRule,
                    &r.name,
                    span,
                    format!("consequence {} is trivially satisfied", r.consequence),
                ));
            }
        }
        // W202 — subsumption.
        for (i, r) in rs.iter().enumerate() {
            if let Some(j) = self.subsumed_by[i] {
                out.push(
                    Diagnostic::new(
                        DiagCode::SubsumedRule,
                        &r.name,
                        r.spans.rule,
                        format!(
                            "rule '{}' has the same consequence under a weaker \
                             precondition — '{}' never fires alone",
                            rs[j].name, r.name
                        ),
                    )
                    .with_note(format!("subsumed by rule '{}'", rs[j].name)),
                );
            }
        }
        // W203 — confluence hazards: two live rules pinning the same cell
        // to different constants without provably exclusive preconditions.
        for i in 0..rs.len() {
            if self.dead[i] {
                continue;
            }
            let Some((vi, ci)) = const_eq_consequence(rs[i]) else {
                continue;
            };
            for j in (i + 1)..rs.len() {
                if self.dead[j] {
                    continue;
                }
                let Some((vj, cj)) = const_eq_consequence(rs[j]) else {
                    continue;
                };
                let (reli, attri) = (rs[i].rel_of(vi.0), vi.1);
                let (relj, attrj) = (rs[j].rel_of(vj.0), vj.1);
                if reli != relj || attri != attrj || ci.sql_eq(cj) {
                    continue;
                }
                if mutually_exclusive(rs[i], vi.0, rs[j], vj.0) {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        DiagCode::ConfluenceHazard,
                        &rs[j].name,
                        rs[j].spans.consequence,
                        format!(
                            "sets {}.{} to '{cj}' while rule '{}' sets it to '{ci}' — \
                             a tuple matching both preconditions becomes a chase conflict",
                            schema.relation(relj).name,
                            schema.relation(relj).attr_name(attrj),
                            rs[i].name,
                        ),
                    )
                    .with_note(format!("conflicts with rule '{}'", rs[i].name)),
                );
            }
        }
        out
    }
}

/// Cells a consequence writes when it fires (mirrors the chase's
/// `propose()`: only these consequence shapes produce cell proposals).
fn consequence_cell_writes(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = match &r.consequence {
        Predicate::Const {
            var,
            attr,
            op: CmpOp::Eq,
            ..
        } => vec![(r.rel_of(*var), *attr)],
        Predicate::Attr {
            lvar,
            lattr,
            op: CmpOp::Eq,
            rvar,
            rattr,
        } => vec![(r.rel_of(*lvar), *lattr), (r.rel_of(*rvar), *rattr)],
        Predicate::ValExtract { tvar, attr, .. } => vec![(r.rel_of(*tvar), *attr)],
        Predicate::Predict { var, target, .. } => vec![(r.rel_of(*var), *target)],
        _ => Vec::new(),
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// `(relation, attribute)` cells the precondition reads as values.
fn value_reads(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = Vec::new();
    for p in &r.precondition {
        for v in p.tuple_vars() {
            let rel = r.rel_of(v);
            for a in p.reads_of(v) {
                out.push((rel, a));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Attributes whose validated *order* the precondition consults.
fn order_reads(r: &Rule) -> Vec<(RelId, AttrId)> {
    let mut out = Vec::new();
    for p in &r.precondition {
        if let Predicate::Temporal { lvar, attr, .. } | Predicate::MlRank { lvar, attr, .. } = p {
            out.push((r.rel_of(*lvar), *attr));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Attributes whose validated order the consequence extends.
fn order_writes(r: &Rule) -> Vec<(RelId, AttrId)> {
    match &r.consequence {
        Predicate::Temporal { lvar, attr, .. } => vec![(r.rel_of(*lvar), *attr)],
        _ => Vec::new(),
    }
}

/// `t.eid = t.eid` — a union–find no-op, always skip-safe.
fn reflexive_merge(p: &Predicate) -> bool {
    matches!(p, Predicate::EidCmp { lvar, rvar, eq: true } if lvar == rvar)
}

/// `… && t.eid = s.eid … -> t.eid = s.eid` — merging a class with itself.
/// The precondition is evaluated over the *current* entity classes, so
/// whenever it holds the merge is already committed.
fn inert_merge(r: &Rule) -> bool {
    matches!(r.consequence, Predicate::EidCmp { eq: true, .. })
        && r.precondition.contains(&r.consequence)
}

/// Consequences satisfied by every tuple (`W201`, not skip-safe in
/// general — equality consequences still validate cells).
fn trivial_consequence(p: &Predicate) -> bool {
    match p {
        Predicate::Attr {
            lvar,
            lattr,
            op,
            rvar,
            rattr,
        } => lvar == rvar && lattr == rattr && matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge),
        Predicate::EidCmp { lvar, rvar, eq } => *eq && lvar == rvar,
        Predicate::Temporal {
            lvar,
            rvar,
            strict: false,
            ..
        } => lvar == rvar,
        _ => false,
    }
}

/// Does `weak` fire on every valuation `strong` fires on, with the same
/// consequence? Requires aligned variable signatures so predicate indices
/// mean the same thing in both rules.
fn covers(weak: &Rule, strong: &Rule) -> bool {
    if weak.name == strong.name {
        return false;
    }
    let sig = |r: &Rule| r.tuple_vars.iter().map(|(_, rel)| *rel).collect::<Vec<_>>();
    if sig(weak) != sig(strong)
        || weak.vertex_vars.len() != strong.vertex_vars.len()
        || weak.consequence != strong.consequence
    {
        return false;
    }
    weak.precondition
        .iter()
        .all(|p| strong.precondition.contains(p))
}

/// The consequence `t.A = 'c'`, as `((var, attr), value)`.
fn const_eq_consequence(r: &Rule) -> Option<((usize, AttrId), &rock_data::Value)> {
    match &r.consequence {
        Predicate::Const {
            var,
            attr,
            op: CmpOp::Eq,
            value,
        } => Some(((*var, *attr), value)),
        _ => None,
    }
}

/// Are the two preconditions provably exclusive *on the written tuple*?
/// True when each rule pins some attribute of its consequence variable to
/// a constant and the constants differ — no single tuple satisfies both,
/// so the rules can never race on the same cell.
fn mutually_exclusive(a: &Rule, avar: usize, b: &Rule, bvar: usize) -> bool {
    let binds = |r: &Rule, var: usize| -> Vec<(AttrId, &rock_data::Value)> {
        r.precondition
            .iter()
            .filter_map(|p| match p {
                Predicate::Const {
                    var: v,
                    attr,
                    op: CmpOp::Eq,
                    value,
                } if *v == var => Some((*attr, value)),
                _ => None,
            })
            .collect()
    };
    let ba = binds(a, avar);
    binds(b, bvar)
        .iter()
        .any(|(attr, vb)| ba.iter().any(|(aa, va)| aa == attr && !va.sql_eq(vb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, RelationSchema};
    use rock_rees::parse_rules;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![
            RelationSchema::of(
                "T",
                &[
                    ("city", AttrType::Str),
                    ("code", AttrType::Str),
                    ("pop", AttrType::Int),
                ],
            ),
            RelationSchema::of("U", &[("k", AttrType::Str), ("v", AttrType::Str)]),
        ])
    }

    fn graph(text: &str) -> (RuleGraph, RuleSet, DatabaseSchema) {
        let s = schema();
        let rules = RuleSet::new(parse_rules(text, &s).expect("rules parse"));
        let g = RuleGraph::build(&rules, &s);
        (g, rules, s)
    }

    #[test]
    fn reflexive_merge_is_dead_and_flagged() {
        let (g, rules, s) = graph(
            "rule d: T(t) && t.city = 'x' -> t.eid = t.eid\n\
                   rule ok: T(t) && T(u) && t.city = u.city -> t.code = u.code\n",
        );
        assert_eq!(g.dead, vec![true, false]);
        let ds = g.diagnose(&rules, &s);
        assert!(ds
            .iter()
            .any(|d| d.code == DiagCode::DeadRule && d.rule == "d"));
    }

    #[test]
    fn restated_consequence_is_w201_but_not_skip_safe() {
        let (g, rules, s) = graph("rule d: T(t) && T(u) && t.code = u.code -> t.code = u.code\n");
        assert_eq!(
            g.dead,
            vec![false],
            "equality consequences still validate cells"
        );
        let ds = g.diagnose(&rules, &s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::DeadRule);
    }

    #[test]
    fn subsumption_flags_the_stronger_rule() {
        let (g, rules, s) = graph(
            "rule weak: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule strong: T(t) && T(u) && t.city = u.city && t.pop = u.pop -> t.code = u.code\n",
        );
        assert_eq!(g.subsumed_by, vec![None, Some(0)]);
        let ds = g.diagnose(&rules, &s);
        let w202: Vec<_> = ds
            .iter()
            .filter(|d| d.code == DiagCode::SubsumedRule)
            .collect();
        assert_eq!(w202.len(), 1);
        assert_eq!(w202[0].rule, "strong");
    }

    #[test]
    fn confluence_hazard_unless_exclusive() {
        let (g, rules, s) = graph(
            "rule a: T(t) && t.city = 'beijing' -> t.code = '010'\n\
             rule b: T(t) && t.city = 'shanghai' -> t.code = '021'\n\
             rule c: T(t) && t.pop > 100 -> t.code = '999'\n",
        );
        let ds = g.diagnose(&rules, &s);
        let w203: Vec<_> = ds
            .iter()
            .filter(|d| d.code == DiagCode::ConfluenceHazard)
            .collect();
        // a/b are exclusive on city; c clashes with both a and b
        assert_eq!(w203.len(), 2);
        assert!(w203.iter().all(|d| d.rule == "c"));
    }

    #[test]
    fn edges_follow_writes_into_reads() {
        let (g, _, _) = graph(
            "rule fd: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule use_code: T(t) && t.code = '010' -> t.pop = 1\n\
             rule unrelated: U(t) && U(u) && t.k = u.k -> t.v = u.v\n",
        );
        assert!(
            g.edges.contains(&(0, 1)),
            "fd writes code, use_code reads it"
        );
        assert!(g.edges.iter().all(|&(i, j)| i != 2 && j != 2));
        // fd and use_code both write T cells? fd writes code, use_code pop —
        // disjoint, and no merge rules: nothing must follow writes.
        assert_eq!(g.follows_writes, vec![false, false, false]);
    }

    #[test]
    fn merge_makes_writers_follow() {
        let (g, _, _) = graph(
            "rule er: T(t) && T(u) && t.city = u.city -> t.eid = u.eid\n\
             rule fd: T(t) && T(u) && t.city = u.city -> t.code = u.code\n\
             rule other: U(t) && U(u) && t.k = u.k -> t.v = u.v\n",
        );
        assert!(g.merge_rule[0]);
        assert!(g.follows_writes[1], "a T merge can rewrite fd's cells");
        assert!(!g.follows_writes[2], "U is not mergeable here");
    }
}
