//! Pass 4 — chase certification diagnostics.
//!
//! Consumes the facts computed by `rock_rees::schedule` (termination
//! class, strata, constant-flow cycles) and the critical-pair
//! co-satisfiability check in `rock_rees::sat`, and turns them into the
//! `3xx` diagnostic band plus the upgraded `W203`:
//!
//! * **W203** — two live rules pin the same `(relation, attribute)` cell
//!   to different constants and their preconditions are *not provably
//!   exclusive*. PR 4's version compared Eq-constant guards only; this
//!   pass runs [`rock_rees::co_satisfiable`] — the same interval/equality
//!   reasoning `sat.rs` applies within one rule, applied across the pair —
//!   so exclusive interval guards (`t.n > 10` vs `t.n < 5`) and
//!   null-vs-comparison guards no longer raise false alarms.
//! * **W301** — the pair's preconditions are proven co-satisfiable with a
//!   concrete witness tuple. The witness is the seed for a
//!   provenance-backed counterexample: `rock-analyze --why` replays it
//!   through a two-rule chase and prints both competing
//!   `ProvenanceGraph::why` chains.
//! * **E301** — a constant-flow cycle contests one cell with different
//!   constants (an oscillator): the chase has no termination bound.
//!   Reported on *every* rule of the cycle, with the cycle as witness.
//! * **W302** — a constant-flow cycle whose writes are mutually
//!   consistent: terminating, but the certified bound degrades from the
//!   dependency depth to the instance's lattice height.

use rock_data::{AttrId, DatabaseSchema, RelId, Value};
use rock_rees::graph::const_eq_consequence;
use rock_rees::schedule::ChaseSchedule;
use rock_rees::{co_satisfiable, CoSat, DiagCode, Diagnostic, RuleSet};

/// A critical pair: two live rules writing the same cell with different
/// constants, plus what the co-satisfiability check could prove.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// Rule indices, `i < j`; diagnostics attach to rule `j` (mirroring
    /// the original W203 convention of flagging the later rule).
    pub i: usize,
    pub j: usize,
    /// The contested cell.
    pub rel: RelId,
    pub attr: AttrId,
    /// `Some` when both preconditions were proven co-satisfiable: one
    /// tuple of the shared relation (one value per attribute, `Null` for
    /// unconstrained attributes) on which both rules fire.
    pub witness: Option<Vec<Value>>,
}

/// All non-exclusive critical pairs over the live rules. Pairs whose
/// preconditions are proven exclusive are dropped — they can never race.
pub fn hazards(rules: &RuleSet, schedule: &ChaseSchedule, schema: &DatabaseSchema) -> Vec<Hazard> {
    let rs: Vec<&rock_rees::Rule> = rules.iter().collect();
    let mut out = Vec::new();
    for i in 0..rs.len() {
        if schedule.graph.dead[i] {
            continue;
        }
        let Some(((vi, attri), ci)) = const_eq_consequence(rs[i]) else {
            continue;
        };
        for j in (i + 1)..rs.len() {
            if schedule.graph.dead[j] {
                continue;
            }
            let Some(((vj, attrj), cj)) = const_eq_consequence(rs[j]) else {
                continue;
            };
            let (reli, relj) = (rs[i].rel_of(vi), rs[j].rel_of(vj));
            if reli != relj || attri != attrj || ci.sql_eq(cj) {
                continue;
            }
            match co_satisfiable(rs[i], vi, rs[j], vj, schema) {
                CoSat::Exclusive => {}
                CoSat::Witness(tuple) => out.push(Hazard {
                    i,
                    j,
                    rel: reli,
                    attr: attri,
                    witness: Some(tuple),
                }),
                CoSat::Unknown => out.push(Hazard {
                    i,
                    j,
                    rel: reli,
                    attr: attri,
                    witness: None,
                }),
            }
        }
    }
    out
}

/// Render a witness tuple as `attr='v', …`, skipping unconstrained nulls.
pub fn render_witness(rel: RelId, tuple: &[Value], schema: &DatabaseSchema) -> String {
    let r = schema.relation(rel);
    let parts: Vec<String> = tuple
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .map(|(a, v)| format!("{}='{v}'", r.attr_name(AttrId(a as u16))))
        .collect();
    if parts.is_empty() {
        format!("any {} tuple", r.name)
    } else {
        parts.join(", ")
    }
}

/// The certify diagnostics: upgraded `W203`, witnessed `W301`, and the
/// termination-certificate findings `E301`/`W302` from the schedule.
pub fn diagnose(
    rules: &RuleSet,
    schedule: &ChaseSchedule,
    schema: &DatabaseSchema,
) -> Vec<Diagnostic> {
    let rs: Vec<&rock_rees::Rule> = rules.iter().collect();
    let mut out = Vec::new();

    for h in hazards(rules, schedule, schema) {
        let (ci, cj) = match (const_eq_consequence(rs[h.i]), const_eq_consequence(rs[h.j])) {
            (Some((_, ci)), Some((_, cj))) => (ci, cj),
            _ => continue, // unreachable: hazards() only yields const pairs
        };
        let cell = format!(
            "{}.{}",
            schema.relation(h.rel).name,
            schema.relation(h.rel).attr_name(h.attr)
        );
        out.push(
            Diagnostic::new(
                DiagCode::ConfluenceHazard,
                &rs[h.j].name,
                rs[h.j].spans.consequence,
                format!(
                    "sets {cell} to '{cj}' while rule '{}' sets it to '{ci}' — \
                     a tuple matching both preconditions becomes a chase conflict",
                    rs[h.i].name,
                ),
            )
            .with_note(format!("conflicts with rule '{}'", rs[h.i].name)),
        );
        if let Some(tuple) = &h.witness {
            out.push(
                Diagnostic::new(
                    DiagCode::CompetingWriters,
                    &rs[h.j].name,
                    rs[h.j].spans.consequence,
                    format!(
                        "competing write to {cell} is realizable: a tuple with {} \
                         fires both '{}' and '{}'",
                        render_witness(h.rel, tuple, schema),
                        rs[h.i].name,
                        rs[h.j].name,
                    ),
                )
                .with_note(
                    "run `rock-analyze --why` to replay the witness and print \
                     both competing fix chains",
                ),
            );
        }
    }

    for o in &schedule.oscillations {
        let names: Vec<&str> = o.cycle.iter().map(|&k| rs[k].name.as_str()).collect();
        let (wa, wb) = o.writers;
        let cell = format!(
            "{}.{}",
            schema.relation(o.rel).name,
            schema.relation(o.rel).attr_name(o.attr)
        );
        for &k in &o.cycle {
            out.push(
                Diagnostic::new(
                    DiagCode::UnboundedChase,
                    &rs[k].name,
                    rs[k].spans.consequence,
                    format!(
                        "constant-flow cycle [{}] keeps contesting {cell}: rules '{}' \
                         and '{}' write different constants and each write re-enables \
                         the cycle — the chase has no termination bound",
                        names.join(" -> "),
                        rs[wa].name,
                        rs[wb].name,
                    ),
                )
                .with_note(format!("cycle witness: {}", names.join(" -> "))),
            );
        }
    }

    for cyc in &schedule.cascades {
        let names: Vec<&str> = cyc.iter().map(|&k| rs[k].name.as_str()).collect();
        for &k in cyc {
            out.push(
                Diagnostic::new(
                    DiagCode::ConstantCascade,
                    &rs[k].name,
                    rs[k].spans.consequence,
                    format!(
                        "self-sustaining constant cascade [{}]: each write satisfies \
                         the next rule's guard; terminating, but the round bound \
                         degrades from the dependency depth to the lattice height",
                        names.join(" -> "),
                    ),
                )
                .with_note(format!("cycle witness: {}", names.join(" -> "))),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use rock_data::{AttrType, RelationSchema};
    use rock_rees::parse_rules;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[
                ("city", AttrType::Str),
                ("code", AttrType::Str),
                ("pop", AttrType::Int),
            ],
        )])
    }

    fn analyze(text: &str) -> crate::AnalysisReport {
        let s = schema();
        let rules = RuleSet::new(parse_rules(text, &s).expect("rules parse"));
        Analyzer::new(&s).analyze(&rules)
    }

    fn codes<'a>(r: &'a crate::AnalysisReport, code: DiagCode) -> Vec<&'a Diagnostic> {
        r.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    #[test]
    fn confluence_hazard_unless_exclusive() {
        let rep = analyze(
            "rule a: T(t) && t.city = 'beijing' -> t.code = '010'\n\
             rule b: T(t) && t.city = 'shanghai' -> t.code = '021'\n\
             rule c: T(t) && t.pop > 100 -> t.code = '999'\n",
        );
        let w203 = codes(&rep, DiagCode::ConfluenceHazard);
        // a/b are exclusive on city; c clashes with both a and b
        assert_eq!(w203.len(), 2);
        assert!(w203.iter().all(|d| d.rule == "c"));
    }

    #[test]
    fn interval_exclusive_guards_no_longer_alarm() {
        let rep = analyze(
            "rule lo: T(t) && t.pop < 10 -> t.code = 'low'\n\
             rule hi: T(t) && t.pop > 90 -> t.code = 'high'\n",
        );
        assert!(
            codes(&rep, DiagCode::ConfluenceHazard).is_empty(),
            "disjoint intervals are exclusive: {:#?}",
            rep.diagnostics
        );
        assert!(rep.is_clean());
    }

    #[test]
    fn witnessed_pair_is_w301_with_the_witness_rendered() {
        let rep = analyze(
            "rule lo: T(t) && t.pop > 10 -> t.code = 'a'\n\
             rule hi: T(t) && t.pop < 90 -> t.code = 'b'\n",
        );
        let w301 = codes(&rep, DiagCode::CompetingWriters);
        assert_eq!(w301.len(), 1);
        assert_eq!(w301[0].rule, "hi");
        assert!(
            w301[0].message.contains("pop='"),
            "witness should pin pop: {}",
            w301[0].message
        );
        // the W203 hazard is still reported alongside the stronger W301
        assert_eq!(codes(&rep, DiagCode::ConfluenceHazard).len(), 1);
    }

    #[test]
    fn oscillating_cycle_is_e301_on_every_member() {
        let rep = analyze(
            "rule f1: T(t) && t.code = 'm1' -> t.code = 'm2'\n\
             rule f2: T(t) && t.code = 'm2' -> t.code = 'm1'\n",
        );
        let e301 = codes(&rep, DiagCode::UnboundedChase);
        assert_eq!(e301.len(), 2);
        let rules: Vec<&str> = e301.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"f1") && rules.contains(&"f2"));
        // the pair's Eq guards are exclusive, so no W203/W301 noise
        assert!(codes(&rep, DiagCode::ConfluenceHazard).is_empty());
        assert_eq!(rep.schedule.bound, None);
    }

    #[test]
    fn consistent_cascade_is_w302_not_e301() {
        let rep = analyze(
            "rule p1: T(t) && t.city = 'm1' -> t.code = 'm2'\n\
             rule p2: T(t) && t.code = 'm2' -> t.city = 'm1'\n",
        );
        assert_eq!(codes(&rep, DiagCode::ConstantCascade).len(), 2);
        assert!(codes(&rep, DiagCode::UnboundedChase).is_empty());
        assert!(rep.schedule.bound.is_some());
    }
}
