//! Pass 1 — well-formedness and typing (`E001`–`E007`).
//!
//! The checks themselves live on [`Rule::well_formedness`] in `rock-rees`
//! (the parser's classic `validate` is a wrapper over the same pass), so
//! analyzer, parser and programmatic rule construction can never drift
//! apart. This module is the analyzer's entry point to them.

use rock_data::DatabaseSchema;
use rock_rees::{Diagnostic, Rule};

/// All structural/typing diagnostics for one rule.
pub fn check_rule(rule: &Rule, schema: &DatabaseSchema) -> Vec<Diagnostic> {
    rule.well_formedness(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, RelationSchema};
    use rock_rees::{parse_rule, DiagCode};

    #[test]
    fn delegates_to_rule_well_formedness() {
        let s = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("n", AttrType::Int)],
        )]);
        let r = parse_rule("rule r: T(t) && t.n = 'notanint' -> t.a = 'x'", &s).expect("parses");
        let ds = check_rule(&r, &s);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, DiagCode::ConstTypeMismatch);
    }
}
