//! # rock-workloads — synthetic applications and evaluation metrics
//!
//! The paper evaluates Rock on three proprietary deployments (§6): **Bank**
//! (11 tables, 1.5B tuples), **Logistics** (1 table, 16M tuples) and
//! **Sales** (13 tables, 0.62B tuples). Those datasets are private; per
//! DESIGN.md §1 this crate generates seeded synthetic equivalents with the
//! same *shape* — the same table/attribute mix, the same task structure
//! (CNC/CIC/TPA/ESClean, RS/RR/SN/RClean, CIN/CCN/TPWT/SClean), the same
//! error classes (typos, conflicts, nulls, stale values, duplicates) — at
//! laptop scale, with every injected error recorded so precision/recall
//! are measured exactly rather than via manual spot checks.
//!
//! * [`namegen`] — deterministic fake names/addresses/companies.
//! * [`inject`] — error injection with ground-truth tracking.
//! * [`metrics`] — precision/recall/F-measure for detection & correction.
//! * [`bank`], [`logistics`], [`sales`] — the three applications: schema,
//!   clean data, knowledge graph, trained models, curated REE++s, tasks.
//! * [`workload`] — the common `Workload` bundle the harness consumes.
//! * [`defects`] — seeded defective-ruleset generator for `rock-analyze`.

pub mod bank;
pub mod defects;
pub mod inject;
pub mod logistics;
pub mod metrics;
pub mod namegen;
pub mod sales;
pub mod workload;

pub use defects::{inject_defects, DefectKind, InjectedDefect};
pub use inject::{ErrorTruth, Injector};
pub use metrics::{correction_metrics, detection_metrics, Metrics};
pub use workload::{Task, Workload};
