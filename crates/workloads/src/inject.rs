//! Error injection with ground-truth tracking.
//!
//! The injector takes a *clean* database and corrupts it with the error
//! classes the paper targets: **typos/conflicts** (CR), **nulls** (MI),
//! **stale values** (TD), and **duplicates** (ER). Every corruption is
//! recorded in [`ErrorTruth`], so the evaluation measures precision and
//! recall exactly (the paper manually checked 10,000 tuples; we have the
//! full oracle).

use crate::namegen::typo;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rock_data::{AttrId, CellRef, Database, GlobalTid, RelId, Timestamp, TupleId, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// The record of injected errors: cell → correct (clean) value.
#[derive(Debug, Clone, Default)]
pub struct ErrorTruth {
    /// Typo/conflict corruptions.
    pub corrupted: FxHashMap<CellRef, Value>,
    /// Nulled-out cells.
    pub nulled: FxHashMap<CellRef, Value>,
    /// Stale (outdated) values written over current ones.
    pub stale: FxHashMap<CellRef, Value>,
    /// Injected duplicate tuples: (original, duplicate).
    pub duplicate_pairs: Vec<(GlobalTid, GlobalTid)>,
}

impl ErrorTruth {
    /// All cells carrying an injected error.
    pub fn error_cells(&self) -> FxHashSet<CellRef> {
        self.corrupted
            .keys()
            .chain(self.nulled.keys())
            .chain(self.stale.keys())
            .copied()
            .collect()
    }

    /// Total injected errors (cells + duplicate pairs).
    pub fn total(&self) -> usize {
        self.corrupted.len() + self.nulled.len() + self.stale.len() + self.duplicate_pairs.len()
    }

    /// The correct value of an injected-error cell.
    pub fn correct_value(&self, cell: &CellRef) -> Option<&Value> {
        self.corrupted
            .get(cell)
            .or_else(|| self.nulled.get(cell))
            .or_else(|| self.stale.get(cell))
    }

    pub fn merge(&mut self, other: ErrorTruth) {
        self.corrupted.extend(other.corrupted);
        self.nulled.extend(other.nulled);
        self.stale.extend(other.stale);
        self.duplicate_pairs.extend(other.duplicate_pairs);
    }
}

/// Seeded error injector over one database.
pub struct Injector {
    rng: StdRng,
    pub truth: ErrorTruth,
}

impl Injector {
    pub fn new(seed: u64) -> Self {
        Injector {
            rng: StdRng::seed_from_u64(seed),
            truth: ErrorTruth::default(),
        }
    }

    /// Corrupt a fraction `rate` of the non-null cells of `attr` with
    /// typos (string columns) or perturbation (numeric columns).
    pub fn corrupt_attr(&mut self, db: &mut Database, rel: RelId, attr: AttrId, rate: f64) {
        let tids: Vec<TupleId> = db.relation(rel).tids().collect();
        for tid in tids {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            let new = match &old {
                Value::Null => continue,
                Value::Str(s) => Value::str(typo(&mut self.rng, s)),
                Value::Int(i) => Value::Int(i + self.rng.gen_range(1..100)),
                Value::Float(f) => Value::Float(f * self.rng.gen_range(1.1..3.0)),
                Value::Bool(b) => Value::Bool(!b),
                Value::Date(d) => Value::Date(d + self.rng.gen_range(1..365)),
            };
            if new == old {
                continue;
            }
            db.relation_mut(rel).set_cell(tid, attr, new);
            self.truth.corrupted.insert(cell, old);
        }
    }

    /// Replace a fraction of the non-null cells of `attr` with a value
    /// drawn from a supplied pool (semantic conflicts like a wrong-but-
    /// plausible manufactory, rather than typos).
    pub fn conflict_attr(
        &mut self,
        db: &mut Database,
        rel: RelId,
        attr: AttrId,
        rate: f64,
        pool: &[Value],
    ) {
        if pool.is_empty() {
            return;
        }
        let tids: Vec<TupleId> = db.relation(rel).tids().collect();
        for tid in tids {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            if old.is_null() {
                continue;
            }
            let new = pool[self.rng.gen_range(0..pool.len())].clone();
            if new == old {
                continue;
            }
            db.relation_mut(rel).set_cell(tid, attr, new);
            self.truth.corrupted.insert(cell, old);
        }
    }

    /// Null out a fraction of the non-null cells of `attr`.
    pub fn null_attr(&mut self, db: &mut Database, rel: RelId, attr: AttrId, rate: f64) {
        let tids: Vec<TupleId> = db.relation(rel).tids().collect();
        for tid in tids {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            if old.is_null() {
                continue;
            }
            db.relation_mut(rel).set_cell(tid, attr, Value::Null);
            self.truth.nulled.insert(cell, old);
        }
    }

    /// Overwrite a fraction of cells with a *stale* value from the pool —
    /// a recent erroneous write of an outdated value. The cell is stamped
    /// with `ts`; callers pass a timestamp *later* than the legitimate
    /// writes, so a monotonicity REE++ (φ4-style) catches the violation:
    /// the cell claims an early-stage value confirmed at a late time.
    pub fn stale_attr(
        &mut self,
        db: &mut Database,
        rel: RelId,
        attr: AttrId,
        rate: f64,
        stale_pool: &[Value],
        ts: Timestamp,
    ) {
        if stale_pool.is_empty() {
            return;
        }
        let tids: Vec<TupleId> = db.relation(rel).tids().collect();
        for tid in tids {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            if old.is_null() {
                continue;
            }
            let new = stale_pool[self.rng.gen_range(0..stale_pool.len())].clone();
            if new == old {
                continue;
            }
            let r = db.relation_mut(rel);
            r.set_cell(tid, attr, new);
            r.set_timestamp(tid, attr, ts);
            self.truth.stale.insert(cell, old);
        }
    }

    /// Corrupt one attribute of explicitly chosen tuples with typos
    /// (used to break join keys of duplicates so ER must go through its
    /// ML path — the interaction chains of §4.2).
    pub fn corrupt_cells(&mut self, db: &mut Database, rel: RelId, tids: &[TupleId], attr: AttrId) {
        for &tid in tids {
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            let Value::Str(s) = &old else { continue };
            let new = Value::str(typo(&mut self.rng, s));
            if new == old {
                continue;
            }
            db.relation_mut(rel).set_cell(tid, attr, new);
            self.truth.corrupted.insert(cell, old);
        }
    }

    /// Null one attribute of explicitly chosen tuples.
    pub fn null_cells(&mut self, db: &mut Database, rel: RelId, tids: &[TupleId], attr: AttrId) {
        for &tid in tids {
            let cell = CellRef::new(rel, tid, attr);
            if self.truth.error_cells().contains(&cell) {
                continue;
            }
            let old = db.cell(rel, tid, attr).cloned().unwrap_or(Value::Null);
            if old.is_null() {
                continue;
            }
            db.relation_mut(rel).set_cell(tid, attr, Value::Null);
            self.truth.nulled.insert(cell, old);
        }
    }

    /// Duplicate a fraction of tuples with reformatting noise on the given
    /// string attributes (a fresh entity id is assigned — the duplicates
    /// are what ER must re-identify). Returns ids of the duplicates.
    pub fn duplicate_tuples(
        &mut self,
        db: &mut Database,
        rel: RelId,
        rate: f64,
        noisy_attrs: &[AttrId],
    ) -> Vec<TupleId> {
        let originals: Vec<TupleId> = db.relation(rel).tids().collect();
        let mut dups = Vec::new();
        for tid in originals {
            if self.rng.gen::<f64>() >= rate {
                continue;
            }
            let Some(orig) = db.relation(rel).get(tid).cloned() else {
                continue;
            };
            let mut values = orig.values.clone();
            let mut noised: Vec<(AttrId, Value)> = Vec::new();
            for a in noisy_attrs {
                if let Value::Str(s) = &values[a.index()] {
                    let re = Value::str(crate::namegen::reformat(&mut self.rng, s));
                    if re != values[a.index()] {
                        noised.push((*a, values[a.index()].clone()));
                        values[a.index()] = re;
                    }
                }
            }
            let new_eid = rock_data::Eid(db.relation(rel).capacity() as u32 + 1_000_000);
            let stamps: Vec<(AttrId, Timestamp)> = (0..db.relation(rel).schema.arity())
                .filter_map(|a| {
                    let attr = AttrId(a as u16);
                    db.relation(rel)
                        .timestamps
                        .get(tid, attr)
                        .map(|ts| (attr, ts))
                })
                .collect();
            let dup = db
                .relation_mut(rel)
                .insert(new_eid, values)
                .expect("duplicated row keeps its source arity");
            for (attr, ts) in stamps {
                db.relation_mut(rel).set_timestamp(dup, attr, ts);
            }
            // the reformatted cells of the duplicate are dirty values in
            // their own right (correct value = the original's)
            for (a, correct) in noised {
                self.truth
                    .corrupted
                    .insert(CellRef::new(rel, dup, a), correct);
            }
            self.truth
                .duplicate_pairs
                .push((GlobalTid::new(rel, tid), GlobalTid::new(rel, dup)));
            dups.push(dup);
        }
        dups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema};

    fn db(n: usize) -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("name", AttrType::Str), ("price", AttrType::Float)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..n {
            r.insert_row(vec![
                Value::str(format!("item number {i}")),
                Value::Float(100.0 + i as f64),
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn corruption_recorded_and_applied() {
        let clean = db(100);
        let mut dirty = clean.clone();
        let mut inj = Injector::new(7);
        inj.corrupt_attr(&mut dirty, RelId(0), AttrId(0), 0.2);
        let n = inj.truth.corrupted.len();
        assert!(n > 5 && n < 40, "rate ~0.2 of 100: {n}");
        for (cell, correct) in &inj.truth.corrupted {
            let dirty_v = dirty.cell(cell.rel, cell.tid, cell.attr).unwrap();
            let clean_v = clean.cell(cell.rel, cell.tid, cell.attr).unwrap();
            assert_ne!(dirty_v, clean_v);
            assert_eq!(correct, clean_v);
        }
    }

    #[test]
    fn nulling_and_totals() {
        let mut d = db(50);
        let mut inj = Injector::new(3);
        inj.null_attr(&mut d, RelId(0), AttrId(1), 0.3);
        assert!(!inj.truth.nulled.is_empty());
        for cell in inj.truth.nulled.keys() {
            assert!(d.cell(cell.rel, cell.tid, cell.attr).unwrap().is_null());
        }
        assert_eq!(inj.truth.total(), inj.truth.nulled.len());
        let any = inj.truth.nulled.iter().next().unwrap();
        assert_eq!(inj.truth.correct_value(any.0), Some(any.1));
    }

    #[test]
    fn no_double_corruption_of_same_cell() {
        let mut d = db(60);
        let mut inj = Injector::new(11);
        inj.corrupt_attr(&mut d, RelId(0), AttrId(0), 0.5);
        inj.null_attr(&mut d, RelId(0), AttrId(0), 0.5);
        let corrupted: FxHashSet<_> = inj.truth.corrupted.keys().collect();
        for c in inj.truth.nulled.keys() {
            assert!(!corrupted.contains(c), "cell corrupted twice: {c}");
        }
    }

    #[test]
    fn stale_injection_stamps_old_time() {
        let mut d = db(40);
        let mut inj = Injector::new(5);
        let pool = vec![Value::str("old town road")];
        inj.stale_attr(&mut d, RelId(0), AttrId(0), 0.4, &pool, Timestamp(1));
        assert!(!inj.truth.stale.is_empty());
        for cell in inj.truth.stale.keys() {
            assert_eq!(
                d.relation(cell.rel).timestamps.get(cell.tid, cell.attr),
                Some(Timestamp(1))
            );
            assert_eq!(
                d.cell(cell.rel, cell.tid, cell.attr),
                Some(&Value::str("old town road"))
            );
        }
    }

    #[test]
    fn duplicates_get_fresh_eids() {
        let mut d = db(30);
        let before = d.relation(RelId(0)).len();
        let mut inj = Injector::new(9);
        let dups = inj.duplicate_tuples(&mut d, RelId(0), 0.3, &[AttrId(0)]);
        assert_eq!(d.relation(RelId(0)).len(), before + dups.len());
        assert_eq!(inj.truth.duplicate_pairs.len(), dups.len());
        for (orig, dup) in &inj.truth.duplicate_pairs {
            let o = d.relation(orig.rel).get(orig.tid).unwrap();
            let du = d.relation(dup.rel).get(dup.tid).unwrap();
            assert_ne!(o.eid, du.eid, "duplicate must claim a different entity");
            // numeric attrs identical, name attr token-equal
            assert_eq!(o.get(AttrId(1)), du.get(AttrId(1)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut d = db(50);
            let mut inj = Injector::new(42);
            inj.corrupt_attr(&mut d, RelId(0), AttrId(0), 0.2);
            inj.truth.corrupted.keys().copied().collect::<Vec<_>>()
        };
        let (mut a, mut b) = (run(), run());
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
