//! The **Sales** application (paper §6): "a private commercial dataset of
//! an ERP system with 13 tables, 0.62 billions tuples and 117 attributes
//! with four tasks: (a) CIN that cleans customer information; (b) CCN for
//! company names; (c) TPWT that detects/corrects prices of commodities
//! without tax, and (d) SClean for cleaning all the errors above."
//!
//! Synthetic shape:
//! * `Client` — customer info rows (several per entity), typos + nulls →
//!   **CIN**, plus TD on the `tier` attribute (stale tiers).
//! * `Firm` — company names with typos, ML dedup + FD repairs → **CCN**.
//! * `OrderLine` — `price_wot = price − tax` linear invariant, corrupted →
//!   **TPWT** (polynomial pipeline).
//! * `Item` / `ItemExt` — the e-commerce enrichment pair of §6: ER across
//!   the two tables via `MER`, MI pulling `mfg` from the external table.

use crate::inject::Injector;
use crate::namegen::{self, pick};
use crate::workload::{GenConfig, MlHint, Task, Workload};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rock_data::{
    AttrId, AttrType, Database, DatabaseSchema, Eid, RelId, RelationSchema, Timestamp, Value,
};
use rock_kg::Graph;
use rock_ml::correlation::{CorrelationModel, ValuePredictor};
use rock_ml::pair::NgramPairModel;
use rock_ml::rank::{CurrencyConstraint, RankModel};
use rock_ml::ModelRegistry;
use rock_rees::{parse_rules, RuleSet};
use std::sync::Arc;

pub mod rels {
    pub const CLIENT: u16 = 0;
    pub const FIRM: u16 = 1;
    pub const ORDER: u16 = 2;
    pub const ITEM: u16 = 3;
    pub const ITEM_EXT: u16 = 4;
}

pub mod client {
    pub const CID: u16 = 0;
    pub const NAME: u16 = 1;
    pub const CITY: u16 = 2;
    pub const TIER: u16 = 3;
}

pub mod firm {
    pub const FID: u16 = 0;
    pub const NAME: u16 = 1;
    pub const SECTOR: u16 = 2;
}

pub mod order {
    pub const OID: u16 = 0;
    pub const COM: u16 = 1;
    pub const PRICE: u16 = 2;
    pub const TAX: u16 = 3;
    pub const PRICE_WOT: u16 = 4;
}

pub mod item {
    pub const IID: u16 = 0;
    pub const NAME: u16 = 1;
    pub const CAT: u16 = 2;
    pub const MFG: u16 = 3;
}

const SECTORS: &[&str] = &["wholesale", "retail", "export", "services"];
const TIERS: &[&str] = &["bronze", "silver", "gold"];
const CATS: &[&str] = &["mobile", "sports", "computing", "home"];

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::of(
            "Client",
            &[
                ("cid", AttrType::Str),
                ("name", AttrType::Str),
                ("city", AttrType::Str),
                ("tier", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "Firm",
            &[
                ("fid", AttrType::Str),
                ("name", AttrType::Str),
                ("sector", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "OrderLine",
            &[
                ("oid", AttrType::Str),
                ("com", AttrType::Str),
                ("price", AttrType::Float),
                ("tax", AttrType::Float),
                ("price_wot", AttrType::Float),
            ],
        ),
        RelationSchema::of(
            "Item",
            &[
                ("iid", AttrType::Str),
                ("name", AttrType::Str),
                ("cat", AttrType::Str),
                ("mfg", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "ItemExt",
            &[
                ("iid", AttrType::Str),
                ("name", AttrType::Str),
                ("cat", AttrType::Str),
                ("mfg", AttrType::Str),
            ],
        ),
    ])
}

/// Curated REE++s. Task tags: cin_*, ccn_*, tpwt_*, er_*/mi_* (shared).
const RULES: &str = "\
rule cin_er: Client(t) && Client(s) && t.cid = s.cid -> t.eid = s.eid
rule cin_name: Client(t) && Client(s) && t.cid = s.cid -> t.name = s.name
rule cin_city_mi: Client(t) && null(t.city) -> t.city = predict:Mccity(t[name,cid])
rule cin_td: Client(t) && Client(s) && t.cid = s.cid && t.tier = 'bronze' && s.tier = 'gold' -> t <=[tier] s
rule cin_td_rank: Client(t) && Client(s) && t.cid = s.cid && rank:Mtier(t, s, <=[tier]) -> t <=[tier] s
rule ccn_er_ml: Firm(t) && Firm(s) && ml:Mfirm(t[name], s[name]) && t.sector = s.sector -> t.eid = s.eid
rule ccn_name: Firm(t) && Firm(s) && t.fid = s.fid -> t.name = s.name
rule tpwt_red: OrderLine(t) && OrderLine(s) && t.oid = s.oid && t.price = s.price && t.tax = s.tax -> t.price_wot = s.price_wot
rule er_item: Item(t) && ItemExt(s) && t.cat = s.cat && ml:MER(t[name], s[name]) -> t.eid = s.eid
rule mi_cat: Item(t) && null(t.cat) -> t.cat = predict:Mcat(t[name])
rule mi_mfg: Item(t) && ItemExt(s) && t.eid = s.eid && null(t.mfg) -> t.mfg = s.mfg
";

/// Generate the Sales workload.
pub fn generate(cfg: &GenConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = schema();
    let mut clean = Database::new(&schema);

    // Clients: 2–3 rows per entity; tier evolves (TD timestamps)
    let n_clients = cfg.rows / 3;
    {
        let r = clean.relation_mut(RelId(rels::CLIENT));
        for c in 0..n_clients {
            let cid = format!("CL{c:05}");
            let name = format!(
                "{} {}",
                pick(&mut rng, namegen::FIRST_NAMES),
                pick(&mut rng, namegen::LAST_NAMES)
            );
            let (city, _) = *pick(&mut rng, namegen::CITIES);
            let top_tier = rng.gen_range(0..TIERS.len());
            for (i, tier) in TIERS.iter().enumerate().take(top_tier + 1) {
                let tid = r
                    .insert(
                        Eid(c as u32),
                        vec![
                            Value::str(&cid),
                            Value::str(&name),
                            Value::str(city),
                            Value::str(*tier),
                        ],
                    )
                    .expect("generated row matches schema arity");
                r.set_timestamp(
                    tid,
                    AttrId(client::TIER),
                    Timestamp::from_days(100 + (c * 10 + i) as i32),
                );
            }
        }
    }

    // Firms: 2 rows per entity
    let n_firms = (cfg.rows / 6).max(4);
    {
        let r = clean.relation_mut(RelId(rels::FIRM));
        for f in 0..n_firms {
            let fid = format!("F{f:04}");
            let name = namegen::unique_company(f);
            let sector = *pick(&mut rng, SECTORS);
            for _ in 0..3 {
                r.insert(
                    Eid(f as u32),
                    vec![Value::str(&fid), Value::str(&name), Value::str(sector)],
                )
                .expect("generated row matches schema arity");
            }
        }
    }

    // OrderLines: price_wot = price − tax; two rows per oid
    {
        let r = clean.relation_mut(RelId(rels::ORDER));
        for o in 0..(cfg.rows / 2) {
            let (com, _, base) = *pick(&mut rng, namegen::COMMODITIES);
            let price = (base * rng.gen_range(0.8..1.2) * 100.0).round() / 100.0;
            let tax = (price * 0.13 * 100.0).round() / 100.0;
            for i in 0..3 {
                r.insert(
                    Eid(o as u32),
                    vec![
                        Value::str(format!("O{o:05}-{i}")),
                        Value::str(com),
                        Value::Float(price),
                        Value::Float(tax),
                        Value::Float(((price - tax) * 100.0).round() / 100.0),
                    ],
                )
                .expect("generated row matches schema arity");
            }
        }
    }

    // Item / ItemExt: aligned catalogs (ItemExt is the crawled external
    // source with slightly different names). The catalog is widened with
    // storage/color variants so the ER ↔ MI interaction has enough rows to
    // measure.
    let variants = ["64GB", "128GB", "256GB", "Pro", "Lite"];
    let n_items = namegen::COMMODITIES.len() * variants.len();
    {
        let mut ext_rows = Vec::new();
        {
            let r = clean.relation_mut(RelId(rels::ITEM));
            for i in 0..n_items {
                let (com, mfg, _) = namegen::COMMODITIES[i % namegen::COMMODITIES.len()];
                let var = variants[i / namegen::COMMODITIES.len()];
                let name = format!("{com} {var}");
                let cat = CATS[i % CATS.len()];
                r.insert(
                    Eid(i as u32),
                    vec![
                        Value::str(format!("I{i:03}")),
                        Value::str(&name),
                        Value::str(cat),
                        Value::str(mfg),
                    ],
                )
                .expect("generated row matches schema arity");
                ext_rows.push((
                    format!("X{i:03}"),
                    format!("{name} (official)"),
                    cat,
                    mfg,
                    i,
                ));
            }
        }
        let r = clean.relation_mut(RelId(rels::ITEM_EXT));
        for (xid, name, cat, mfg, i) in ext_rows {
            r.insert(
                Eid((1000 + i) as u32),
                vec![
                    Value::str(xid),
                    Value::str(name),
                    Value::str(cat),
                    Value::str(mfg),
                ],
            )
            .expect("generated row matches schema arity");
        }
    }

    // inject
    let mut dirty = clean.clone();
    let mut inj = Injector::new(cfg.seed ^ 0x5A1E5);
    let (cl, fi, or, it) = (
        RelId(rels::CLIENT),
        RelId(rels::FIRM),
        RelId(rels::ORDER),
        RelId(rels::ITEM),
    );
    // CIN: name typos, city nulls, stale tiers
    inj.corrupt_attr(&mut dirty, cl, AttrId(client::NAME), cfg.error_rate);
    inj.null_attr(&mut dirty, cl, AttrId(client::CITY), cfg.error_rate);
    inj.stale_attr(
        &mut dirty,
        cl,
        AttrId(client::TIER),
        cfg.error_rate / 2.0,
        &[Value::str("bronze")],
        Timestamp::from_days(5000),
    );
    // CCN: firm-name typos + duplicates
    inj.corrupt_attr(&mut dirty, fi, AttrId(firm::NAME), cfg.error_rate);
    inj.duplicate_tuples(&mut dirty, fi, cfg.error_rate / 2.0, &[AttrId(firm::NAME)]);
    // TPWT: corrupted + nulled price_wot (numeric — where T5-class models
    // struggle, per the paper)
    inj.corrupt_attr(&mut dirty, or, AttrId(order::PRICE_WOT), cfg.error_rate);
    inj.null_attr(
        &mut dirty,
        or,
        AttrId(order::PRICE_WOT),
        cfg.error_rate / 2.0,
    );
    // Item: missing manufactories imputed from ItemExt; for half of those
    // rows the category is *also* nulled, so the imputation requires the
    // chain MI (fill cat) → ER (align with ItemExt) → MI (pull mfg) —
    // the §4.2 interactions a single non-iterating pass cannot complete.
    inj.null_attr(&mut dirty, it, AttrId(item::MFG), 0.3);
    {
        let mfg_nulled: Vec<rock_data::TupleId> = inj
            .truth
            .nulled
            .keys()
            .filter(|c| c.rel == it && c.attr == AttrId(item::MFG))
            .map(|c| c.tid)
            .collect();
        let half: Vec<_> = mfg_nulled.iter().copied().step_by(2).collect();
        inj.null_cells(&mut dirty, it, &half, AttrId(item::CAT));
    }
    let mut truth = inj.truth;
    // Ground-truth ER pairs also include the Item ↔ ItemExt alignments —
    // the e-commerce enrichment of §6 treats them as the entities ER must
    // identify across the two tables.
    for i in 0..n_items {
        truth.duplicate_pairs.push((
            rock_data::GlobalTid::new(RelId(rels::ITEM), rock_data::TupleId(i as u32)),
            rock_data::GlobalTid::new(RelId(rels::ITEM_EXT), rock_data::TupleId(i as u32)),
        ));
    }

    // models
    let registry = Arc::new(ModelRegistry::new());
    registry.register_pair("Mfirm", Arc::new(NgramPairModel::with_threshold(0.78)));
    registry.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.6)));
    let rows: Vec<(Vec<Value>, Value)> = clean
        .relation(cl)
        .iter()
        .map(|t| {
            (
                vec![
                    t.get(AttrId(client::NAME)).clone(),
                    t.get(AttrId(client::CID)).clone(),
                ],
                t.get(AttrId(client::CITY)).clone(),
            )
        })
        .collect();
    registry.register_predictor(
        "Mccity",
        Arc::new(ValuePredictor::new(CorrelationModel::train(&rows), 0.3)),
    );
    let tier_pairs: Vec<(Vec<Value>, Vec<Value>)> = (0..40)
        .map(|i| {
            let a = TIERS[i % 2];
            let b = TIERS[(i % 2) + 1];
            (vec![Value::str(a)], vec![Value::str(b)])
        })
        .collect();
    let constraints = vec![
        CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("bronze"),
            later: Value::str("silver"),
        },
        CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("silver"),
            later: Value::str("gold"),
        },
    ];
    let cat_rows: Vec<(Vec<Value>, Value)> = clean
        .relation(it)
        .iter()
        .map(|t| {
            (
                vec![t.get(AttrId(item::NAME)).clone()],
                t.get(AttrId(item::CAT)).clone(),
            )
        })
        .collect();
    registry.register_predictor(
        "Mcat",
        Arc::new(ValuePredictor::new(CorrelationModel::train(&cat_rows), 0.3)),
    );
    registry.register_rank(
        "Mtier",
        Arc::new(RankModel::train_creator_critic(
            1,
            &tier_pairs,
            &constraints,
            2,
            cfg.seed,
        )),
    );

    let mut rules = RuleSet::new(parse_rules(RULES, &dirty.schema()).expect("curated rules parse"));
    rules.resolve(&registry).expect("models registered");

    let task =
        |name: &str, prefixes: &[&str], scope: &[(u16, u16)], poly: Option<(u16, u16)>| -> Task {
            Task {
                name: name.into(),
                rule_names: rules
                    .iter()
                    .filter(|r| prefixes.iter().any(|p| r.name.starts_with(p)))
                    .map(|r| r.name.clone())
                    .collect(),
                scope: if scope.is_empty() {
                    None
                } else {
                    Some(Workload::scope_of(
                        &dirty,
                        &scope
                            .iter()
                            .map(|(r, a)| (RelId(*r), AttrId(*a)))
                            .collect::<Vec<_>>(),
                    ))
                },
                polynomial_target: poly.map(|(r, a)| (RelId(r), AttrId(a))),
            }
        };
    let tasks = vec![
        task(
            "CIN",
            &["cin_"],
            &[
                (rels::CLIENT, client::NAME),
                (rels::CLIENT, client::CITY),
                (rels::CLIENT, client::TIER),
            ],
            None,
        ),
        task("CCN", &["ccn_"], &[(rels::FIRM, firm::NAME)], None),
        task(
            "TPWT",
            &["tpwt_"],
            &[(rels::ORDER, order::PRICE_WOT)],
            Some((rels::ORDER, order::PRICE_WOT)),
        ),
        task(
            "SClean",
            &["cin_", "ccn_", "tpwt_", "er_", "mi_"],
            &[],
            Some((rels::ORDER, order::PRICE_WOT)),
        ),
    ];

    let trusted = Workload::pick_trusted(&dirty, &truth, cfg.trusted_per_rel);

    Workload {
        name: "Sales".into(),
        clean,
        dirty,
        truth,
        graph: Some(item_graph(n_items)),
        registry,
        rules,
        tasks,
        trusted,
        ml_hints: vec![
            MlHint {
                model: "Mfirm".into(),
                rel: "Firm".into(),
                attrs: vec!["name".into()],
            },
            MlHint {
                model: "MER".into(),
                rel: "Item".into(),
                attrs: vec!["name".into()],
            },
        ],
    }
}

fn item_graph(n: usize) -> Graph {
    let mut g = Graph::new("SalesKG");
    for (com, mfg, _) in namegen::COMMODITIES.iter().take(n) {
        let v = g.add_vertex(Value::str(*com), "Item");
        let m = g.add_vertex(Value::str(*mfg), "Manufactory");
        g.add_edge(v, "MadeBy", m);
    }
    let _ = n;
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        generate(&GenConfig {
            rows: 240,
            error_rate: 0.1,
            seed: 11,
            trusted_per_rel: 20,
        })
    }

    #[test]
    fn five_tables_and_invariant() {
        let w = wl();
        assert_eq!(w.dirty.len(), 5);
        for t in w.clean.relation(RelId(rels::ORDER)).iter() {
            let price = t.get(AttrId(order::PRICE)).as_f64().unwrap();
            let tax = t.get(AttrId(order::TAX)).as_f64().unwrap();
            let wot = t.get(AttrId(order::PRICE_WOT)).as_f64().unwrap();
            assert!((price - tax - wot).abs() < 0.011, "{price} {tax} {wot}");
        }
    }

    #[test]
    fn cross_table_er_rules_present() {
        let w = wl();
        let er = w.rules.get("er_item").unwrap();
        assert_ne!(er.rel_of(0), er.rel_of(1));
        let mi = w.rules.get("mi_mfg").unwrap();
        assert!(matches!(mi.consequence, rock_rees::Predicate::Attr { .. }));
        assert!(w.rules.iter().any(|r| r.uses_ml()));
    }

    #[test]
    fn tasks_wired() {
        let w = wl();
        assert_eq!(w.tasks.len(), 4);
        assert_eq!(
            w.task("TPWT").unwrap().polynomial_target,
            Some((RelId(rels::ORDER), AttrId(order::PRICE_WOT)))
        );
        let sclean = w.task("SClean").unwrap();
        assert_eq!(w.rules_for(sclean).len(), w.rules.len());
    }

    #[test]
    fn td_timestamps_present() {
        let w = wl();
        assert!(!w.clean.relation(RelId(rels::CLIENT)).timestamps.is_empty());
        assert!(!w.truth.stale.is_empty());
    }

    #[test]
    fn item_mfg_nulls_injected() {
        let w = wl();
        let nulls = w
            .truth
            .nulled
            .keys()
            .filter(|c| c.rel == RelId(rels::ITEM))
            .count();
        assert!(nulls > 0);
    }
}
