//! Precision / recall / F-measure for detection and correction (paper §6:
//! "F-Measure = 2 · (recall · precision)/(recall + precision), where
//! precision (resp. recall) is the ratio of correctly detected errors to
//! all detected errors (resp. to all errors)").

use crate::inject::ErrorTruth;
use rock_data::{CellRef, Database, Value};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Metrics {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl Metrics {
    pub fn new(tp: usize, fp: usize, fn_: usize) -> Self {
        Metrics { tp, fp, fn_ }
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge counts (micro-average across tasks).
    pub fn merge(&mut self, other: &Metrics) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Detection metrics: flagged cells vs the injected error cells, restricted
/// to `scope` (a task's target cells; `None` = all injected errors).
pub fn detection_metrics(
    flagged: &FxHashSet<CellRef>,
    truth: &ErrorTruth,
    scope: Option<&FxHashSet<CellRef>>,
) -> Metrics {
    let errors: FxHashSet<CellRef> = match scope {
        Some(s) => truth.error_cells().intersection(s).copied().collect(),
        None => truth.error_cells(),
    };
    let flagged: FxHashSet<CellRef> = match scope {
        Some(s) => flagged.intersection(s).copied().collect(),
        None => flagged.clone(),
    };
    let tp = flagged.intersection(&errors).count();
    Metrics::new(tp, flagged.len() - tp, errors.len() - tp)
}

/// Correction metrics: compare the repaired database against the clean
/// oracle.
///
/// * a *change* is a cell whose repaired value differs from the dirty one;
/// * a change is **correct** (tp) if the repaired value equals the clean
///   value at that cell;
/// * errors never repaired (cell still differs from clean) are fn.
///
/// Restricted to `scope` when given.
pub fn correction_metrics(
    dirty: &Database,
    repaired: &Database,
    clean: &Database,
    truth: &ErrorTruth,
    scope: Option<&FxHashSet<CellRef>>,
) -> Metrics {
    let in_scope = |c: &CellRef| scope.map(|s| s.contains(c)).unwrap_or(true);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (rid, rel) in repaired.iter() {
        for t in rel.iter() {
            let clean_tuple = clean.relation(rid).get(t.tid);
            for a in 0..rel.schema.arity() {
                let attr = rock_data::AttrId(a as u16);
                let cell = CellRef::new(rid, t.tid, attr);
                if !in_scope(&cell) {
                    continue;
                }
                let rep = t.get(attr);
                let dirty_v = dirty
                    .relation(rid)
                    .get(t.tid)
                    .map(|t| t.get(attr).clone())
                    .unwrap_or(Value::Null);
                // Oracle value: the clean database where the tuple exists;
                // injected duplicate tuples are absent from `clean`, so
                // their oracle is the recorded correct value (reformat-
                // noised cells) or the dirty value itself (faithful copy).
                let clean_v = match clean_tuple {
                    Some(ct) => ct.get(attr).clone(),
                    None => truth
                        .correct_value(&cell)
                        .cloned()
                        .unwrap_or_else(|| dirty_v.clone()),
                };
                let changed = *rep != dirty_v;
                let was_error = dirty_v != clean_v;
                if changed {
                    if *rep == clean_v {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                } else if was_error {
                    fn_ += 1;
                }
            }
        }
    }
    Metrics::new(tp, fp, fn_)
}

/// Duplicate-pair metrics for ER: predicted vs true duplicate pairs
/// (order-normalized).
pub fn er_pair_metrics(
    predicted: &[(rock_data::GlobalTid, rock_data::GlobalTid)],
    truth: &[(rock_data::GlobalTid, rock_data::GlobalTid)],
) -> Metrics {
    let norm = |pairs: &[(rock_data::GlobalTid, rock_data::GlobalTid)]| -> FxHashSet<_> {
        pairs
            .iter()
            .map(|(a, b)| if a <= b { (*a, *b) } else { (*b, *a) })
            .collect()
    };
    let p = norm(predicted);
    let t = norm(truth);
    let tp = p.intersection(&t).count();
    Metrics::new(tp, p.len() - tp, t.len() - tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, AttrType, DatabaseSchema, GlobalTid, RelId, RelationSchema, TupleId};

    #[test]
    fn metric_arithmetic() {
        let m = Metrics::new(8, 2, 2);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.f1() - 0.8).abs() < 1e-12);
        let zero = Metrics::default();
        assert_eq!(zero.f1(), 0.0);
        let mut acc = Metrics::new(1, 0, 0);
        acc.merge(&Metrics::new(1, 2, 3));
        assert_eq!((acc.tp, acc.fp, acc.fn_), (2, 2, 3));
    }

    fn cell(t: u32, a: u16) -> CellRef {
        CellRef::new(RelId(0), TupleId(t), AttrId(a))
    }

    #[test]
    fn detection_metrics_with_scope() {
        let mut truth = ErrorTruth::default();
        truth.corrupted.insert(cell(0, 0), Value::str("x"));
        truth.corrupted.insert(cell(1, 0), Value::str("y"));
        truth.nulled.insert(cell(2, 0), Value::str("z"));
        let flagged: FxHashSet<CellRef> = [cell(0, 0), cell(5, 0)].into_iter().collect();
        let m = detection_metrics(&flagged, &truth, None);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 2));
        // scoping to tuple 0 and 5 drops the unflagged errors
        let scope: FxHashSet<CellRef> = [cell(0, 0), cell(5, 0)].into_iter().collect();
        let m = detection_metrics(&flagged, &truth, Some(&scope));
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 0));
    }

    #[test]
    fn correction_metrics_cases() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of("T", &[("v", AttrType::Str)])]);
        let mut clean = Database::new(&schema);
        let r = clean.relation_mut(RelId(0));
        for s in ["a", "b", "c", "d"] {
            r.insert_row(vec![Value::str(s)]).unwrap();
        }
        // dirty: t0 corrupted, t1 corrupted, t2 fine, t3 corrupted
        let mut dirty = clean.clone();
        dirty
            .relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(0), Value::str("X"));
        dirty
            .relation_mut(RelId(0))
            .set_cell(TupleId(1), AttrId(0), Value::str("Y"));
        dirty
            .relation_mut(RelId(0))
            .set_cell(TupleId(3), AttrId(0), Value::str("Z"));
        // repaired: t0 fixed correctly, t1 "fixed" wrongly, t2 broken, t3 untouched
        let mut rep = dirty.clone();
        rep.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(0), Value::str("a"));
        rep.relation_mut(RelId(0))
            .set_cell(TupleId(1), AttrId(0), Value::str("W"));
        rep.relation_mut(RelId(0))
            .set_cell(TupleId(2), AttrId(0), Value::str("V"));
        let truth = ErrorTruth::default();
        let m = correction_metrics(&dirty, &rep, &clean, &truth, None);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 2, 1));
    }

    #[test]
    fn er_pairs_order_normalized() {
        let g = |a: u32, b: u32| {
            (
                GlobalTid::new(RelId(0), TupleId(a)),
                GlobalTid::new(RelId(0), TupleId(b)),
            )
        };
        let pred = vec![g(1, 0), g(2, 3)];
        let truth = vec![g(0, 1), g(4, 5)];
        let m = er_pair_metrics(&pred, &truth);
        assert_eq!((m.tp, m.fp, m.fn_), (1, 1, 1));
    }
}
