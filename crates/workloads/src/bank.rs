//! The **Bank** application (paper §6): "a private bank data with 11
//! relational tables with 1.5 billion tuples and 133 attributes … four
//! tasks: (a) CNC that cleans names of records in Bank; (b) CIC for
//! company information; (c) TPA that detects and corrects total payment
//! amounts, and (d) ESClean for cleaning all the errors above."
//!
//! Synthetic shape (laptop scale, same task structure):
//! * `Customer` — several records per customer entity (different source
//!   systems), `cid → (last_name, first_name)` FDs; typos and duplicates
//!   injected → task **CNC**.
//! * `Company` — `name → industry` and `city → area_code` FDs, nullable
//!   city imputed from the company KG or correlation → task **CIC**.
//! * `Payment` — `total = amount + fee` arithmetic invariant, corrupted
//!   totals → task **TPA** (polynomial-expression pipeline, §5.4).
//! * supporting `Account` and `Branch` tables (joins for multi-table
//!   rules; Branch provides the `city → area_code` master pairs).

use crate::inject::Injector;
use crate::namegen::{self, pick};
use crate::workload::{GenConfig, MlHint, Task, Workload};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rock_data::{AttrId, AttrType, Database, DatabaseSchema, Eid, RelId, RelationSchema, Value};
use rock_kg::Graph;
use rock_ml::correlation::{CorrelationModel, ValuePredictor};
use rock_ml::pair::NgramPairModel;
use rock_ml::ModelRegistry;
use rock_rees::{parse_rules, RuleSet};
use std::sync::Arc;

/// Relation indices.
pub mod rels {
    pub const CUSTOMER: u16 = 0;
    pub const COMPANY: u16 = 1;
    pub const ACCOUNT: u16 = 2;
    pub const PAYMENT: u16 = 3;
    pub const BRANCH: u16 = 4;
}

/// Customer attribute indices.
pub mod cust {
    pub const CID: u16 = 0;
    pub const LAST_NAME: u16 = 1;
    pub const FIRST_NAME: u16 = 2;
    pub const PHONE: u16 = 3;
    pub const CITY: u16 = 4;
}

/// Company attribute indices.
pub mod comp {
    pub const COID: u16 = 0;
    pub const NAME: u16 = 1;
    pub const INDUSTRY: u16 = 2;
    pub const CITY: u16 = 3;
    pub const AREA_CODE: u16 = 4;
}

/// Payment attribute indices.
pub mod pay {
    pub const PID: u16 = 0;
    pub const AID: u16 = 1;
    pub const AMOUNT: u16 = 2;
    pub const FEE: u16 = 3;
    pub const TOTAL: u16 = 4;
}

const INDUSTRIES: &[&str] = &["finance", "retail", "manufacturing", "logistics", "energy"];

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::of(
            "Customer",
            &[
                ("cid", AttrType::Str),
                ("last_name", AttrType::Str),
                ("first_name", AttrType::Str),
                ("phone", AttrType::Str),
                ("city", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "Company",
            &[
                ("coid", AttrType::Str),
                ("name", AttrType::Str),
                ("industry", AttrType::Str),
                ("city", AttrType::Str),
                ("area_code", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "Account",
            &[
                ("aid", AttrType::Str),
                ("cid", AttrType::Str),
                ("balance", AttrType::Float),
            ],
        ),
        RelationSchema::of(
            "Payment",
            &[
                ("pid", AttrType::Str),
                ("aid", AttrType::Str),
                ("amount", AttrType::Float),
                ("fee", AttrType::Float),
                ("total", AttrType::Float),
            ],
        ),
        RelationSchema::of(
            "Branch",
            &[
                ("bid", AttrType::Str),
                ("city", AttrType::Str),
                ("area_code", AttrType::Str),
            ],
        ),
    ])
}

/// Curated REE++s. Task tags: cnc_*, cic_*, tpa_* (TPA is mostly the
/// polynomial pipeline; the rule here catches nulls).
const RULES: &str = "\
rule cnc_er: Customer(t) && Customer(s) && t.cid = s.cid -> t.eid = s.eid
rule cnc_er_ml: Customer(t) && Customer(s) && ml:Mname(t[last_name,first_name], s[last_name,first_name]) && t.phone = s.phone -> t.eid = s.eid
rule cnc_ln: Customer(t) && Customer(s) && t.cid = s.cid -> t.last_name = s.last_name
rule cnc_fn: Customer(t) && Customer(s) && t.cid = s.cid -> t.first_name = s.first_name
rule cnc_cid: Customer(t) && Customer(s) && t.eid = s.eid -> t.cid = s.cid
rule cnc_phone_mi: Customer(t) && null(t.phone) -> t.phone = predict:Mphone(t[cid])
rule cic_er_ml: Company(t) && Company(s) && ml:Mcompany(t[name], s[name]) && t.industry = s.industry -> t.eid = s.eid
rule cic_industry: Company(t) && Company(s) && t.name = s.name -> t.industry = s.industry
rule cic_area: Company(t) && Branch(b) && t.city = b.city -> t.area_code = b.area_code
rule cic_city_mi: Company(t) && null(t.city) -> t.city = predict:Mcity(t[name,area_code])
rule tpa_null: Payment(t) && Payment(s) && t.aid = s.aid && t.amount = s.amount && t.fee = s.fee -> t.total = s.total
";

/// Generate the Bank workload.
pub fn generate(cfg: &GenConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = schema();
    let mut clean = Database::new(&schema);

    // Branch: master city → area_code pairs
    {
        let r = clean.relation_mut(RelId(rels::BRANCH));
        for (i, (city, code)) in namegen::CITIES.iter().enumerate() {
            r.insert(
                Eid(i as u32),
                vec![
                    Value::str(format!("B{i:02}")),
                    Value::str(*city),
                    Value::str(*code),
                ],
            )
            .expect("generated row matches schema arity");
        }
    }

    // Customers: 2–3 records per entity from different source systems
    let n_customers = cfg.rows / 3;
    {
        let r = clean.relation_mut(RelId(rels::CUSTOMER));
        for c in 0..n_customers {
            let cid = format!("C{c:05}");
            let ln = *pick(&mut rng, namegen::LAST_NAMES);
            let fn_ = *pick(&mut rng, namegen::FIRST_NAMES);
            let phone = format!("13{:09}", rng.gen_range(0..1_000_000_000u64));
            let (city, _) = *pick(&mut rng, namegen::CITIES);
            for _src in 0..rng.gen_range(3..=4usize) {
                r.insert(
                    Eid(c as u32),
                    vec![
                        Value::str(&cid),
                        Value::str(ln),
                        Value::str(fn_),
                        Value::str(&phone),
                        Value::str(city),
                    ],
                )
                .expect("generated row matches schema arity");
            }
        }
    }

    // Companies: 2 records per company entity
    let n_companies = (cfg.rows / 6).max(4);
    {
        let r = clean.relation_mut(RelId(rels::COMPANY));
        for c in 0..n_companies {
            let coid = format!("CO{c:04}");
            let name = namegen::unique_company(c);
            let industry = *pick(&mut rng, INDUSTRIES);
            let (city, code) = *pick(&mut rng, namegen::CITIES);
            for _ in 0..3 {
                r.insert(
                    Eid(c as u32),
                    vec![
                        Value::str(&coid),
                        Value::str(&name),
                        Value::str(industry),
                        Value::str(city),
                        Value::str(code),
                    ],
                )
                .expect("generated row matches schema arity");
            }
        }
    }

    // Accounts + Payments (total = amount + fee; payments come in batches
    // sharing (aid, amount, fee) so redundancy exists for tpa_null)
    let n_accounts = n_customers;
    {
        let r = clean.relation_mut(RelId(rels::ACCOUNT));
        for a in 0..n_accounts {
            r.insert(
                Eid(a as u32),
                vec![
                    Value::str(format!("A{a:05}")),
                    Value::str(format!("C{:05}", a % n_customers)),
                    Value::Float((rng.gen_range(10..100_000) as f64) / 10.0),
                ],
            )
            .expect("generated row matches schema arity");
        }
    }
    {
        let r = clean.relation_mut(RelId(rels::PAYMENT));
        let mut pid = 0usize;
        for batch in 0..(cfg.rows / 2) {
            let aid = format!("A{:05}", batch % n_accounts);
            let amount = (rng.gen_range(100..500_000) as f64) / 100.0;
            let fee = (amount * 0.01 * rng.gen_range(1..5) as f64 * 100.0).round() / 100.0;
            for _ in 0..3 {
                r.insert(
                    Eid(batch as u32),
                    vec![
                        Value::str(format!("P{pid:06}")),
                        Value::str(&aid),
                        Value::Float(amount),
                        Value::Float(fee),
                        Value::Float(amount + fee),
                    ],
                )
                .expect("generated row matches schema arity");
                pid += 1;
            }
        }
    }

    // inject
    let mut dirty = clean.clone();
    let mut inj = Injector::new(cfg.seed ^ 0xBA4C);
    let (cu, co, pa) = (
        RelId(rels::CUSTOMER),
        RelId(rels::COMPANY),
        RelId(rels::PAYMENT),
    );
    // CNC: name typos + duplicates with reformatting
    inj.corrupt_attr(&mut dirty, cu, AttrId(cust::LAST_NAME), cfg.error_rate);
    inj.corrupt_attr(
        &mut dirty,
        cu,
        AttrId(cust::FIRST_NAME),
        cfg.error_rate / 2.0,
    );
    let dups = inj.duplicate_tuples(
        &mut dirty,
        cu,
        cfg.error_rate / 2.0,
        &[AttrId(cust::LAST_NAME), AttrId(cust::FIRST_NAME)],
    );
    // Interaction chain (§4.2, Example 7): break the duplicates' cid join
    // key, then null the *original* records' phones for a slice of
    // customers — merging those duplicates now requires MI (fill phone) →
    // ER (ML name+phone match) → CR (repair cid from the merged entity),
    // which a single non-iterating pass cannot complete.
    inj.corrupt_cells(&mut dirty, cu, &dups, AttrId(cust::CID));
    {
        use rustc_hash::FxHashSet;
        let dup_set: FxHashSet<_> = dups.iter().copied().collect();
        let dup_sources: FxHashSet<rock_data::Eid> = inj
            .truth
            .duplicate_pairs
            .iter()
            .filter_map(|(orig, _)| dirty.relation(cu).get(orig.tid).map(|t| t.eid))
            .collect();
        let mut victims: Vec<rock_data::TupleId> = dirty
            .relation(cu)
            .iter()
            .filter(|t| dup_sources.contains(&t.eid) && !dup_set.contains(&t.tid))
            .map(|t| t.tid)
            .collect();
        victims.truncate(victims.len() / 2);
        inj.null_cells(&mut dirty, cu, &victims, AttrId(cust::PHONE));
    }
    // CIC: industry conflicts, city nulls, area-code conflicts
    let industry_pool: Vec<Value> = INDUSTRIES.iter().map(|i| Value::str(*i)).collect();
    inj.conflict_attr(
        &mut dirty,
        co,
        AttrId(comp::INDUSTRY),
        cfg.error_rate,
        &industry_pool,
    );
    inj.null_attr(&mut dirty, co, AttrId(comp::CITY), cfg.error_rate);
    let code_pool: Vec<Value> = namegen::CITIES
        .iter()
        .map(|(_, c)| Value::str(*c))
        .collect();
    inj.conflict_attr(
        &mut dirty,
        co,
        AttrId(comp::AREA_CODE),
        cfg.error_rate,
        &code_pool,
    );
    // TPA: corrupted + nulled totals
    inj.corrupt_attr(&mut dirty, pa, AttrId(pay::TOTAL), cfg.error_rate);
    inj.null_attr(&mut dirty, pa, AttrId(pay::TOTAL), cfg.error_rate / 2.0);
    let truth = inj.truth;

    // models
    let registry = Arc::new(ModelRegistry::new());
    registry.register_pair("Mname", Arc::new(NgramPairModel::with_threshold(0.75)));
    registry.register_pair("Mcompany", Arc::new(NgramPairModel::with_threshold(0.8)));
    // Mcity: (name, area_code) → city trained on clean company rows
    let rows: Vec<(Vec<Value>, Value)> = clean
        .relation(co)
        .iter()
        .map(|t| {
            (
                vec![
                    t.get(AttrId(comp::NAME)).clone(),
                    t.get(AttrId(comp::AREA_CODE)).clone(),
                ],
                t.get(AttrId(comp::CITY)).clone(),
            )
        })
        .collect();
    registry.register_predictor(
        "Mcity",
        Arc::new(ValuePredictor::new(CorrelationModel::train(&rows), 0.3)),
    );
    let phone_rows: Vec<(Vec<Value>, Value)> = clean
        .relation(cu)
        .iter()
        .map(|t| {
            (
                vec![t.get(AttrId(cust::CID)).clone()],
                t.get(AttrId(cust::PHONE)).clone(),
            )
        })
        .collect();
    registry.register_predictor(
        "Mphone",
        Arc::new(ValuePredictor::new(
            CorrelationModel::train(&phone_rows),
            0.3,
        )),
    );

    let mut rules = RuleSet::new(parse_rules(RULES, &dirty.schema()).expect("curated rules parse"));
    rules.resolve(&registry).expect("models registered");

    let task =
        |name: &str, prefixes: &[&str], scope: &[(u16, u16)], poly: Option<(u16, u16)>| -> Task {
            Task {
                name: name.into(),
                rule_names: rules
                    .iter()
                    .filter(|r| prefixes.iter().any(|p| r.name.starts_with(p)))
                    .map(|r| r.name.clone())
                    .collect(),
                scope: if scope.is_empty() {
                    None
                } else {
                    Some(Workload::scope_of(
                        &dirty,
                        &scope
                            .iter()
                            .map(|(r, a)| (RelId(*r), AttrId(*a)))
                            .collect::<Vec<_>>(),
                    ))
                },
                polynomial_target: poly.map(|(r, a)| (RelId(r), AttrId(a))),
            }
        };
    let tasks = vec![
        task(
            "CNC",
            &["cnc_"],
            &[
                (rels::CUSTOMER, cust::LAST_NAME),
                (rels::CUSTOMER, cust::FIRST_NAME),
                (rels::CUSTOMER, cust::CID),
                (rels::CUSTOMER, cust::PHONE),
            ],
            None,
        ),
        task(
            "CIC",
            &["cic_"],
            &[
                (rels::COMPANY, comp::INDUSTRY),
                (rels::COMPANY, comp::CITY),
                (rels::COMPANY, comp::AREA_CODE),
            ],
            None,
        ),
        task(
            "TPA",
            &["tpa_"],
            &[(rels::PAYMENT, pay::TOTAL)],
            Some((rels::PAYMENT, pay::TOTAL)),
        ),
        task(
            "ESClean",
            &["cnc_", "cic_", "tpa_"],
            &[],
            Some((rels::PAYMENT, pay::TOTAL)),
        ),
    ];

    let trusted = Workload::pick_trusted(&dirty, &truth, cfg.trusted_per_rel);

    Workload {
        name: "Bank".into(),
        clean,
        dirty,
        truth,
        graph: Some(company_graph(n_companies, cfg.seed)),
        registry,
        rules,
        tasks,
        trusted,
        ml_hints: vec![
            MlHint {
                model: "Mname".into(),
                rel: "Customer".into(),
                attrs: vec!["last_name".into(), "first_name".into()],
            },
            MlHint {
                model: "Mcompany".into(),
                rel: "Company".into(),
                attrs: vec!["name".into()],
            },
        ],
    }
}

fn company_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
    let mut g = Graph::new("BankKG");
    for i in 0..n {
        let v = g.add_vertex(Value::str(format!("CO{i:04}")), "Company");
        let (city, code) = *pick(&mut rng, namegen::CITIES);
        let c = g.add_vertex(Value::str(city), "City");
        let a = g.add_vertex(Value::str(code), "AreaCode");
        g.add_edge(v, "LocationAt", c);
        g.add_edge(c, "AreaCode", a);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        generate(&GenConfig {
            rows: 240,
            error_rate: 0.1,
            seed: 5,
            trusted_per_rel: 20,
        })
    }

    #[test]
    fn five_tables_generated() {
        let w = wl();
        assert_eq!(w.dirty.len(), 5);
        assert!(w.dirty.relation(RelId(rels::CUSTOMER)).len() > 100);
        assert!(w.dirty.relation(RelId(rels::PAYMENT)).len() > 100);
        assert_eq!(
            w.dirty.relation(RelId(rels::BRANCH)).len(),
            namegen::CITIES.len()
        );
    }

    #[test]
    fn payment_invariant_holds_on_clean() {
        let w = wl();
        for t in w.clean.relation(RelId(rels::PAYMENT)).iter() {
            let amount = t.get(AttrId(pay::AMOUNT)).as_f64().unwrap();
            let fee = t.get(AttrId(pay::FEE)).as_f64().unwrap();
            let total = t.get(AttrId(pay::TOTAL)).as_f64().unwrap();
            assert!((amount + fee - total).abs() < 1e-9);
        }
    }

    #[test]
    fn tasks_cover_tpa_polynomial() {
        let w = wl();
        let tpa = w.task("TPA").unwrap();
        assert_eq!(
            tpa.polynomial_target,
            Some((RelId(rels::PAYMENT), AttrId(pay::TOTAL)))
        );
        assert!(w.task("ESClean").unwrap().scope.is_none());
        assert_eq!(w.tasks.len(), 4);
    }

    #[test]
    fn rules_parse_resolve_validate() {
        let w = wl();
        let schema = w.dirty.schema();
        assert_eq!(w.rules.len(), 11);
        for r in w.rules.iter() {
            r.validate(&schema).unwrap();
        }
        // multi-table rule present (cic_area joins Company × Branch)
        let cic_area = w.rules.get("cic_area").unwrap();
        assert_ne!(cic_area.rel_of(0), cic_area.rel_of(1));
    }

    #[test]
    fn errors_span_all_three_tasks() {
        let w = wl();
        let cells = w.truth.error_cells();
        let has = |rel: u16| cells.iter().any(|c| c.rel == RelId(rel));
        assert!(has(rels::CUSTOMER));
        assert!(has(rels::COMPANY));
        assert!(has(rels::PAYMENT));
        assert!(!w.truth.duplicate_pairs.is_empty());
    }
}
