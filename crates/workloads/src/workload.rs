//! The common workload bundle the evaluation harness consumes.

use crate::inject::ErrorTruth;
use rock_data::{AttrId, CellRef, Database, GlobalTid, RelId};
use rock_kg::Graph;
use rock_ml::ModelRegistry;
use rock_rees::RuleSet;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// A named cleaning task within an application (e.g. Bank's `CNC` —
/// cleaning names of customer records).
#[derive(Debug, Clone)]
pub struct Task {
    pub name: String,
    /// Names of the curated rules driving this task.
    pub rule_names: Vec<String>,
    /// Cells in this task's scope (the attributes being cleaned); `None`
    /// means the whole database (the per-app `*Clean` tasks).
    pub scope: Option<FxHashSet<CellRef>>,
    /// Does this task additionally run the polynomial-expression pipeline
    /// (TPA / TPWT — arithmetic consistency, §5.4)? Encodes the target
    /// `(relation, attribute)`.
    pub polynomial_target: Option<(RelId, AttrId)>,
}

/// Declared applicability of a registered ML model (name-based; the
/// harness converts to `rock_discovery::space::MlSignature`).
#[derive(Debug, Clone)]
pub struct MlHint {
    pub model: String,
    pub rel: String,
    pub attrs: Vec<String>,
}

/// A generated application: clean oracle, dirty instance, error record,
/// knowledge graph, trained models, curated rules, tasks.
pub struct Workload {
    pub name: String,
    pub clean: Database,
    pub dirty: Database,
    pub truth: ErrorTruth,
    pub graph: Option<Graph>,
    pub registry: Arc<ModelRegistry>,
    /// All curated rules, parsed and resolved against `registry`.
    pub rules: RuleSet,
    pub tasks: Vec<Task>,
    /// Initial ground truth Γ=: known-clean tuples (the paper seeds the
    /// chase with 10,000 manually checked tuples).
    pub trusted: Vec<GlobalTid>,
    /// Model-applicability hints for discovery.
    pub ml_hints: Vec<MlHint>,
}

impl Workload {
    /// The rules belonging to one task, as an owned subset.
    pub fn rules_for(&self, task: &Task) -> RuleSet {
        RuleSet::new(
            self.rules
                .iter()
                .filter(|r| task.rule_names.iter().any(|n| n == &r.name))
                .cloned()
                .collect(),
        )
    }

    /// Find a task by name.
    pub fn task(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Build a scope set: every cell of the given `(relation, attrs)`.
    pub fn scope_of(db: &Database, targets: &[(RelId, AttrId)]) -> FxHashSet<CellRef> {
        let mut out = FxHashSet::default();
        for (rel, attr) in targets {
            for tid in db.relation(*rel).tids() {
                out.insert(CellRef::new(*rel, tid, *attr));
            }
        }
        out
    }

    /// Pick the first `n` tuples of every relation as the trusted seed —
    /// BUT only tuples that carry no injected error (ground truth must be
    /// true). Mirrors the paper's "10,000 tuples manually selected,
    /// checked and treated as initial ground truth".
    pub fn pick_trusted(dirty: &Database, truth: &ErrorTruth, n_per_rel: usize) -> Vec<GlobalTid> {
        let error_cells = truth.error_cells();
        let dup_tids: FxHashSet<GlobalTid> = truth
            .duplicate_pairs
            .iter()
            .flat_map(|(a, b)| [*a, *b])
            .collect();
        let mut out = Vec::new();
        for (rid, rel) in dirty.iter() {
            let mut taken = 0usize;
            for t in rel.iter() {
                if taken >= n_per_rel {
                    break;
                }
                let gt = GlobalTid::new(rid, t.tid);
                if dup_tids.contains(&gt) {
                    continue;
                }
                let has_error = (0..rel.schema.arity())
                    .any(|a| error_cells.contains(&CellRef::new(rid, t.tid, AttrId(a as u16))));
                if !has_error {
                    out.push(gt);
                    taken += 1;
                }
            }
        }
        out
    }
}

/// Common generation parameters for all three applications.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Scale factor: rows in the main table(s).
    pub rows: usize,
    /// Error rate per targeted attribute.
    pub error_rate: f64,
    pub seed: u64,
    /// Trusted tuples per relation.
    pub trusted_per_rel: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rows: 400,
            error_rate: 0.08,
            seed: 42,
            trusted_per_rel: 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, TupleId, Value};

    #[test]
    fn scope_covers_all_rows() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        for i in 0..5 {
            db.relation_mut(RelId(0))
                .insert_row(vec![
                    Value::str(format!("x{i}")),
                    Value::str(format!("y{i}")),
                ])
                .unwrap();
        }
        let scope = Workload::scope_of(&db, &[(RelId(0), AttrId(1))]);
        assert_eq!(scope.len(), 5);
        assert!(scope.contains(&CellRef::new(RelId(0), TupleId(3), AttrId(1))));
        assert!(!scope.contains(&CellRef::new(RelId(0), TupleId(3), AttrId(0))));
    }

    #[test]
    fn trusted_tuples_are_clean() {
        let schema = DatabaseSchema::new(vec![RelationSchema::of("T", &[("a", AttrType::Str)])]);
        let mut db = Database::new(&schema);
        for i in 0..10 {
            db.relation_mut(RelId(0))
                .insert_row(vec![Value::str(format!("v{i}"))])
                .unwrap();
        }
        let mut truth = ErrorTruth::default();
        truth.corrupted.insert(
            CellRef::new(RelId(0), TupleId(0), AttrId(0)),
            Value::str("v0"),
        );
        truth.duplicate_pairs.push((
            GlobalTid::new(RelId(0), TupleId(1)),
            GlobalTid::new(RelId(0), TupleId(2)),
        ));
        let trusted = Workload::pick_trusted(&db, &truth, 3);
        assert_eq!(trusted.len(), 3);
        // t0 (corrupted), t1/t2 (duplicates) skipped → t3, t4, t5
        assert_eq!(
            trusted,
            vec![
                GlobalTid::new(RelId(0), TupleId(3)),
                GlobalTid::new(RelId(0), TupleId(4)),
                GlobalTid::new(RelId(0), TupleId(5)),
            ]
        );
    }
}
