//! Deterministic fake data primitives: person names, company names,
//! street addresses, cities, commodities — plus seeded typo generation.
//!
//! Everything is driven by a caller-supplied `StdRng`, so workloads are
//! bit-for-bit reproducible for a given seed.

use rand::rngs::StdRng;
use rand::Rng;

pub const FIRST_NAMES: &[&str] = &[
    "Christine",
    "George",
    "Wei",
    "Min",
    "Elena",
    "Tomas",
    "Priya",
    "Jun",
    "Sara",
    "Ivan",
    "Lucia",
    "Omar",
    "Yuki",
    "Ahmed",
    "Nina",
    "Pavel",
    "Mei",
    "Carlos",
    "Anya",
    "David",
];

pub const LAST_NAMES: &[&str] = &[
    "Smith", "Jones", "Wang", "Li", "Garcia", "Novak", "Patel", "Kim", "Berg", "Petrov", "Rossi",
    "Hassan", "Tanaka", "Ali", "Weber", "Volkov", "Chen", "Lopez", "Koch", "Brown",
];

pub const CITIES: &[(&str, &str)] = &[
    ("Beijing", "010"),
    ("Shanghai", "021"),
    ("Shenzhen", "0755"),
    ("Guangzhou", "020"),
    ("Hangzhou", "0571"),
    ("Chengdu", "028"),
    ("Tianjin", "022"),
    ("Nanjing", "025"),
];

pub const STREETS: &[&str] = &[
    "Beijing West Road",
    "West Road",
    "Nanjing Road",
    "People Square",
    "Huaihai Road",
    "Century Avenue",
    "Garden Street",
    "Lake View Lane",
    "Harbor Boulevard",
    "Spring Street",
];

pub const COMPANY_STEMS: &[&str] = &[
    "Apex",
    "Northwind",
    "Golden Dragon",
    "Silk Route",
    "Evergreen",
    "Bluewave",
    "Red Lantern",
    "Summit",
    "Harbor Light",
    "Quantum",
];

pub const COMPANY_SUFFIXES: &[&str] = &[
    "Trading Co",
    "Logistics Ltd",
    "Industries",
    "Retail Group",
    "Holdings",
];

pub const COMMODITIES: &[(&str, &str, f64)] = &[
    // (commodity, manufactory, base price)
    ("IPhone 14", "Apple", 6500.0),
    ("IPhone 13", "Apple", 5200.0),
    ("Mate X2", "Huawei", 9800.0),
    ("P50 Pro", "Huawei", 4500.0),
    ("Galaxy S23", "Samsung", 5600.0),
    ("Air Max 270", "Nike", 900.0),
    ("Ultraboost 22", "Adidas", 1100.0),
    ("ThinkPad X1", "Lenovo", 9400.0),
    ("Mi Band 8", "Xiaomi", 250.0),
    ("Kindle Oasis", "Amazon", 2100.0),
];

/// Pick uniformly from a slice.
pub fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// A street address like "12 Beijing West Road".
pub fn address(rng: &mut StdRng) -> String {
    format!("{} {}", rng.gen_range(1..200), pick(rng, STREETS))
}

/// A company name like "Golden Dragon Trading Co".
pub fn company(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        pick(rng, COMPANY_STEMS),
        pick(rng, COMPANY_SUFFIXES)
    )
}

/// The `i`-th globally unique company name ("Apex Trading Co 3"): company
/// names are identifying keys in the Bank/Sales workloads (the FDs
/// `name → industry` / `name → sector` must hold on clean data), so
/// generators must not draw colliding names for distinct companies.
pub fn unique_company(i: usize) -> String {
    let stem = COMPANY_STEMS[i % COMPANY_STEMS.len()];
    let suffix = COMPANY_SUFFIXES[(i / COMPANY_STEMS.len()) % COMPANY_SUFFIXES.len()];
    let serial = i / (COMPANY_STEMS.len() * COMPANY_SUFFIXES.len());
    if serial == 0 {
        format!("{stem} {suffix}")
    } else {
        format!("{stem} {suffix} {serial}")
    }
}

/// Inject a realistic typo: swap two adjacent characters, drop one, or
/// duplicate one (uniformly). Strings shorter than 2 come back unchanged.
pub fn typo(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_owned();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        _ => out.insert(i, chars[i]),
    }
    let cand: String = out.into_iter().collect();
    if cand == s {
        // rare no-op (e.g. swapping equal chars): force a drop
        let mut forced = chars.clone();
        forced.remove(i);
        forced.into_iter().collect()
    } else {
        cand
    }
}

/// Format variation that does NOT change meaning (case/spacing noise) —
/// used to make near-duplicate tuples that ER must still match.
pub fn reformat(rng: &mut StdRng, s: &str) -> String {
    match rng.gen_range(0..3) {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        _ => s.split_whitespace().collect::<Vec<_>>().join("  "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(address(&mut a), address(&mut b));
        assert_eq!(company(&mut a), company(&mut b));
    }

    #[test]
    fn typo_changes_string() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in ["Christine", "Beijing West Road", "ab"] {
            for _ in 0..20 {
                let t = typo(&mut rng, s);
                assert_ne!(t, s, "typo must change '{s}'");
            }
        }
        assert_eq!(typo(&mut rng, "x"), "x");
    }

    #[test]
    fn reformat_preserves_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let r = reformat(&mut rng, "Golden Dragon Trading Co");
            let norm: Vec<String> = r.split_whitespace().map(|w| w.to_lowercase()).collect();
            assert_eq!(norm, vec!["golden", "dragon", "trading", "co"]);
        }
    }

    #[test]
    fn city_area_codes_unique() {
        use rustc_hash::FxHashSet;
        let codes: FxHashSet<&str> = CITIES.iter().map(|(_, c)| *c).collect();
        assert_eq!(codes.len(), CITIES.len());
    }
}
