//! Seeded defective-ruleset generator for exercising `rock-analyze`.
//!
//! Each injected defect clones (or fabricates) a rule so the original
//! ruleset stays untouched inside the returned set — one defect per
//! defective rule, each with a known rule name and the diagnostic code
//! the analyzer must report for it. The property tests assert 100%
//! recall over these, and the CLI's `--defects` flag demonstrates the
//! analyzer end-to-end on every workload.
//!
//! Only `rock-rees` types are used here (the analyzer depends on this
//! crate, not the other way around).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rock_data::{AttrId, AttrType, DatabaseSchema, Value};
use rock_rees::{CmpOp, DiagCode, Predicate, Rule, RuleSet};

/// The classes of ruleset defects the generator can seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Two conflicting constant bindings on one cell (`E101`).
    UnsatConstEq,
    /// An equality and a comparison no value satisfies (`E102`).
    UnsatCompare,
    /// A reflexive comparison that can never hold (`E103`).
    ReflexiveTrap,
    /// A reflexive comparison that always holds (`W104`).
    TriviallyTrue,
    /// A constant whose type can never match its attribute (`E005`).
    TypeMismatch,
    /// A rule whose consequence is a union–find no-op (`W201`).
    DeadRule,
    /// A strictly stronger copy of an existing rule (`W202`).
    SubsumedRule,
    /// Two rules pinning one cell to different constants (`W203`).
    ConfluenceHazard,
    /// A constant-flow cycle contesting one cell with two different
    /// constants — each write re-arms the other rule, so the chase has no
    /// termination bound (`E301`).
    WriteCycle,
    /// Two rules whose shared guard is provably co-satisfiable while
    /// their consequences pin the same cell to different constants
    /// (`W301` with a concrete witness tuple).
    CompetingWriters,
    /// A consistent constant cascade: each rule's write satisfies the
    /// other's guard without contesting a cell, degrading the certified
    /// round bound to the lattice height (`W302`).
    BoundCascade,
}

impl DefectKind {
    pub const ALL: [DefectKind; 11] = [
        DefectKind::UnsatConstEq,
        DefectKind::UnsatCompare,
        DefectKind::ReflexiveTrap,
        DefectKind::TriviallyTrue,
        DefectKind::TypeMismatch,
        DefectKind::DeadRule,
        DefectKind::SubsumedRule,
        DefectKind::ConfluenceHazard,
        DefectKind::WriteCycle,
        DefectKind::CompetingWriters,
        DefectKind::BoundCascade,
    ];

    /// The diagnostic code the analyzer must emit for this defect.
    pub fn expected_code(self) -> DiagCode {
        match self {
            DefectKind::UnsatConstEq => DiagCode::UnsatConstEq,
            DefectKind::UnsatCompare => DiagCode::UnsatCompare,
            DefectKind::ReflexiveTrap => DiagCode::ReflexiveNeverTrue,
            DefectKind::TriviallyTrue => DiagCode::TriviallyTrue,
            DefectKind::TypeMismatch => DiagCode::ConstTypeMismatch,
            DefectKind::DeadRule => DiagCode::DeadRule,
            DefectKind::SubsumedRule => DiagCode::SubsumedRule,
            DefectKind::ConfluenceHazard => DiagCode::ConfluenceHazard,
            DefectKind::WriteCycle => DiagCode::UnboundedChase,
            DefectKind::CompetingWriters => DiagCode::CompetingWriters,
            DefectKind::BoundCascade => DiagCode::ConstantCascade,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            DefectKind::UnsatConstEq => "unsat_const",
            DefectKind::UnsatCompare => "unsat_cmp",
            DefectKind::ReflexiveTrap => "reflexive",
            DefectKind::TriviallyTrue => "trivial",
            DefectKind::TypeMismatch => "badtype",
            DefectKind::DeadRule => "dead",
            DefectKind::SubsumedRule => "spec",
            DefectKind::ConfluenceHazard => "hazard",
            DefectKind::WriteCycle => "cycle",
            DefectKind::CompetingWriters => "racer",
            DefectKind::BoundCascade => "cascade",
        }
    }
}

/// One seeded defect: which rule carries it and what the analyzer must say.
#[derive(Debug, Clone)]
pub struct InjectedDefect {
    pub rule_name: String,
    pub kind: DefectKind,
    pub expected: DiagCode,
}

/// A synthetic value of the attribute's type that real data never contains
/// (so injected predicates stay satisfiable against the base rule).
fn marker(ty: AttrType, alt: bool) -> Value {
    match ty {
        AttrType::Str => Value::str(if alt { "__defect_b__" } else { "__defect_a__" }),
        AttrType::Int => Value::Int(if alt { -987654321 } else { -123456789 }),
        AttrType::Float => Value::Float(if alt { -9.8765e18 } else { -1.2345e18 }),
        AttrType::Bool => Value::Bool(alt),
        AttrType::Date => Value::Date(if alt { -876543 } else { -123456 }),
    }
}

/// A marker value private to one defect pair. Each cyclic defect kind uses
/// its own salts so the constant-flow cycle it plants stays an isolated SCC
/// in the rule graph instead of merging with another kind's cycle (which
/// would smear one kind's diagnostic onto another kind's rules).
fn private_marker(ty: AttrType, salt: u64) -> Value {
    match ty {
        AttrType::Str => Value::str(format!("__defect_p{salt}__")),
        AttrType::Int => Value::Int(-(1_000_000_007 + salt as i64)),
        AttrType::Float => Value::Float(-(1e15 + salt as f64 * 1e9)),
        AttrType::Bool => Value::Bool(salt % 2 == 0),
        AttrType::Date => Value::Date(-(1_000_000 + salt as i64)),
    }
}

/// The first two non-`Bool` attributes of the base rule's first relation
/// (`Bool` markers are not private — only two values exist). Every curated
/// workload relation has at least two such attributes; the fallback only
/// guards against degenerate synthetic schemas.
fn private_attrs(base: &Rule, schema: &DatabaseSchema) -> (AttrId, AttrId) {
    let rel = schema.relation(base.rel_of(0));
    let mut it = (0..rel.arity())
        .map(|a| AttrId(a as u16))
        .filter(|a| rel.attr(*a).ty != AttrType::Bool);
    let first = it.next().unwrap_or(AttrId(0));
    let second = it.next().unwrap_or(first);
    (first, second)
}

/// A value whose type is incompatible with the attribute (`E005` bait).
fn bad_typed(ty: AttrType) -> Value {
    match ty {
        AttrType::Int | AttrType::Float => Value::str("__defect_nan__"),
        AttrType::Str | AttrType::Bool | AttrType::Date => Value::Int(-123456789),
    }
}

/// An attribute of the base rule's first variable that no `null(·)`
/// predicate constrains (appending comparisons there cannot collide with
/// the MI idiom and turn a subsumption defect into an unsat one).
fn free_attr(base: &Rule, schema: &DatabaseSchema) -> AttrId {
    let rel = schema.relation(base.rel_of(0));
    let nulled: Vec<AttrId> = base
        .precondition
        .iter()
        .filter_map(|p| match p {
            Predicate::IsNull { var: 0, attr } => Some(*attr),
            _ => None,
        })
        .collect();
    (0..rel.arity())
        .map(|a| AttrId(a as u16))
        .find(|a| !nulled.contains(a))
        .unwrap_or(AttrId(0))
}

/// Clone `base` under a defect-specific name.
fn named_clone(base: &Rule, kind: DefectKind, i: usize) -> Rule {
    let mut r = base.clone();
    r.name = format!("{}__{}{i}", base.name, kind.suffix());
    r
}

/// Inject one defective rule (or rule pair) per entry of `kinds` into a
/// copy of `rules`, round-robining over the base rules with an
/// `rng`-chosen starting offset. Deterministic for a given
/// `(rules, seed, kinds)` triple.
pub fn inject_defects(
    rules: &RuleSet,
    schema: &DatabaseSchema,
    seed: u64,
    kinds: &[DefectKind],
) -> (RuleSet, Vec<InjectedDefect>) {
    assert!(!rules.is_empty(), "need at least one base rule");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = rules.clone();
    let mut injected = Vec::new();
    let offset = rng.gen_range(0..rules.len());
    for (i, &kind) in kinds.iter().enumerate() {
        let base = &rules.rules[(offset + i) % rules.len()];
        let attr = free_attr(base, schema);
        let ty = schema.relation(base.rel_of(0)).attr(attr).ty;
        let mut defective = named_clone(base, kind, i);
        match kind {
            DefectKind::UnsatConstEq => {
                for alt in [false, true] {
                    defective.precondition.push(Predicate::Const {
                        var: 0,
                        attr,
                        op: CmpOp::Eq,
                        value: marker(ty, alt),
                    });
                }
            }
            DefectKind::UnsatCompare => {
                for op in [CmpOp::Eq, CmpOp::Neq] {
                    defective.precondition.push(Predicate::Const {
                        var: 0,
                        attr,
                        op,
                        value: marker(ty, false),
                    });
                }
            }
            DefectKind::ReflexiveTrap => {
                defective.precondition.push(Predicate::Attr {
                    lvar: 0,
                    lattr: attr,
                    op: CmpOp::Neq,
                    rvar: 0,
                    rattr: attr,
                });
            }
            DefectKind::TriviallyTrue => {
                defective.precondition.push(Predicate::Attr {
                    lvar: 0,
                    lattr: attr,
                    op: CmpOp::Eq,
                    rvar: 0,
                    rattr: attr,
                });
            }
            DefectKind::TypeMismatch => {
                defective.precondition.push(Predicate::Const {
                    var: 0,
                    attr,
                    op: CmpOp::Eq,
                    value: bad_typed(ty),
                });
            }
            DefectKind::DeadRule => {
                // A fresh rule whose consequence merges a tuple with itself.
                defective = Rule::new(
                    defective.name.clone(),
                    vec![("t".into(), base.rel_of(0))],
                    vec![],
                    vec![Predicate::Const {
                        var: 0,
                        attr,
                        op: CmpOp::Neq,
                        value: marker(ty, false),
                    }],
                    Predicate::EidCmp {
                        lvar: 0,
                        rvar: 0,
                        eq: true,
                    },
                );
            }
            DefectKind::SubsumedRule => {
                // Same consequence, strictly stronger precondition: the
                // clone can never fire without the base firing too.
                defective.precondition.push(Predicate::Const {
                    var: 0,
                    attr,
                    op: CmpOp::Neq,
                    value: marker(ty, false),
                });
            }
            DefectKind::ConfluenceHazard => {
                // Two fresh rules pinning the same cell to different
                // constants under non-exclusive preconditions; the
                // analyzer reports the second of the pair.
                let mk = |name: String, alt: bool| {
                    Rule::new(
                        name,
                        vec![("t".into(), base.rel_of(0))],
                        vec![],
                        vec![Predicate::Const {
                            var: 0,
                            attr,
                            op: CmpOp::Neq,
                            value: marker(ty, alt),
                        }],
                        Predicate::Const {
                            var: 0,
                            attr,
                            op: CmpOp::Eq,
                            value: marker(ty, alt),
                        },
                    )
                };
                out.push(mk(format!("{}_a", defective.name), false));
                defective = mk(format!("{}_b", defective.name), true);
            }
            DefectKind::WriteCycle => {
                // Two fresh rules contesting one cell inside a constant-flow
                // cycle: each write re-arms the other rule's guard, so the
                // certifier must refuse a termination bound (E301). The Eq
                // guards on distinct constants are mutually exclusive, so the
                // pair stays out of the W203 critical-pair report.
                let (a, _) = private_attrs(base, schema);
                let ty = schema.relation(base.rel_of(0)).attr(a).ty;
                let mk = |name: String, read: u64, write: u64| {
                    Rule::new(
                        name,
                        vec![("t".into(), base.rel_of(0))],
                        vec![],
                        vec![Predicate::Const {
                            var: 0,
                            attr: a,
                            op: CmpOp::Eq,
                            value: private_marker(ty, read),
                        }],
                        Predicate::Const {
                            var: 0,
                            attr: a,
                            op: CmpOp::Eq,
                            value: private_marker(ty, write),
                        },
                    )
                };
                out.push(mk(format!("{}_a", defective.name), 10, 11));
                defective = mk(format!("{}_b", defective.name), 11, 10);
            }
            DefectKind::CompetingWriters => {
                // Two fresh rules sharing one satisfiable Eq guard while
                // pinning the same cell to different constants: the critical
                // pair is provably co-satisfiable, so the certifier must
                // produce a concrete witness tuple (W301). Neither written
                // constant feeds any guard, so no flow cycle forms.
                let (g, w) = private_attrs(base, schema);
                let rel = schema.relation(base.rel_of(0));
                let (gty, wty) = (rel.attr(g).ty, rel.attr(w).ty);
                let mk = |name: String, write: u64| {
                    Rule::new(
                        name,
                        vec![("t".into(), base.rel_of(0))],
                        vec![],
                        vec![Predicate::Const {
                            var: 0,
                            attr: g,
                            op: CmpOp::Eq,
                            value: private_marker(gty, 20),
                        }],
                        Predicate::Const {
                            var: 0,
                            attr: w,
                            op: CmpOp::Eq,
                            value: private_marker(wty, write),
                        },
                    )
                };
                out.push(mk(format!("{}_a", defective.name), 21));
                defective = mk(format!("{}_b", defective.name), 22);
            }
            DefectKind::BoundCascade => {
                // Two fresh rules forming a consistent constant cascade
                // across two attributes: each rule's write satisfies the
                // other's guard but no cell is contested, so the certifier
                // downgrades the round bound to the lattice height (W302).
                let (x, y) = private_attrs(base, schema);
                let rel = schema.relation(base.rel_of(0));
                let (xty, yty) = (rel.attr(x).ty, rel.attr(y).ty);
                let mk = |name: String,
                          read: (AttrId, AttrType, u64),
                          write: (AttrId, AttrType, u64)| {
                    Rule::new(
                        name,
                        vec![("t".into(), base.rel_of(0))],
                        vec![],
                        vec![Predicate::Const {
                            var: 0,
                            attr: read.0,
                            op: CmpOp::Eq,
                            value: private_marker(read.1, read.2),
                        }],
                        Predicate::Const {
                            var: 0,
                            attr: write.0,
                            op: CmpOp::Eq,
                            value: private_marker(write.1, write.2),
                        },
                    )
                };
                out.push(mk(
                    format!("{}_a", defective.name),
                    (x, xty, 30),
                    (y, yty, 31),
                ));
                defective = mk(format!("{}_b", defective.name), (y, yty, 31), (x, xty, 30));
            }
        }
        injected.push(InjectedDefect {
            rule_name: defective.name.clone(),
            kind,
            expected: kind.expected_code(),
        });
        out.push(defective);
    }
    (out, injected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::GenConfig;

    #[test]
    fn injection_is_deterministic_and_validates() {
        let w = crate::bank::generate(&GenConfig {
            rows: 40,
            ..GenConfig::default()
        });
        let schema = w.dirty.schema();
        let (d1, i1) = inject_defects(&w.rules, &schema, 7, &DefectKind::ALL);
        let (d2, i2) = inject_defects(&w.rules, &schema, 7, &DefectKind::ALL);
        assert_eq!(d1.len(), d2.len());
        // The four pair kinds (ConfluenceHazard, WriteCycle,
        // CompetingWriters, BoundCascade) add two rules each, everything
        // else one rule
        assert_eq!(d1.len(), w.rules.len() + DefectKind::ALL.len() + 4);
        assert_eq!(
            i1.iter().map(|d| &d.rule_name).collect::<Vec<_>>(),
            i2.iter().map(|d| &d.rule_name).collect::<Vec<_>>()
        );
        // every injected rule still passes classic validation (the
        // defects are semantic, not structural)
        for r in d1.iter() {
            assert!(r.validate(&schema).is_ok(), "{}", r.name);
        }
    }

    #[test]
    fn different_seeds_pick_different_bases() {
        let w = crate::logistics::generate(&GenConfig {
            rows: 40,
            ..GenConfig::default()
        });
        let schema = w.dirty.schema();
        let names: Vec<Vec<String>> = (0..6)
            .map(|s| {
                inject_defects(&w.rules, &schema, s, &[DefectKind::UnsatConstEq])
                    .1
                    .iter()
                    .map(|d| d.rule_name.clone())
                    .collect()
            })
            .collect();
        assert!(
            names.iter().any(|n| n != &names[0]),
            "base-rule choice should vary with the seed"
        );
    }
}
