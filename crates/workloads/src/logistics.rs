//! The **Logistics** application (paper §6): "a top-tier logistics company
//! … one commercial dataset with 1 table and 16 millions of tuples. Four
//! tasks were evaluated: (a) RS for the street information of recipients,
//! (b) RR for cleaning the residential area of recipients, (c) SN that
//! cleans seller names, and (d) RClean for cleaning all the errors above."
//!
//! Synthetic shape: one wide `Shipment` table. Each real-world shipment
//! produces several scan events (rows), so intra-entity redundancy exists
//! for CR majority repair; `city → region` is a clean FD for RR; sellers
//! have stable ids (`seller_id → seller`) for SN; the `status` attribute
//! carries timestamps and injected stale values for TD; the shipment KG
//! links sellers to their registered city for MI extraction.

use crate::inject::Injector;
use crate::namegen::{self, pick};
use crate::workload::{GenConfig, MlHint, Task, Workload};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rock_data::{
    AttrId, AttrType, Database, DatabaseSchema, Eid, RelId, RelationSchema, Timestamp, Value,
};
use rock_kg::Graph;
use rock_ml::correlation::{CorrelationModel, ValuePredictor};
use rock_ml::pair::NgramPairModel;
use rock_ml::rank::{CurrencyConstraint, RankModel};
use rock_ml::ModelRegistry;
use rock_rees::{parse_rules, RuleSet};
use std::sync::Arc;

/// Attribute indices of the Shipment table (kept in one place; the rules
/// below reference the names).
pub mod attrs {
    pub const ORDER_NO: u16 = 0;
    pub const RECIPIENT: u16 = 1;
    pub const STREET: u16 = 2;
    pub const CITY: u16 = 3;
    pub const REGION: u16 = 4;
    pub const SELLER_ID: u16 = 5;
    pub const SELLER: u16 = 6;
    pub const STATUS: u16 = 7;
}

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "Shipment",
        &[
            ("order_no", AttrType::Str),
            ("recipient", AttrType::Str),
            ("street", AttrType::Str),
            ("city", AttrType::Str),
            ("region", AttrType::Str),
            ("seller_id", AttrType::Str),
            ("seller", AttrType::Str),
            ("status", AttrType::Str),
        ],
    )])
}

const REGIONS: &[(&str, &str)] = &[
    ("Beijing", "North"),
    ("Tianjin", "North"),
    ("Shanghai", "East"),
    ("Hangzhou", "East"),
    ("Nanjing", "East"),
    ("Shenzhen", "South"),
    ("Guangzhou", "South"),
    ("Chengdu", "West"),
];

const STATUSES: &[&str] = &["created", "in_transit", "delivered"];

/// Curated REE++s. Task tags: rs_*, rr_*, sn_*, td_*.
const RULES: &str = "\
rule rs_er: Shipment(t) && Shipment(s) && t.order_no = s.order_no -> t.eid = s.eid
rule rs_street: Shipment(t) && Shipment(s) && t.order_no = s.order_no -> t.street = s.street
rule rs_ml: Shipment(t) && Shipment(s) && ml:Maddr(t[street], s[street]) && t.recipient = s.recipient && t.city = s.city -> t.eid = s.eid
rule rr_fd: Shipment(t) && Shipment(s) && t.city = s.city -> t.region = s.region
rule rr_mi: Shipment(t) && null(t.region) -> t.region = predict:Mregion(t[city])
rule sn_fd: Shipment(t) && Shipment(s) && t.seller_id = s.seller_id -> t.seller = s.seller
rule td_status: Shipment(t) && Shipment(s) && t.order_no = s.order_no && t.status = 'created' && s.status = 'delivered' -> t <=[status] s
rule td_rank: Shipment(t) && Shipment(s) && t.order_no = s.order_no && rank:Mstatus(t, s, <=[status]) -> t <=[status] s
";

/// Generate the Logistics workload.
pub fn generate(cfg: &GenConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schema = schema();
    let mut clean = Database::new(&schema);
    let rel = RelId(0);

    // sellers with stable ids
    let n_sellers = (cfg.rows / 20).max(3);
    let sellers: Vec<(String, String)> = (0..n_sellers)
        .map(|i| (format!("S{i:04}"), namegen::company(&mut rng)))
        .collect();

    // shipments: each produces 2–4 scan-event rows sharing an entity id
    let n_shipments = cfg.rows / 3;
    {
        let r = clean.relation_mut(rel);
        for ship in 0..n_shipments {
            let order_no = format!("ORD-{ship:06}");
            let recipient = format!(
                "{} {}",
                pick(&mut rng, namegen::FIRST_NAMES),
                pick(&mut rng, namegen::LAST_NAMES)
            );
            let street = namegen::address(&mut rng);
            let (city, region) = *pick(&mut rng, REGIONS);
            let (sid, seller) = pick(&mut rng, &sellers).clone();
            let events = rng.gen_range(2..=4usize);
            for ev in 0..events {
                let status = STATUSES[ev.min(STATUSES.len() - 1)];
                let tid = r
                    .insert(
                        Eid(ship as u32),
                        vec![
                            Value::str(&order_no),
                            Value::str(&recipient),
                            Value::str(&street),
                            Value::str(city),
                            Value::str(region),
                            Value::str(&sid),
                            Value::str(&seller),
                            Value::str(status),
                        ],
                    )
                    .expect("generated row matches schema arity");
                // status cells carry event timestamps (TD ground truth Γ⪯)
                r.set_timestamp(
                    tid,
                    AttrId(attrs::STATUS),
                    Timestamp::from_days(100 + (ship * 10 + ev) as i32),
                );
            }
        }
    }

    // inject errors
    let mut dirty = clean.clone();
    let mut inj = Injector::new(cfg.seed ^ 0x1066);
    // RS: street typos
    inj.corrupt_attr(&mut dirty, rel, AttrId(attrs::STREET), cfg.error_rate);
    // RR: region nulls + conflicts
    inj.null_attr(&mut dirty, rel, AttrId(attrs::REGION), cfg.error_rate);
    let region_pool: Vec<Value> = ["North", "East", "South", "West"]
        .iter()
        .map(|r| Value::str(*r))
        .collect();
    inj.conflict_attr(
        &mut dirty,
        rel,
        AttrId(attrs::REGION),
        cfg.error_rate / 2.0,
        &region_pool,
    );
    // SN: seller typos
    inj.corrupt_attr(&mut dirty, rel, AttrId(attrs::SELLER), cfg.error_rate);
    // TD: stale statuses
    inj.stale_attr(
        &mut dirty,
        rel,
        AttrId(attrs::STATUS),
        cfg.error_rate / 2.0,
        &[Value::str("created")],
        Timestamp::from_days(5000),
    );
    // ER: duplicated scan rows with reformatted text
    inj.duplicate_tuples(
        &mut dirty,
        rel,
        cfg.error_rate / 2.0,
        &[AttrId(attrs::STREET), AttrId(attrs::SELLER)],
    );
    let truth = inj.truth;

    // models
    let registry = Arc::new(ModelRegistry::new());
    registry.register_pair("Maddr", Arc::new(NgramPairModel::with_threshold(0.72)));
    // Mregion: city → region correlation trained on the clean rows
    let rows: Vec<(Vec<Value>, Value)> = clean
        .relation(rel)
        .iter()
        .map(|t| {
            (
                vec![t.get(AttrId(attrs::CITY)).clone()],
                t.get(AttrId(attrs::REGION)).clone(),
            )
        })
        .collect();
    registry.register_predictor(
        "Mregion",
        Arc::new(ValuePredictor::new(CorrelationModel::train(&rows), 0.3)),
    );
    // Mstatus: pairwise currency over the status attribute
    let pairs: Vec<(Vec<Value>, Vec<Value>)> = (0..40)
        .map(|i| {
            let earlier = STATUSES[i % 2];
            let later = STATUSES[(i % 2) + 1];
            (vec![Value::str(earlier)], vec![Value::str(later)])
        })
        .collect();
    let constraints = vec![
        CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("created"),
            later: Value::str("in_transit"),
        },
        CurrencyConstraint {
            attr_pos: 0,
            earlier: Value::str("in_transit"),
            later: Value::str("delivered"),
        },
    ];
    registry.register_rank(
        "Mstatus",
        Arc::new(RankModel::train_creator_critic(
            1,
            &pairs,
            &constraints,
            2,
            cfg.seed,
        )),
    );

    // rules
    let mut rules = RuleSet::new(parse_rules(RULES, &dirty.schema()).expect("curated rules parse"));
    rules.resolve(&registry).expect("models registered");

    // tasks
    let task = |name: &str, prefixes: &[&str], scope_attrs: &[u16]| -> Task {
        Task {
            name: name.into(),
            rule_names: rules
                .iter()
                .filter(|r| prefixes.iter().any(|p| r.name.starts_with(p)))
                .map(|r| r.name.clone())
                .collect(),
            scope: if scope_attrs.is_empty() {
                None
            } else {
                Some(Workload::scope_of(
                    &dirty,
                    &scope_attrs
                        .iter()
                        .map(|a| (rel, AttrId(*a)))
                        .collect::<Vec<_>>(),
                ))
            },
            polynomial_target: None,
        }
    };
    let tasks = vec![
        task("RS", &["rs_"], &[attrs::STREET]),
        task("RR", &["rr_"], &[attrs::REGION]),
        task("SN", &["sn_"], &[attrs::SELLER]),
        task("RClean", &["rs_", "rr_", "sn_", "td_"], &[]),
    ];

    let trusted = Workload::pick_trusted(&dirty, &truth, cfg.trusted_per_rel);

    Workload {
        name: "Logistics".into(),
        clean,
        dirty,
        truth,
        graph: Some(seller_graph(&sellers, cfg.seed)),
        registry,
        rules,
        tasks,
        trusted,
        ml_hints: vec![MlHint {
            model: "Maddr".into(),
            rel: "Shipment".into(),
            attrs: vec!["street".into()],
        }],
    }
}

/// A small KG: seller vertices linked to their registered city (exercised
/// by extraction rules in the examples; the curated task rules above use
/// the correlation path instead so the KG is optional for metrics).
fn seller_graph(sellers: &[(String, String)], seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
    let mut g = Graph::new("LogisticsKG");
    for (_, name) in sellers {
        let v = g.add_vertex(Value::str(name), "Seller");
        let (city, _) = *pick(&mut rng, REGIONS);
        let c = g.add_vertex(Value::str(city), "City");
        g.add_edge(v, "RegisteredIn", c);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        generate(&GenConfig {
            rows: 240,
            error_rate: 0.1,
            seed: 7,
            trusted_per_rel: 20,
        })
    }

    #[test]
    fn shape_and_errors() {
        let w = wl();
        assert_eq!(w.dirty.len(), 1);
        assert!(w.dirty.relation(RelId(0)).len() >= w.clean.relation(RelId(0)).len());
        assert!(w.truth.total() > 10, "errors injected: {}", w.truth.total());
        assert!(!w.truth.corrupted.is_empty());
        assert!(!w.truth.nulled.is_empty());
        assert!(!w.truth.stale.is_empty());
        assert!(!w.truth.duplicate_pairs.is_empty());
    }

    #[test]
    fn tasks_and_rules_wired() {
        let w = wl();
        assert_eq!(w.tasks.len(), 4);
        let rs = w.task("RS").unwrap();
        assert!(rs.rule_names.contains(&"rs_street".to_owned()));
        assert!(!w.rules_for(rs).is_empty());
        let rclean = w.task("RClean").unwrap();
        assert!(rclean.scope.is_none());
        assert_eq!(w.rules_for(rclean).len(), w.rules.len());
    }

    #[test]
    fn rules_resolved_and_valid() {
        let w = wl();
        let schema = w.dirty.schema();
        for r in w.rules.iter() {
            r.validate(&schema).unwrap();
        }
        assert!(w.rules.iter().any(|r| r.uses_ml()));
    }

    #[test]
    fn trusted_seed_is_clean() {
        let w = wl();
        assert!(!w.trusted.is_empty());
        let errors = w.truth.error_cells();
        for t in &w.trusted {
            let rel = w.dirty.relation(t.rel);
            for a in 0..rel.schema.arity() {
                assert!(!errors.contains(&rock_data::CellRef::new(t.rel, t.tid, AttrId(a as u16))));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = wl();
        let b = wl();
        assert_eq!(a.truth.total(), b.truth.total());
        assert_eq!(
            a.dirty.relation(RelId(0)).len(),
            b.dirty.relation(RelId(0)).len()
        );
    }
}
