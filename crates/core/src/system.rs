//! The end-to-end Rock system: discovery → detection → correction over a
//! [`rock_workloads::Workload`], for every variant.

use crate::poly::PolyPipeline;
use crate::variant::{effective_rules, sorted_rules, split_by_task, Variant};
use rock_chase::{
    ChaseConfig, ChaseEngine, ChaseResult, ConflictPolicy, RoundStats, WalError, WalSummary,
};
use rock_crystal::{ClusterConfig, FaultStats, UnitFailure};
use rock_data::Database;
use rock_detect::blocking::{precompute_ml, precompute_ml_indexed, BlockingStats};
use rock_detect::{DetectReport, Detector};
use rock_discovery::levelwise::{Discoverer, DiscoveryConfig};
use rock_discovery::sampling::mine_with_sampling;
use rock_discovery::space::{MlSignature, PredicateSpace, SpaceConfig};
use rock_discovery::topk::{diversified_top_k, score_rules, AnytimeMiner};
use rock_ml::MlBlockIndex;
use rock_rees::eval::enumerate_valuations;
use rock_rees::EvalContext;
use rock_rees::RuleSet;
use rock_workloads::metrics::{correction_metrics, detection_metrics, Metrics};
use rock_workloads::{Task, Workload};
use std::time::Instant;

/// System configuration.
#[derive(Debug, Clone)]
pub struct RockConfig {
    pub variant: Variant,
    pub workers: usize,
    /// Sampling ratio for discovery when the data is large (paper: 10%).
    pub sample_ratio: f64,
    pub discovery: DiscoveryConfig,
    /// Relative tolerance for polynomial checks.
    pub poly_tolerance: f64,
    /// Run LSH blocking + ML pre-computation before evaluation (§5.3).
    pub blocking: bool,
    /// HyperCube work units per rule (finer units = better balance on
    /// more workers; the scaling panels raise this).
    pub partitions_per_rule: u32,
    /// Ground-truth gating for the chase (§4.1): `Strict` applies a rule
    /// only when its precondition cells are trusted or already validated
    /// (the letter of the certain-fix regime); `Resolved` (default)
    /// bootstraps from the resolved view.
    pub gate: rock_chase::chase::GateMode,
    /// Semi-naive delta chase for round ≥ 2 (§4.1); `false` keeps the
    /// full-rescan ablation used by the `chase-delta` panel and the
    /// equivalence tests.
    pub semi_naive: bool,
    /// Schedule chase rounds with the `rock-analyze` rule-dependency
    /// graph: statically dead rules never activate and re-activation is
    /// narrowed to rules the committed delta can reach. Off by default —
    /// the classic activation set is the equivalence oracle.
    pub use_rule_graph: bool,
    /// Schedule chase rounds with the *certified* stratified schedule
    /// (`rock_rees::ChaseSchedule`): the same activation subset as
    /// `use_rule_graph` (repairs stay byte-identical), plus runtime
    /// enforcement of the certifier's termination bound
    /// (`ChaseResult::certification`). Off by default.
    pub use_schedule: bool,
    /// Crystal fault-tolerance knobs (fault injection plan, retry budget,
    /// backoff, speculation threshold), threaded into every discovery /
    /// detection / chase cluster this system builds.
    pub cluster: ClusterConfig,
    /// Durable chase: WAL + round-boundary checkpoints in this directory,
    /// so a killed correction resumes byte-identically (`rock_chase::wal`).
    /// `None` (default) keeps the zero-IO in-memory chase.
    pub durability: Option<rock_chase::wal::DurabilityConfig>,
    /// Columnar data plane: route detection and chase prefilters through
    /// the vectorized kernels (`rock_data::ColumnSet`). Off = the scalar
    /// row path, the byte-identical equivalence oracle
    /// (`tests/columnar_equivalence.rs`, `figures -- columnar`).
    pub columnar: bool,
}

impl Default for RockConfig {
    fn default() -> Self {
        RockConfig {
            variant: Variant::Rock,
            workers: 1,
            sample_ratio: 0.1,
            discovery: DiscoveryConfig::default(),
            poly_tolerance: 0.02,
            blocking: true,
            partitions_per_rule: 4,
            gate: rock_chase::chase::GateMode::Resolved,
            semi_naive: true,
            use_rule_graph: false,
            use_schedule: false,
            cluster: ClusterConfig::default(),
            durability: None,
            columnar: rock_data::DataConfig::default().columnar,
        }
    }
}

/// Discovery outcome.
#[derive(Debug)]
pub struct DiscoveryOutcome {
    pub rules: RuleSet,
    pub candidates_evaluated: usize,
    pub wall_seconds: f64,
    /// Modeled ML cost spent (registry meter delta).
    pub ml_cost: f64,
    /// Scheduler fault counters aggregated over all mined relations.
    pub fault_stats: FaultStats,
    /// `rock-analyze` screen counters summed over all mined relations.
    pub analyzer: rock_analyze::AnalyzerStats,
    /// Mined rules the analyzer screen rejected across relations.
    pub rules_dropped_by_analyzer: usize,
}

/// Detection outcome.
#[derive(Debug)]
pub struct DetectionOutcome {
    pub report: DetectReport,
    pub metrics: Metrics,
    pub wall_seconds: f64,
    pub blocking: Option<BlockingStats>,
    pub unit_seconds: Vec<f64>,
}

/// Correction outcome.
#[derive(Debug)]
pub struct CorrectionOutcome {
    pub repaired: Database,
    pub metrics: Metrics,
    pub wall_seconds: f64,
    pub rounds: usize,
    pub conflicts: usize,
    pub changes: usize,
    pub unit_seconds: Vec<f64>,
    /// Per-round chase observability (delta sizes, valuations enumerated);
    /// concatenated across group runs for the sequential variants.
    pub round_stats: Vec<RoundStats>,
    /// Scheduler fault counters aggregated over all chase rounds.
    pub fault_stats: FaultStats,
    /// Quarantined work units (their rules' rounds were voided and
    /// re-attempted; a non-empty list after convergence means best-effort).
    pub unit_failures: Vec<UnitFailure>,
    /// Durability counters and [`rock_chase::WalHealth`] when the chase ran
    /// with a WAL (`RockConfig::durability`); `None` for in-memory runs and
    /// the sequential variants (which chase per group, un-logged).
    pub wal: Option<WalSummary>,
}

/// The Rock system facade.
pub struct RockSystem {
    pub config: RockConfig,
}

impl RockSystem {
    pub fn new(config: RockConfig) -> Self {
        RockSystem { config }
    }

    /// Rule discovery over every relation mentioned by the workload's ML
    /// hints plus all relations (two-variable templates), with sampling
    /// (§5.2) when the relation is larger than ~200 rows.
    pub fn discover(&self, w: &Workload) -> DiscoveryOutcome {
        let start = Instant::now();
        let cost0 = w.registry.meter.cost();
        let schema = w.dirty.schema();
        // convert hints
        let sigs: Vec<MlSignature> = if self.config.variant.uses_ml() {
            w.ml_hints
                .iter()
                .filter_map(|h| {
                    let rel = schema.rel_id(&h.rel)?;
                    let attrs = h
                        .attrs
                        .iter()
                        .filter_map(|a| schema.relation(rel).attr_id(a))
                        .collect();
                    Some(MlSignature {
                        model: h.model.clone(),
                        rel,
                        attrs,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut disc_cfg = self.config.discovery.clone();
        disc_cfg.cluster = self.config.cluster.clone();
        let disc = Discoverer::new(&w.registry, disc_cfg);
        let mut rules = RuleSet::default();
        let mut candidates = 0usize;
        let mut fault_stats = FaultStats::default();
        let mut analyzer = rock_analyze::AnalyzerStats::default();
        let mut rules_dropped = 0usize;
        for (rid, rel) in w.dirty.iter() {
            if rel.is_empty() {
                continue;
            }
            let space = PredicateSpace::build(&w.dirty, rid, &sigs, &SpaceConfig::default());
            let report = if rel.len() > 200 && self.config.sample_ratio < 1.0 {
                mine_with_sampling(
                    &disc,
                    &w.dirty,
                    rid,
                    &space,
                    self.config.sample_ratio,
                    0.05,
                    17,
                )
            } else {
                disc.mine_relation(&w.dirty, rid, &space)
            };
            candidates += report.candidates_evaluated;
            fault_stats.merge(&report.fault_stats);
            analyzer.merge(&report.analyzer);
            rules_dropped += report.rules_dropped_by_analyzer;
            for r in report.rules.rules {
                rules.push(r);
            }
        }
        DiscoveryOutcome {
            rules,
            candidates_evaluated: candidates,
            wall_seconds: start.elapsed().as_secs_f64(),
            ml_cost: w.registry.meter.cost() - cost0,
            fault_stats,
            analyzer,
            rules_dropped_by_analyzer: rules_dropped,
        }
    }

    /// Error detection for one task with the workload's curated rules.
    pub fn detect(&self, w: &Workload, task: &Task) -> DetectionOutcome {
        let start = Instant::now();
        let rules = sorted_rules(&effective_rules(self.config.variant, &w.rules_for(task)));
        let blocking = if self.config.blocking && self.config.variant.uses_ml() {
            Some(precompute_ml(&w.dirty, &rules, &w.registry))
        } else {
            None
        };
        let mut detector = Detector::new(&rules, &w.registry)
            .with_workers(self.config.workers)
            .with_cluster(self.config.cluster.clone())
            .with_columnar(self.config.columnar);
        detector.partitions_per_rule = self.config.partitions_per_rule;
        if let Some(g) = &w.graph {
            detector = detector.with_graph(g);
        }
        let mut report = detector.detect(&w.dirty);
        // polynomial detection for arithmetic tasks
        if self.config.variant.uses_ml() {
            if let Some((rel, attr)) = task.polynomial_target {
                if let Some(pipe) =
                    PolyPipeline::fit(&w.dirty, rel, attr, &w.trusted, self.config.poly_tolerance)
                {
                    report.flagged_cells.extend(pipe.detect(&w.dirty));
                }
            }
        }
        let metrics = detection_metrics(&report.flagged_cells, &w.truth, task.scope.as_ref());
        DetectionOutcome {
            unit_seconds: report.unit_seconds.clone(),
            metrics,
            wall_seconds: start.elapsed().as_secs_f64(),
            blocking,
            report,
        }
    }

    /// Error correction for one task: the chase (per variant schedule) plus
    /// the polynomial pipeline, scored against the clean oracle.
    pub fn correct(&self, w: &Workload, task: &Task) -> CorrectionOutcome {
        let start = Instant::now();
        let rules = sorted_rules(&effective_rules(self.config.variant, &w.rules_for(task)));
        // the tuple-level blocking index doubles as the semi-naive chase's
        // pair-enumeration pruner, so keep it alive for the engine
        let block_index: Option<MlBlockIndex> =
            if self.config.blocking && self.config.variant.uses_ml() {
                Some(precompute_ml_indexed(&w.dirty, &rules, &w.registry).1)
            } else {
                None
            };
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let mk_engine = |rules: &RuleSet, max_rounds: usize| -> ChaseResult {
            let cfg = ChaseConfig {
                workers: self.config.workers,
                max_rounds,
                policy: policy.clone(),
                partitions_per_rule: self.config.partitions_per_rule,
                gate: self.config.gate,
                semi_naive: self.config.semi_naive,
                use_rule_graph: self.config.use_rule_graph,
                use_schedule: self.config.use_schedule,
                cluster: self.config.cluster.clone(),
                durability: self.config.durability.clone(),
                columnar: self.config.columnar,
                ..ChaseConfig::default()
            };
            let engine = ChaseEngine::new(rules, &w.registry, cfg);
            let engine = match &w.graph {
                Some(g) => engine.with_graph(g),
                None => engine,
            };
            let engine = match &block_index {
                Some(idx) => engine.with_blocking(idx),
                None => engine,
            };
            engine.run(&w.dirty, &w.trusted)
        };

        let (
            mut repaired,
            rounds,
            conflicts,
            changes,
            unit_seconds,
            round_stats,
            fault_stats,
            unit_failures,
            wal,
        ) = match self.config.variant {
            Variant::Rock | Variant::RockNoMl => {
                let res = mk_engine(&rules, 32);
                let us = res.round_makespans.concat();
                (
                    res.db,
                    res.rounds,
                    res.conflicts,
                    res.changes.len(),
                    us,
                    res.round_stats,
                    res.fault_stats,
                    res.unit_failures,
                    res.wal,
                )
            }
            Variant::RockSeq => {
                let (a, b, c, d, e, f, g, h) = self.run_sequential(w, &rules, &policy, true);
                (a, b, c, d, e, f, g, h, None)
            }
            Variant::RockNoC => {
                let (a, b, c, d, e, f, g, h) = self.run_sequential(w, &rules, &policy, false);
                (a, b, c, d, e, f, g, h, None)
            }
        };

        if self.config.variant.uses_ml() {
            if let Some((rel, attr)) = task.polynomial_target {
                if let Some(pipe) =
                    PolyPipeline::fit(&repaired, rel, attr, &w.trusted, self.config.poly_tolerance)
                {
                    pipe.correct(&mut repaired);
                }
            }
        }

        let metrics =
            correction_metrics(&w.dirty, &repaired, &w.clean, &w.truth, task.scope.as_ref());
        CorrectionOutcome {
            repaired,
            metrics,
            wall_seconds: start.elapsed().as_secs_f64(),
            rounds,
            conflicts,
            changes,
            unit_seconds,
            round_stats,
            fault_stats,
            unit_failures,
            wal,
        }
    }

    /// Incremental error correction (§3: "Rock corrects errors in batch
    /// and incremental modes"): apply ΔD and chase, activating only rules
    /// that read the touched relations.
    pub fn correct_incremental(
        &self,
        w: &Workload,
        task: &Task,
        delta: &rock_data::Delta,
    ) -> CorrectionOutcome {
        let start = Instant::now();
        let rules = sorted_rules(&effective_rules(self.config.variant, &w.rules_for(task)));
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let cfg = ChaseConfig {
            workers: self.config.workers,
            policy,
            partitions_per_rule: self.config.partitions_per_rule,
            gate: self.config.gate,
            semi_naive: self.config.semi_naive,
            use_rule_graph: self.config.use_rule_graph,
            use_schedule: self.config.use_schedule,
            cluster: self.config.cluster.clone(),
            durability: self.config.durability.clone(),
            columnar: self.config.columnar,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &w.registry, cfg);
        let engine = match &w.graph {
            Some(g) => engine.with_graph(g),
            None => engine,
        };
        let res = engine
            .run_incremental(&w.dirty, &w.trusted, delta)
            .expect("workload deltas are well-formed");
        let metrics =
            correction_metrics(&w.dirty, &res.db, &w.clean, &w.truth, task.scope.as_ref());
        CorrectionOutcome {
            metrics,
            wall_seconds: start.elapsed().as_secs_f64(),
            rounds: res.rounds,
            conflicts: res.conflicts,
            changes: res.changes.len(),
            unit_seconds: res.round_makespans.concat(),
            round_stats: res.round_stats,
            fault_stats: res.fault_stats,
            unit_failures: res.unit_failures,
            wal: res.wal,
            repaired: res.db,
        }
    }

    /// Durable incremental correction: like [`Self::correct_incremental`],
    /// but each ΔD batch is logged to `config.durability`'s WAL as a new
    /// session batch before its rounds run, so a correction stream killed
    /// mid-batch resumes mid-stream with the delta already durable
    /// ([`ChaseEngine::run_incremental_durable`]). Returns the chase's
    /// typed error surface; requires `config.durability` to be set.
    pub fn correct_incremental_durable(
        &self,
        w: &Workload,
        task: &Task,
        delta: &rock_data::Delta,
    ) -> Result<CorrectionOutcome, WalError> {
        let start = Instant::now();
        let rules = sorted_rules(&effective_rules(self.config.variant, &w.rules_for(task)));
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let cfg = ChaseConfig {
            workers: self.config.workers,
            policy,
            partitions_per_rule: self.config.partitions_per_rule,
            gate: self.config.gate,
            semi_naive: self.config.semi_naive,
            use_rule_graph: self.config.use_rule_graph,
            use_schedule: self.config.use_schedule,
            cluster: self.config.cluster.clone(),
            durability: self.config.durability.clone(),
            columnar: self.config.columnar,
            ..ChaseConfig::default()
        };
        let engine = ChaseEngine::new(&rules, &w.registry, cfg);
        let engine = match &w.graph {
            Some(g) => engine.with_graph(g),
            None => engine,
        };
        let res = engine.run_incremental_durable(&w.dirty, &w.trusted, delta)?;
        let metrics =
            correction_metrics(&w.dirty, &res.db, &w.clean, &w.truth, task.scope.as_ref());
        Ok(CorrectionOutcome {
            metrics,
            wall_seconds: start.elapsed().as_secs_f64(),
            rounds: res.rounds,
            conflicts: res.conflicts,
            changes: res.changes.len(),
            unit_seconds: res.round_makespans.concat(),
            round_stats: res.round_stats,
            fault_stats: res.fault_stats,
            unit_failures: res.unit_failures,
            wal: res.wal,
            repaired: res.db,
        })
    }

    /// Data-quality assessment (§4.1): completeness / uniqueness /
    /// consistency / timeliness over a database, using the workload's
    /// curated rules for the consistency dimension and its relation keys
    /// for uniqueness. The pipeline typically compares `assess(dirty)`
    /// against `assess(repaired)`.
    pub fn assess(
        &self,
        w: &Workload,
        db: &rock_data::Database,
        keys: &[(rock_data::RelId, rock_data::AttrId)],
    ) -> rock_chase::QualityReport {
        let rules = effective_rules(self.config.variant, &w.rules.without_ml());
        rock_chase::QualityReport::assess(db, keys, &rules, &w.registry)
    }

    /// Top-k diversified rule discovery (§5.2 "Sampling and top-k
    /// strategies" / [37]): mine the candidate pool, score each rule by
    /// objective (support, confidence) and subjective (the learned
    /// user-preference model, trained from `labeled` feedback) measures,
    /// then greedily select `k` rules maximizing *data coverage*
    /// diversification (each rule's coverage = the tuples its precondition
    /// touches).
    pub fn discover_top_k(&self, w: &Workload, k: usize, labeled: &[(String, bool)]) -> RuleSet {
        let pool = self.discover(w).rules;
        let mut miner = AnytimeMiner::new(pool.rules.clone());
        for (name, useful) in labeled {
            if let Some(i) = pool.rules.iter().position(|r| &r.name == name) {
                miner.feedback(i, *useful);
            }
        }
        // coverage: tuple ids (first variable) whose bindings satisfy the
        // precondition
        let coverage: Vec<rustc_hash::FxHashSet<u32>> = pool
            .rules
            .iter()
            .map(|rule| {
                let ctx = EvalContext::new(&w.dirty, &w.registry);
                let mut cov = rustc_hash::FxHashSet::default();
                enumerate_valuations(rule, &ctx, |h| {
                    cov.insert(h.tuples[0].tid.0);
                    cov.len() < 5_000 // cap the scan; coverage is a ranking signal
                });
                cov
            })
            .collect();
        let pref = {
            // rebuild the preference model from the same feedback for
            // scoring (AnytimeMiner keeps its own copy for its iterator)
            let mut p = rock_discovery::topk::PreferenceModel::new();
            let labeled_rules: Vec<(&rock_rees::Rule, bool)> = labeled
                .iter()
                .filter_map(|(name, y)| {
                    pool.rules.iter().find(|r| &r.name == name).map(|r| (r, *y))
                })
                .collect();
            p.train(&labeled_rules);
            p
        };
        let scores = score_rules(&pool.rules, &pref, 0.6, 0.4);
        let picked = diversified_top_k(&scores, &coverage, k);
        RuleSet::new(picked.into_iter().map(|i| pool.rules[i].clone()).collect())
    }

    /// Rockseq / RocknoC scheduling: run the four task groups one at a
    /// time. `iterate` loops the whole sequence until no group changes
    /// anything (Rockseq); otherwise a single pass (RocknoC).
    fn run_sequential(
        &self,
        w: &Workload,
        rules: &RuleSet,
        policy: &ConflictPolicy,
        iterate: bool,
    ) -> (
        Database,
        usize,
        usize,
        usize,
        Vec<f64>,
        Vec<RoundStats>,
        FaultStats,
        Vec<UnitFailure>,
    ) {
        let groups = split_by_task(rules);
        let mut db = w.dirty.clone();
        let mut fixes = rock_chase::FixStore::new();
        let mut total_rounds = 0usize;
        let mut conflicts = 0usize;
        let mut changes = 0usize;
        let mut unit_seconds = Vec::new();
        let mut round_stats: Vec<RoundStats> = Vec::new();
        let mut fault_stats = FaultStats::default();
        let mut unit_failures: Vec<UnitFailure> = Vec::new();
        let max_sweeps = if iterate { 8 } else { 1 };
        for _sweep in 0..max_sweeps {
            let mut changed_this_sweep = 0usize;
            for group in &groups {
                if group.is_empty() {
                    continue;
                }
                let cfg = ChaseConfig {
                    workers: self.config.workers,
                    max_rounds: if iterate { 32 } else { 1 },
                    policy: policy.clone(),
                    semi_naive: self.config.semi_naive,
                    use_rule_graph: self.config.use_rule_graph,
                    use_schedule: self.config.use_schedule,
                    cluster: self.config.cluster.clone(),
                    columnar: self.config.columnar,
                    ..ChaseConfig::default()
                };
                let engine = ChaseEngine::new(group, &w.registry, cfg);
                let engine = match &w.graph {
                    Some(g) => engine.with_graph(g),
                    None => engine,
                };
                // thread the fix store through: later groups (and sweeps)
                // must see earlier groups' entity merges and orders
                let res = engine.run_seeded(&db, &w.trusted, fixes);
                total_rounds += res.rounds;
                conflicts += res.conflicts;
                changes += res.changes.len();
                changed_this_sweep += res.changes.len() + res.merged_pairs.len();
                unit_seconds.extend(res.round_makespans.concat());
                round_stats.extend(res.round_stats);
                fault_stats.merge(&res.fault_stats);
                unit_failures.extend(res.unit_failures);
                db = res.db;
                fixes = res.fixes;
            }
            if changed_this_sweep == 0 {
                break;
            }
        }
        (
            db,
            total_rounds,
            conflicts,
            changes,
            unit_seconds,
            round_stats,
            fault_stats,
            unit_failures,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_workloads::workload::GenConfig;

    fn small() -> Workload {
        rock_workloads::logistics::generate(&GenConfig {
            rows: 150,
            error_rate: 0.1,
            seed: 3,
            trusted_per_rel: 15,
        })
    }

    #[test]
    fn detection_beats_coin_flip() {
        let w = small();
        let sys = RockSystem::new(RockConfig::default());
        let task = w.task("RClean").unwrap().clone();
        let out = sys.detect(&w, &task);
        assert!(out.metrics.f1() > 0.5, "F1 = {:.3}", out.metrics.f1());
        assert!(out.blocking.is_some());
    }

    #[test]
    fn correction_improves_data() {
        let w = small();
        let sys = RockSystem::new(RockConfig::default());
        let task = w.task("RClean").unwrap().clone();
        let out = sys.correct(&w, &task);
        assert!(out.metrics.f1() > 0.5, "F1 = {:.3}", out.metrics.f1());
        assert!(out.changes > 0);
        // repaired db differs from dirty and is closer to clean
        let dist = |a: &Database, b: &Database| -> usize {
            let mut d = 0;
            for (rid, rel) in a.iter() {
                for t in rel.iter() {
                    if let Some(u) = b.relation(rid).get(t.tid) {
                        d += t
                            .values
                            .iter()
                            .zip(&u.values)
                            .filter(|(x, y)| x != y)
                            .count();
                    }
                }
            }
            d
        };
        assert!(dist(&out.repaired, &w.clean) < dist(&w.dirty, &w.clean));
    }

    #[test]
    fn noml_variant_weaker_or_equal() {
        let w = small();
        let task = w.task("RClean").unwrap().clone();
        let full = RockSystem::new(RockConfig::default()).detect(&w, &task);
        let noml = RockSystem::new(RockConfig {
            variant: Variant::RockNoMl,
            ..RockConfig::default()
        })
        .detect(&w, &task);
        assert!(full.metrics.f1() >= noml.metrics.f1() - 1e-9);
    }

    #[test]
    fn seq_matches_rock_f1_noc_weaker() {
        let w = small();
        let task = w.task("RClean").unwrap().clone();
        let rock = RockSystem::new(RockConfig::default()).correct(&w, &task);
        let seq = RockSystem::new(RockConfig {
            variant: Variant::RockSeq,
            ..RockConfig::default()
        })
        .correct(&w, &task);
        let noc = RockSystem::new(RockConfig {
            variant: Variant::RockNoC,
            ..RockConfig::default()
        })
        .correct(&w, &task);
        // Rockseq converges to the same quality as Rock (both chase to
        // fixpoint; paper: "Rock has the same F-Measure as Rockseq")
        assert!(
            (rock.metrics.f1() - seq.metrics.f1()).abs() < 0.05,
            "rock {:.3} seq {:.3}",
            rock.metrics.f1(),
            seq.metrics.f1()
        );
        // RocknoC (single pass, no interaction) is no better
        assert!(
            noc.metrics.f1() <= rock.metrics.f1() + 1e-9,
            "noc {:.3} rock {:.3}",
            noc.metrics.f1(),
            rock.metrics.f1()
        );
    }

    #[test]
    fn quality_improves_after_correction() {
        let w = small();
        let sys = RockSystem::new(RockConfig::default());
        let task = w.task("RClean").unwrap().clone();
        let keys: Vec<(rock_data::RelId, rock_data::AttrId)> = vec![];
        let before = sys.assess(&w, &w.dirty, &keys);
        let out = sys.correct(&w, &task);
        let after = sys.assess(&w, &out.repaired, &keys);
        assert!(after.completeness >= before.completeness, "nulls filled");
        assert!(
            after.consistency >= before.consistency,
            "violations resolved"
        );
        assert!(after.overall() > before.overall());
    }

    #[test]
    fn top_k_discovery_is_diverse_and_bounded() {
        let w = small();
        let sys = RockSystem::new(RockConfig {
            discovery: DiscoveryConfig {
                min_support: 1e-4,
                min_confidence: 0.9,
                max_preconditions: 2,
                ..Default::default()
            },
            sample_ratio: 0.5,
            ..RockConfig::default()
        });
        let pool = sys.discover(&w).rules;
        let k = 3.min(pool.len());
        let top = sys.discover_top_k(&w, k, &[]);
        assert_eq!(top.len(), k);
        // feedback changes the selection when the pool is large enough
        if pool.len() > 4 {
            let disliked: Vec<(String, bool)> =
                top.iter().map(|r| (r.name.clone(), false)).collect();
            let retop = sys.discover_top_k(&w, k, &disliked);
            assert_eq!(retop.len(), k);
        }
    }

    #[test]
    fn strict_gate_is_conservative() {
        // Certain-fix regime: with the strict gate, every change must be
        // backed by trusted/validated precondition cells — fewer (or equal)
        // changes, and never a change contradicting the clean oracle on a
        // trusted tuple.
        let w = small();
        let task = w.task("RClean").unwrap().clone();
        let resolved = RockSystem::new(RockConfig::default()).correct(&w, &task);
        let strict = RockSystem::new(RockConfig {
            gate: rock_chase::chase::GateMode::Strict,
            ..RockConfig::default()
        })
        .correct(&w, &task);
        assert!(strict.changes <= resolved.changes);
        // strict precision should not be worse
        if strict.metrics.tp + strict.metrics.fp > 0 {
            assert!(strict.metrics.precision() >= resolved.metrics.precision() - 0.05);
        }
    }

    #[test]
    fn discovery_finds_rules_on_workload() {
        let w = small();
        let sys = RockSystem::new(RockConfig {
            discovery: DiscoveryConfig {
                min_support: 1e-4,
                min_confidence: 0.9,
                max_preconditions: 2,
                ..Default::default()
            },
            sample_ratio: 0.5,
            ..RockConfig::default()
        });
        let out = sys.discover(&w);
        assert!(!out.rules.is_empty(), "no rules discovered");
        assert!(out.candidates_evaluated > 0);
    }
}
