//! The polynomial-expression pipeline (paper §5.4 "Polynomial
//! expressions") wired as a detection/correction path for the arithmetic
//! tasks TPA (Bank: `total = amount + fee`) and TPWT (Sales:
//! `price_wot = price − tax`).
//!
//! Discovery fits on *trusted* rows when available ("Rock continually
//! accumulates ground truth … so that the rule discovery module could
//! discover rules on cleaner data", §5.4), falling back to all rows.
//! Detection flags cells violating the expression; correction recomputes
//! the target from the expression when every input attribute is present.

use rock_data::{AttrId, CellRef, Database, GlobalTid, RelId, Value};
use rock_discovery::prune::{discover_polynomial, PolynomialExpression};
use rustc_hash::FxHashSet;

/// A fitted polynomial pipeline for one target attribute.
#[derive(Debug)]
pub struct PolyPipeline {
    pub expr: PolynomialExpression,
    pub tolerance: f64,
}

impl PolyPipeline {
    /// Fit the expression for `(rel, target)`. When `trusted` is non-empty
    /// the fit restricts to those rows.
    pub fn fit(
        db: &Database,
        rel: RelId,
        target: AttrId,
        trusted: &[GlobalTid],
        tolerance: f64,
    ) -> Option<PolyPipeline> {
        let trusted_here: FxHashSet<_> = trusted
            .iter()
            .filter(|g| g.rel == rel)
            .map(|g| g.tid)
            .collect();
        let fit_on =
            |tids: Option<&FxHashSet<rock_data::TupleId>>| -> Option<PolynomialExpression> {
                match tids {
                    Some(set) => {
                        let mut sub = rock_data::Relation::new(db.relation(rel).schema.clone());
                        for tid in set {
                            if let Some(t) = db.relation(rel).get(*tid) {
                                sub.insert(t.eid, t.values.clone());
                            }
                        }
                        let tmp = Database::from_relations(vec![sub]);
                        discover_polynomial(&tmp, RelId(0), target, 0.05).map(|mut e| {
                            e.rel = rel;
                            e
                        })
                    }
                    None => discover_polynomial(db, rel, target, 0.05),
                }
            };
        let mut expr = if trusted_here.len() >= 8 {
            fit_on(Some(&trusted_here))?
        } else {
            // Robust fit: least squares is thrown off by corrupted rows, so
            // iterate fit → trim the worst-residual quartile → refit
            // (self-supervised outlier trimming, standing in for the
            // ground-truth-accumulation loop of §5.4 when no trusted rows
            // exist yet).
            let mut cur = fit_on(None)?;
            for _ in 0..2 {
                let mut residuals: Vec<(rock_data::TupleId, f64)> = db
                    .relation(rel)
                    .iter()
                    .filter_map(|t| {
                        let pred = cur.eval(&t.values)?;
                        let y = t.get(target).as_f64()?;
                        Some((t.tid, (pred - y).abs()))
                    })
                    .collect();
                if residuals.len() < 8 {
                    break;
                }
                residuals.sort_by(|a, b| a.1.total_cmp(&b.1));
                let keep: FxHashSet<rock_data::TupleId> = residuals[..residuals.len() * 3 / 4]
                    .iter()
                    .map(|(t, _)| *t)
                    .collect();
                match fit_on(Some(&keep)) {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            cur
        };
        // Recompute the residual over all rows for reporting.
        let mut resid = 0.0;
        let mut n = 0usize;
        for t in db.relation(rel).iter() {
            if let (Some(pred), Some(y)) = (expr.eval(&t.values), t.get(target).as_f64()) {
                resid += (pred - y).abs();
                n += 1;
            }
        }
        expr.mean_abs_residual = if n == 0 {
            f64::INFINITY
        } else {
            resid / n as f64
        };
        if expr.mean_abs_residual.is_infinite() {
            return None;
        }
        Some(PolyPipeline { expr, tolerance })
    }

    /// Cells violating the expression (detection). Null targets are also
    /// flagged (they are missing values the expression can fill).
    pub fn detect(&self, db: &Database) -> FxHashSet<CellRef> {
        let mut out = FxHashSet::default();
        let rel = self.expr.rel;
        for t in db.relation(rel).iter() {
            let target_cell = CellRef::new(rel, t.tid, self.expr.target);
            if t.get(self.expr.target).is_null() {
                if self.expr.eval(&t.values).is_some() {
                    out.insert(target_cell);
                }
                continue;
            }
            if self.expr.check(&t.values, self.tolerance) == Some(false) {
                out.insert(target_cell);
            }
        }
        out
    }

    /// Recompute violating/null targets (correction). Returns the changed
    /// cells with their new values.
    pub fn correct(&self, db: &mut Database) -> Vec<(CellRef, Value)> {
        let rel = self.expr.rel;
        let flagged = self.detect(db);
        let mut changes = Vec::new();
        for cell in flagged {
            let Some(t) = db.relation(rel).get(cell.tid) else {
                continue;
            };
            let Some(pred) = self.expr.eval(&t.values) else {
                continue;
            };
            let rounded = (pred * 100.0).round() / 100.0;
            let new = Value::Float(rounded);
            db.relation_mut(rel)
                .set_cell(cell.tid, self.expr.target, new.clone());
            changes.push((cell, new));
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, TupleId};

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Payment",
            &[
                ("amount", AttrType::Float),
                ("fee", AttrType::Float),
                ("total", AttrType::Float),
            ],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 1..40 {
            let amount = i as f64 * 10.0;
            let fee = i as f64;
            r.insert_row(vec![
                Value::Float(amount),
                Value::Float(fee),
                Value::Float(amount + fee),
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn detects_and_corrects_corrupted_totals() {
        let mut d = db();
        // corrupt two totals, null one
        d.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(2), Value::Float(999.0));
        d.relation_mut(RelId(0))
            .set_cell(TupleId(5), AttrId(2), Value::Float(-3.0));
        d.relation_mut(RelId(0))
            .set_cell(TupleId(9), AttrId(2), Value::Null);
        let pipe = PolyPipeline::fit(&d, RelId(0), AttrId(2), &[], 0.02).expect("fit");
        let flagged = pipe.detect(&d);
        assert_eq!(flagged.len(), 3, "{flagged:?}");
        let changes = pipe.correct(&mut d);
        assert_eq!(changes.len(), 3);
        // corrected values match amount + fee
        assert_eq!(
            d.cell(RelId(0), TupleId(0), AttrId(2)),
            Some(&Value::Float(11.0))
        );
        assert_eq!(
            d.cell(RelId(0), TupleId(9), AttrId(2)),
            Some(&Value::Float(110.0))
        );
        // nothing left to flag
        assert!(pipe.detect(&d).is_empty());
    }

    #[test]
    fn fit_on_trusted_rows_only() {
        let mut d = db();
        // corrupt a third of totals — enough to disturb a naive full fit
        for i in (0..39).step_by(3) {
            d.relation_mut(RelId(0))
                .set_cell(TupleId(i), AttrId(2), Value::Float(1e6));
        }
        let trusted: Vec<GlobalTid> = (1..39)
            .filter(|i| i % 3 != 0)
            .take(12)
            .map(|i| GlobalTid::new(RelId(0), TupleId(i)))
            .collect();
        let pipe = PolyPipeline::fit(&d, RelId(0), AttrId(2), &trusted, 0.02).expect("fit");
        // the trusted fit still recovers total = amount + fee
        let flagged = pipe.detect(&d);
        assert_eq!(
            flagged.len(),
            13,
            "all corrupted rows flagged: {}",
            flagged.len()
        );
    }

    #[test]
    fn clean_data_not_flagged() {
        let d = db();
        let pipe = PolyPipeline::fit(&d, RelId(0), AttrId(2), &[], 0.02).unwrap();
        assert!(pipe.detect(&d).is_empty());
    }
}
