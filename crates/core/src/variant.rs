//! The Rock ablation variants (paper §6).

use rock_detect::detect::{consequence_kind, ErrorKind};
use rock_rees::{Rule, RuleSet};
use serde::{Deserialize, Serialize};

/// Which system variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Full Rock: unified chase, ML predicates, polynomial pipeline.
    Rock,
    /// No ML predicates anywhere (and no polynomial pipeline).
    RockNoMl,
    /// ER → CR → MI → TD executed task-by-task, looping to fixpoint.
    RockSeq,
    /// ER, CR, MI, TD executed once each, no interaction loop.
    RockNoC,
}

impl Variant {
    pub fn all() -> [Variant; 4] {
        [
            Variant::Rock,
            Variant::RockNoMl,
            Variant::RockSeq,
            Variant::RockNoC,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Variant::Rock => "Rock",
            Variant::RockNoMl => "RocknoML",
            Variant::RockSeq => "Rockseq",
            Variant::RockNoC => "RocknoC",
        }
    }

    /// Does this variant use ML predicates?
    pub fn uses_ml(&self) -> bool {
        !matches!(self, Variant::RockNoMl)
    }

    /// Does this variant iterate the chase to fixpoint?
    pub fn iterates(&self) -> bool {
        !matches!(self, Variant::RockNoC)
    }
}

/// Partition a rule set by task kind (the ER/CR/MI/TD split RockSeq and
/// RockNoC schedule by).
pub fn split_by_task(rules: &RuleSet) -> [RuleSet; 4] {
    let mut out = [
        RuleSet::default(),
        RuleSet::default(),
        RuleSet::default(),
        RuleSet::default(),
    ];
    for r in rules.iter() {
        let idx = match consequence_kind(r) {
            ErrorKind::Er => 0,
            ErrorKind::Cr => 1,
            ErrorKind::Mi => 2,
            ErrorKind::Td => 3,
        };
        out[idx].push(r.clone());
    }
    out
}

/// The rule set a variant actually runs.
pub fn effective_rules(variant: Variant, rules: &RuleSet) -> RuleSet {
    match variant {
        Variant::RockNoMl => rules.without_ml(),
        _ => rules.clone(),
    }
}

/// Order rules deterministically by name (variants must not depend on
/// input order; Church–Rosser is property-tested on top of this).
pub fn sorted_rules(rules: &RuleSet) -> RuleSet {
    let mut rs: Vec<Rule> = rules.rules.clone();
    rs.sort_by(|a, b| a.name.cmp(&b.name));
    RuleSet::new(rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema};
    use rock_rees::parse_rules;

    fn rules() -> RuleSet {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("a", AttrType::Str), ("b", AttrType::Str)],
        )]);
        RuleSet::new(
            parse_rules(
                "rule er: T(t) && T(s) && t.a = s.a -> t.eid = s.eid\n\
                 rule cr: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
                 rule mi: T(t) && null(t.b) -> t.b = 'x'\n\
                 rule td: T(t) && T(s) && t.a = 'u' && s.a = 'v' -> t <=[a] s\n\
                 rule ml: T(t) && T(s) && ml:M(t[a], s[a]) -> t.eid = s.eid",
                &schema,
            )
            .unwrap(),
        )
    }

    #[test]
    fn split_assigns_each_kind() {
        let [er, cr, mi, td] = split_by_task(&rules());
        assert_eq!(er.len(), 2); // er + ml
        assert_eq!(cr.len(), 1);
        assert_eq!(mi.len(), 1);
        assert_eq!(td.len(), 1);
    }

    #[test]
    fn noml_variant_drops_ml_rules() {
        let r = rules();
        assert_eq!(effective_rules(Variant::RockNoMl, &r).len(), 4);
        assert_eq!(effective_rules(Variant::Rock, &r).len(), 5);
        assert!(Variant::Rock.uses_ml());
        assert!(!Variant::RockNoMl.uses_ml());
        assert!(!Variant::RockNoC.iterates());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::Rock.name(), "Rock");
        assert_eq!(Variant::RockNoMl.name(), "RocknoML");
        assert_eq!(Variant::RockSeq.name(), "Rockseq");
        assert_eq!(Variant::RockNoC.name(), "RocknoC");
        assert_eq!(Variant::all().len(), 4);
    }

    #[test]
    fn sorted_rules_deterministic() {
        let r = rules();
        let s = sorted_rules(&r);
        let names: Vec<&str> = s.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["cr", "er", "mi", "ml", "td"]);
    }
}
