//! # rock-core — the Rock system facade
//!
//! Ties the substrates together into the end-to-end pipeline of §3:
//! **rule discovery** (offline) → **error detection** → **error
//! correction** (the chase), plus the data-quality assessment. Also
//! implements the paper's three ablation variants (§6 "Baselines"):
//!
//! * `Rock` — the full system: unified chase over all REE++s.
//! * `RockNoMl` — drops every rule with an ML predicate and the
//!   polynomial-expression pipeline.
//! * `RockSeq` — iterates ER → CR → MI → TD task-by-task until fixpoint
//!   (same final answer as Rock, by Church–Rosser; slower).
//! * `RockNoC` — runs ER, CR, MI, TD once each, sequentially, without the
//!   chase loop (no interaction between the tasks).

pub mod poly;
pub mod system;
pub mod variant;

/// Dense bitset kernels behind discovery's predicate satisfaction cache.
/// The implementation lives in `rock-data` (the one crate below both
/// `rock-rees` and `rock-discovery` in the dependency order) and is
/// re-exported here as the system-level API surface.
pub use rock_data::bitset;

pub use poly::PolyPipeline;
pub use system::{CorrectionOutcome, DetectionOutcome, DiscoveryOutcome, RockConfig, RockSystem};
pub use variant::Variant;
