//! # rock-core — the Rock system facade
//!
//! Ties the substrates together into the end-to-end pipeline of §3:
//! **rule discovery** (offline) → **error detection** → **error
//! correction** (the chase), plus the data-quality assessment. Also
//! implements the paper's three ablation variants (§6 "Baselines"):
//!
//! * `Rock` — the full system: unified chase over all REE++s.
//! * `RockNoMl` — drops every rule with an ML predicate and the
//!   polynomial-expression pipeline.
//! * `RockSeq` — iterates ER → CR → MI → TD task-by-task until fixpoint
//!   (same final answer as Rock, by Church–Rosser; slower).
//! * `RockNoC` — runs ER, CR, MI, TD once each, sequentially, without the
//!   chase loop (no interaction between the tasks).

pub mod poly;
pub mod system;
pub mod variant;

pub use poly::PolyPipeline;
pub use system::{CorrectionOutcome, DetectionOutcome, DiscoveryOutcome, RockConfig, RockSystem};
pub use variant::Variant;
