//! Relation and database schemas.
//!
//! A database schema `R = (R1, …, Rm)` where each `Rj = R(A1:τ1, …, Ak:τk)`
//! (paper §2, Preliminaries). Attribute names are unique within a relation;
//! the paper assumes attribute names are distinct across relations ("e.g.
//! prefixed by its relation name") — we instead address attributes by
//! `(RelId, AttrId)` pairs everywhere, which achieves the same without name
//! mangling.

use crate::ids::{AttrId, RelId};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Attribute type `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    Int,
    Float,
    Str,
    Bool,
    Date,
}

impl AttrType {
    /// Whether two attribute types are *compatible* for comparison
    /// predicates `t.A ⊕ s.B` (paper §2.1(d): same type required; we also
    /// allow Int/Float cross-comparison since values coerce).
    pub fn compatible(self, other: AttrType) -> bool {
        self == other
            || matches!(
                (self, other),
                (AttrType::Int, AttrType::Float) | (AttrType::Float, AttrType::Int)
            )
    }

    /// Is this a numeric type (used by the polynomial-expression discovery
    /// of §5.4)?
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
            AttrType::Bool => "bool",
            AttrType::Date => "date",
        };
        f.write_str(s)
    }
}

/// One attribute `A : τ` of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    pub name: String,
    pub ty: AttrType,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one relation `R(A1:τ1, …, Ak:τk)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelationSchema {
    pub name: String,
    pub attrs: Vec<Attribute>,
    #[serde(skip)]
    by_name: FxHashMap<String, AttrId>,
}

impl RelationSchema {
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Self {
        let by_name = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), AttrId(i as u16)))
            .collect();
        RelationSchema {
            name: name.into(),
            attrs,
            by_name,
        }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(name: impl Into<String>, cols: &[(&str, AttrType)]) -> Self {
        Self::new(
            name,
            cols.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
        )
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Look up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        if self.by_name.is_empty() && !self.attrs.is_empty() {
            // Deserialized schema: fall back to linear scan.
            return self
                .attrs
                .iter()
                .position(|a| a.name == name)
                .map(|i| AttrId(i as u16));
        }
        self.by_name.get(name).copied()
    }

    /// Attribute metadata for an id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// Name of an attribute id.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// Iterate `(AttrId, &Attribute)`.
    pub fn iter_attrs(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }
}

/// Database schema `R = (R1, …, Rm)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatabaseSchema {
    pub relations: Vec<RelationSchema>,
    #[serde(skip)]
    by_name: FxHashMap<String, RelId>,
}

impl DatabaseSchema {
    pub fn new(relations: Vec<RelationSchema>) -> Self {
        let by_name = relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RelId(i as u16)))
            .collect();
        DatabaseSchema { relations, by_name }
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        if self.by_name.is_empty() && !self.relations.is_empty() {
            return self
                .relations
                .iter()
                .position(|r| r.name == name)
                .map(|i| RelId(i as u16));
        }
        self.by_name.get(name).copied()
    }

    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u16), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> RelationSchema {
        RelationSchema::of(
            "Person",
            &[
                ("pid", AttrType::Str),
                ("LN", AttrType::Str),
                ("FN", AttrType::Str),
                ("gender", AttrType::Str),
                ("home", AttrType::Str),
                ("status", AttrType::Str),
                ("spouse", AttrType::Str),
            ],
        )
    }

    #[test]
    fn attr_lookup() {
        let p = person();
        assert_eq!(p.arity(), 7);
        assert_eq!(p.attr_id("home"), Some(AttrId(4)));
        assert_eq!(p.attr_id("missing"), None);
        assert_eq!(p.attr_name(AttrId(1)), "LN");
    }

    #[test]
    fn database_schema_lookup() {
        let db = DatabaseSchema::new(vec![person()]);
        let rid = db.rel_id("Person").unwrap();
        assert_eq!(db.relation(rid).name, "Person");
        assert!(db.rel_id("Store").is_none());
    }

    #[test]
    fn type_compatibility() {
        assert!(AttrType::Int.compatible(AttrType::Float));
        assert!(AttrType::Str.compatible(AttrType::Str));
        assert!(!AttrType::Str.compatible(AttrType::Int));
        assert!(AttrType::Int.is_numeric());
        assert!(!AttrType::Date.is_numeric());
    }

    #[test]
    fn serde_roundtrip_preserves_lookup() {
        let p = person();
        let json = serde_json::to_string(&p).unwrap();
        let back: RelationSchema = serde_json::from_str(&json).unwrap();
        // by_name is skipped; lookup must still work via fallback scan.
        assert_eq!(back.attr_id("spouse"), Some(AttrId(6)));
    }
}
