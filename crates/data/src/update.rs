//! Update batches ΔD for the incremental modes (paper §3: "Rock also
//! incrementally detects errors in response to updates ΔD to D").

use crate::error::DataError;
use crate::ids::{AttrId, Eid, RelId, TupleId};
use crate::schema::RelationSchema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A single update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Update {
    /// Insert a new tuple.
    Insert {
        rel: RelId,
        eid: Eid,
        values: Vec<Value>,
    },
    /// Delete an existing tuple.
    Delete { rel: RelId, tid: TupleId },
    /// Overwrite one cell.
    SetCell {
        rel: RelId,
        tid: TupleId,
        attr: AttrId,
        value: Value,
    },
}

impl Update {
    /// Relation this update touches.
    pub fn rel(&self) -> RelId {
        match self {
            Update::Insert { rel, .. }
            | Update::Delete { rel, .. }
            | Update::SetCell { rel, .. } => *rel,
        }
    }
}

/// An ordered batch ΔD.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Delta {
    pub updates: Vec<Update>,
}

impl Delta {
    pub fn new(updates: Vec<Update>) -> Self {
        Delta { updates }
    }

    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    pub fn len(&self) -> usize {
        self.updates.len()
    }

    pub fn push(&mut self, u: Update) {
        self.updates.push(u);
    }

    /// Relations touched by this batch (deduplicated, sorted) — drives
    /// incremental REE++ activation: a rule is activated only if one of its
    /// relation atoms is among these (paper §4.1 workflow).
    pub fn touched_relations(&self) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.updates.iter().map(|u| u.rel()).collect();
        rels.sort();
        rels.dedup();
        rels
    }

    /// Cells directly written by this batch (inserted tuples contribute all
    /// their cells once ids are known, so callers combine this with the ids
    /// returned by [`crate::Database::apply`]).
    pub fn touched_cells(&self) -> Vec<(RelId, TupleId, AttrId)> {
        self.updates
            .iter()
            .filter_map(|u| match u {
                Update::SetCell { rel, tid, attr, .. } => Some((*rel, *tid, *attr)),
                _ => None,
            })
            .collect()
    }
}

/// Validate every `Insert` in a batch against its target schema, before
/// anything is applied. [`crate::Database::apply`] calls this so that a
/// malformed ΔD is rejected atomically — the instance is left untouched
/// rather than half-applied.
pub fn check_arities<'a>(
    delta: &Delta,
    schema_of: impl Fn(RelId) -> &'a RelationSchema,
) -> Result<(), DataError> {
    for u in &delta.updates {
        if let Update::Insert { rel, values, .. } = u {
            let schema = schema_of(*rel);
            if values.len() != schema.arity() {
                return Err(DataError::ArityMismatch {
                    relation: schema.name.clone(),
                    expected: schema.arity(),
                    got: values.len(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_relations_dedup_sorted() {
        let d = Delta::new(vec![
            Update::Delete {
                rel: RelId(2),
                tid: TupleId(0),
            },
            Update::Delete {
                rel: RelId(0),
                tid: TupleId(1),
            },
            Update::Delete {
                rel: RelId(2),
                tid: TupleId(3),
            },
        ]);
        assert_eq!(d.touched_relations(), vec![RelId(0), RelId(2)]);
    }

    #[test]
    fn touched_cells_only_setcell() {
        let d = Delta::new(vec![
            Update::Insert {
                rel: RelId(0),
                eid: Eid(0),
                values: vec![],
            },
            Update::SetCell {
                rel: RelId(1),
                tid: TupleId(4),
                attr: AttrId(2),
                value: Value::Null,
            },
        ]);
        assert_eq!(d.touched_cells(), vec![(RelId(1), TupleId(4), AttrId(2))]);
    }

    #[test]
    fn check_arities_flags_bad_insert() {
        use crate::schema::AttrType;
        let schema = RelationSchema::of("R", &[("x", AttrType::Int)]);
        let ok = Delta::new(vec![Update::Insert {
            rel: RelId(0),
            eid: Eid(0),
            values: vec![Value::Int(1)],
        }]);
        assert!(check_arities(&ok, |_| &schema).is_ok());
        let bad = Delta::new(vec![Update::Insert {
            rel: RelId(0),
            eid: Eid(0),
            values: vec![],
        }]);
        assert_eq!(
            check_arities(&bad, |_| &schema),
            Err(DataError::ArityMismatch {
                relation: "R".into(),
                expected: 1,
                got: 0,
            })
        );
    }

    #[test]
    fn push_and_len() {
        let mut d = Delta::default();
        assert!(d.is_empty());
        d.push(Update::Delete {
            rel: RelId(0),
            tid: TupleId(0),
        });
        assert_eq!(d.len(), 1);
    }
}
