//! Typed attribute values with a total order.
//!
//! REE++ predicates compare attribute values with `{=, ≠, <, ≤, >, ≥}`
//! (paper §2.1), so values need a total order; `Null` sorts lowest and is
//! never equal to anything under *SQL-style* comparison but **is** equal to
//! itself under the structural `Eq` used by indexes. The chase distinguishes
//! the two via [`Value::sql_eq`].

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// Kept small (24 bytes on x86-64): large payloads (`Str`) are behind an
/// `Arc`, so cloning a [`Value`] never allocates.
///
/// ```
/// use rock_data::Value;
///
/// // SQL-style comparison: null equals nothing, not even itself…
/// assert!(!Value::Null.sql_eq(&Value::Null));
/// // …but the structural order is total (indexes need it)
/// assert!(Value::Null < Value::Int(0));
/// assert_eq!(Value::Int(3), Value::Float(3.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value. MI rules (`null(t[B]) → …`, paper §2.3) target these.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float; ordered by `f64::total_cmp`.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Date as days since the Unix epoch (compact; formats as YYYY-MM-DD).
    Date(i32),
}

impl Value {
    /// Build a string value (interning is handled by the database loader;
    /// this constructor is for ad-hoc values).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style equality: `Null` compares equal to nothing, including
    /// itself. Rule predicates `t.A = s.B` use this.
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// SQL-style ordering: `None` when either side is `Null` or the types
    /// are incomparable; otherwise the total order restricted to non-null.
    #[inline]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        if std::mem::discriminant(self) != std::mem::discriminant(other) {
            // Allow Int/Float cross-comparison; everything else is a type
            // error that simply never satisfies the predicate.
            if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
                return Some(a.total_cmp(&b));
            }
            return None;
        }
        Some(self.cmp(other))
    }

    /// Numeric view (Int, Float, Bool and Date coerce; Str parses if numeric).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            Value::Date(d) => Some(*d as f64),
            Value::Str(s) => s.parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// String view for textual values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as a plain string for feature extraction / CSV output.
    /// `Null` renders as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Parse a CSV field into the given type; empty fields become `Null`.
    pub fn parse_as(raw: &str, ty: crate::schema::AttrType) -> Value {
        use crate::schema::AttrType;
        if raw.is_empty() || raw == "null" || raw == "NULL" {
            return Value::Null;
        }
        match ty {
            AttrType::Int => raw.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
            AttrType::Float => raw.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
            AttrType::Bool => match raw {
                "true" | "TRUE" | "1" => Value::Bool(true),
                "false" | "FALSE" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            AttrType::Date => parse_date(raw).map(Value::Date).unwrap_or(Value::Null),
            AttrType::Str => Value::str(raw),
        }
    }
}

/// Days-since-epoch from `YYYY-MM-DD` (proleptic Gregorian, civil algorithm).
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.splitn(3, '-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Civil-calendar day count (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i32 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i64, u32, u32) {
    let z = i64::from(z) + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The one Int↔Float normalization used everywhere a mixed-type numeric
/// comparison happens: the row path ([`Value`]'s `Ord`, and through it
/// `sql_eq`/`sql_cmp`) and the columnar kernels
/// (`rock_data::ColumnSet::eval_const_op` / `eval_col_op_col`). Keeping it
/// in one place is what makes `Int(3) == Float(3.0)` hold identically in
/// both planes, so the row-store equivalence oracle can't silently diverge
/// on mixed-type columns.
#[inline]
pub fn cmp_int_float(a: i64, b: f64) -> Ordering {
    (a as f64).total_cmp(&b)
}

impl Ord for Value {
    /// Total order: Null < Bool < Int/Float (numeric, merged) < Date < Str.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Date(_) => 3,
                Str(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use Value::*;
        match self {
            Null => state.write_u8(0),
            Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Int and Float that are numerically equal must hash equally
            // (they compare equal under `cmp`).
            Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Date(d) => {
                state.write_u8(3);
                state.write_i32(*d);
            }
            Str(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => {
                let (y, m, dd) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_not_sql_equal_to_itself() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert_eq!(Value::Null, Value::Null); // structural
    }

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert_eq!(
            Value::Int(4).sql_cmp(&Value::Float(4.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn int_float_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn date_roundtrip() {
        for s in [
            "2020-12-18",
            "2021-11-11",
            "2023-08-12",
            "1970-01-01",
            "1969-12-31",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(Value::Date(d).to_string(), s);
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
    }

    #[test]
    fn date_ordering_matches_chronology() {
        let a = parse_date("2020-12-18").unwrap();
        let b = parse_date("2021-11-11").unwrap();
        assert!(Value::Date(a) < Value::Date(b));
    }

    #[test]
    fn parse_as_types() {
        use crate::schema::AttrType;
        assert_eq!(Value::parse_as("42", AttrType::Int), Value::Int(42));
        assert_eq!(Value::parse_as("", AttrType::Int), Value::Null);
        assert_eq!(Value::parse_as("x", AttrType::Int), Value::Null);
        assert_eq!(Value::parse_as("1.5", AttrType::Float), Value::Float(1.5));
        assert_eq!(Value::parse_as("true", AttrType::Bool), Value::Bool(true));
        assert_eq!(Value::parse_as("abc", AttrType::Str), Value::str("abc"));
    }

    #[test]
    fn render_null_is_empty() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(5).render(), "5");
    }

    #[test]
    fn total_order_across_kinds_is_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Int(7),
            Value::Date(10),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn sql_cmp_incompatible_types_is_none() {
        assert_eq!(Value::str("x").sql_cmp(&Value::Date(1)), None);
        // numeric string vs int coerces
        assert_eq!(
            Value::str("5").sql_cmp(&Value::Int(5)),
            Some(Ordering::Equal)
        );
    }
}
