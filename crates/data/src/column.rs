//! The columnar data plane: typed columns behind the row API.
//!
//! Every [`Relation`] can materialize a [`ColumnSet`] — one typed column
//! per attribute (`i64`/`f64`/date/bool dense vectors, dictionary-encoded
//! strings with `u32` codes), a null bitmap per column, and a live bitmap
//! (the tombstone complement) reusing [`Bitset`]. On top sit the
//! vectorized predicate kernels [`ColumnSet::eval_const_op`] and
//! [`ColumnSet::eval_col_op_col`]: they return per-slot satisfaction
//! bitsets that feed the same AND+popcount machinery as the discovery
//! cache, so constant and single-variable predicates scan contiguous
//! memory instead of chasing `Arc<str>` pointers through `Option<Tuple>`
//! rows.
//!
//! ## Semantics discipline
//!
//! The row path and the kernels must agree *exactly* (the row store is the
//! byte-identical equivalence oracle, `tests/columnar_equivalence.rs`).
//! Two mechanisms enforce that:
//!
//! * [`PredOp::eval`] is the **one** scalar comparison implementation —
//!   `rock_rees::CmpOp` delegates to it, and every kernel either reduces
//!   to it (per-dictionary-code tables, per-slot fallback) or to an
//!   [`Ordering`] produced by the same normalization the row path uses
//!   (notably [`crate::value::cmp_int_float`] for `Int ⋈ Float`, so
//!   `Int(3) = Float(3.0)` holds identically in both planes);
//! * cells whose value does not fit the column's physical type (dirty data
//!   carries injected type errors) are stored in a per-column `fallback`
//!   side map holding the exact [`Value`], and kernels re-evaluate those
//!   slots with the scalar semantics.
//!
//! ## Lifecycle
//!
//! The rows stay the source of truth; the `ColumnSet` is a versioned
//! cache ([`ColumnCache`]) rebuilt lazily on first use after a structural
//! mutation. Cell overwrites (`Relation::set_cell`, the chase's commit
//! write path) write through into the cached columns in place when the
//! snapshot is exclusively held, so a chase round does not pay a rebuild
//! per committed fix. String dictionaries are append-only within a
//! snapshot; a rebuild re-encodes them down to the live value set.

use crate::bitset::Bitset;
use crate::ids::AttrId;
use crate::relation::Relation;
use crate::schema::AttrType;
use crate::value::{cmp_int_float, Value};
use crate::Dictionary;
use rock_crystal::sync::{Arc, AtomicU64, LockRank, Ordering as AtomicOrdering, RankedRwLock};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Storage-layer configuration. `columnar` routes the evaluation hot
/// paths (rees prefilters, detection scans, chase enumeration) through
/// the vectorized kernels; with it off the row store is the equivalence
/// oracle. Default on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataConfig {
    pub columnar: bool,
}

impl Default for DataConfig {
    fn default() -> Self {
        DataConfig { columnar: true }
    }
}

/// A comparison operator with the storage layer's SQL-null semantics:
/// any comparison involving `Null` is false (even `≠`). This is the single
/// scalar comparison implementation both planes share — the rule
/// language's `CmpOp` delegates here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl PredOp {
    /// Scalar evaluation — the normative semantics.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            PredOp::Eq => a.sql_eq(b),
            PredOp::Neq => !a.is_null() && !b.is_null() && !a.sql_eq(b),
            _ => match a.sql_cmp(b) {
                None => false,
                Some(ord) => self.holds(ord),
            },
        }
    }

    /// Decide from an [`Ordering`]. Only sound when the ordering was
    /// produced by the same comparison the scalar path would use on two
    /// non-null operands — the typed kernel loops guarantee that by
    /// construction (same physical type, or `Int ⋈ Float` through
    /// [`cmp_int_float`]).
    #[inline]
    pub fn holds(self, ord: Ordering) -> bool {
        use Ordering::*;
        matches!(
            (self, ord),
            (PredOp::Eq, Equal)
                | (PredOp::Neq, Less)
                | (PredOp::Neq, Greater)
                | (PredOp::Lt, Less)
                | (PredOp::Le, Less)
                | (PredOp::Le, Equal)
                | (PredOp::Gt, Greater)
                | (PredOp::Ge, Greater)
                | (PredOp::Ge, Equal)
        )
    }
}

/// Dense typed storage of one column. The vector holds one element per
/// *slot* (live or tombstoned); null/fallback slots hold a default filler
/// that is never decoded.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Days since epoch, as in [`Value::Date`].
    Date(Vec<i32>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `codes[slot]` indexes `dict`.
    Str {
        codes: Vec<u32>,
        dict: Dictionary,
    },
}

impl ColumnData {
    fn for_type(ty: AttrType, slots: usize) -> ColumnData {
        match ty {
            AttrType::Int => ColumnData::Int64(Vec::with_capacity(slots)),
            AttrType::Float => ColumnData::Float64(Vec::with_capacity(slots)),
            AttrType::Date => ColumnData::Date(Vec::with_capacity(slots)),
            AttrType::Bool => ColumnData::Bool(Vec::with_capacity(slots)),
            AttrType::Str => ColumnData::Str {
                codes: Vec::with_capacity(slots),
                dict: Dictionary::new(),
            },
        }
    }

    fn push_default(&mut self) {
        match self {
            ColumnData::Int64(xs) => xs.push(0),
            ColumnData::Float64(xs) => xs.push(0.0),
            ColumnData::Date(xs) => xs.push(0),
            ColumnData::Bool(xs) => xs.push(false),
            ColumnData::Str { codes, .. } => codes.push(0),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int64(xs) => xs.capacity() * 8,
            ColumnData::Float64(xs) => xs.capacity() * 8,
            ColumnData::Date(xs) => xs.capacity() * 4,
            ColumnData::Bool(xs) => xs.capacity(),
            ColumnData::Str { codes, dict } => codes.capacity() * 4 + dict.heap_bytes(),
        }
    }
}

/// One typed column: dense data + null bitmap + the hetero-typed side map.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    /// Bit set ⇔ the cell is SQL `Null` (tombstoned slots are also marked
    /// null so they can never satisfy a kernel predicate).
    pub nulls: Bitset,
    /// Cells whose value does not match the column's physical type —
    /// injected type errors. Keyed by slot; kernels re-evaluate these with
    /// the exact scalar semantics.
    fallback: FxHashMap<u32, Value>,
}

impl Column {
    fn new(ty: AttrType, slots: usize) -> Column {
        Column {
            data: ColumnData::for_type(ty, slots),
            nulls: Bitset::new(slots),
            fallback: FxHashMap::default(),
        }
    }

    fn push_value(&mut self, slot: usize, v: &Value) {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.nulls.set(slot);
                self.data.push_default();
            }
            (ColumnData::Int64(xs), Value::Int(i)) => xs.push(*i),
            (ColumnData::Float64(xs), Value::Float(f)) => xs.push(*f),
            (ColumnData::Date(xs), Value::Date(d)) => xs.push(*d),
            (ColumnData::Bool(xs), Value::Bool(b)) => xs.push(*b),
            (ColumnData::Str { codes, dict }, Value::Str(s)) => codes.push(dict.intern(s)),
            _ => {
                self.fallback.insert(slot as u32, v.clone());
                self.data.push_default();
            }
        }
    }

    /// Overwrite one cell in place (the `set_cell` write-through path).
    fn set_value(&mut self, slot: usize, v: &Value) {
        self.fallback.remove(&(slot as u32));
        self.nulls.unset(slot);
        match (&mut self.data, v) {
            (_, Value::Null) => self.nulls.set(slot),
            (ColumnData::Int64(xs), Value::Int(i)) => xs[slot] = *i,
            (ColumnData::Float64(xs), Value::Float(f)) => xs[slot] = *f,
            (ColumnData::Date(xs), Value::Date(d)) => xs[slot] = *d,
            (ColumnData::Bool(xs), Value::Bool(b)) => xs[slot] = *b,
            // Append-only interning: the old code may go stranded until the
            // next full rebuild re-encodes the dictionary.
            (ColumnData::Str { codes, dict }, Value::Str(s)) => codes[slot] = dict.intern(s),
            _ => {
                self.fallback.insert(slot as u32, v.clone());
            }
        }
    }

    /// Materialize the exact [`Value`] stored at a slot.
    pub fn value_at(&self, slot: usize) -> Value {
        if self.nulls.get(slot) {
            return Value::Null;
        }
        if let Some(v) = self.fallback.get(&(slot as u32)) {
            return v.clone();
        }
        match &self.data {
            ColumnData::Int64(xs) => Value::Int(xs[slot]),
            ColumnData::Float64(xs) => Value::Float(xs[slot]),
            ColumnData::Date(xs) => Value::Date(xs[slot]),
            ColumnData::Bool(xs) => Value::Bool(xs[slot]),
            ColumnData::Str { codes, dict } => Value::Str(Arc::clone(dict.value(codes[slot]))),
        }
    }

    /// Number of hetero-typed cells parked in the side map.
    pub fn fallback_len(&self) -> usize {
        self.fallback.len()
    }

    /// Set `out[i]` for every non-null slot where `pred(i)` holds.
    fn fill(&self, out: &mut Bitset, pred: impl Fn(usize) -> bool) {
        for i in 0..out.len() {
            if !self.nulls.get(i) && pred(i) {
                out.set(i);
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
            + self.nulls.heap_bytes()
            + self.fallback.len() * (4 + std::mem::size_of::<Value>())
    }
}

/// Set `out[i]` for every slot non-null in both columns where `pred(i)`.
fn fill2(a: &Column, b: &Column, out: &mut Bitset, pred: impl Fn(usize) -> bool) {
    for i in 0..out.len() {
        if !a.nulls.get(i) && !b.nulls.get(i) && pred(i) {
            out.set(i);
        }
    }
}

/// The columnar image of one relation: a live bitmap plus one [`Column`]
/// per attribute, all indexed by slot (= `TupleId`, which stays stable
/// across deletions — tombstoned slots simply have their live bit clear
/// and all cells marked null).
#[derive(Debug, Clone)]
pub struct ColumnSet {
    slots: usize,
    live: Bitset,
    columns: Vec<Column>,
}

impl ColumnSet {
    /// Encode a relation. Cost is one pass over the rows; the result is
    /// cached per relation by [`ColumnCache`].
    pub fn from_relation(rel: &Relation) -> ColumnSet {
        let slots = rel.capacity();
        let mut live = Bitset::new(slots);
        let mut columns: Vec<Column> = rel
            .schema
            .attrs
            .iter()
            .map(|a| Column::new(a.ty, slots))
            .collect();
        for slot in 0..slots {
            match rel.get(crate::ids::TupleId(slot as u32)) {
                Some(t) => {
                    live.set(slot);
                    for (i, col) in columns.iter_mut().enumerate() {
                        col.push_value(slot, t.get(AttrId(i as u16)));
                    }
                }
                None => {
                    for col in columns.iter_mut() {
                        col.nulls.set(slot);
                        col.data.push_default();
                    }
                }
            }
        }
        ColumnSet {
            slots,
            live,
            columns,
        }
    }

    /// Total slots (live + tombstoned); the length of every kernel bitset.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The tombstone-complement bitmap.
    pub fn live(&self) -> &Bitset {
        &self.live
    }

    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()]
    }

    /// Materialize the exact row value of one cell.
    pub fn value_at(&self, attr: AttrId, slot: usize) -> Value {
        self.columns[attr.index()].value_at(slot)
    }

    /// Satisfaction bitset of `null(t.A)` over live tuples.
    pub fn null_mask(&self, attr: AttrId) -> Bitset {
        self.columns[attr.index()].nulls.and(&self.live)
    }

    fn set_cell(&mut self, slot: usize, attr: AttrId, v: &Value) {
        self.columns[attr.index()].set_value(slot, v);
    }

    /// Vectorized `t.A ⊕ const`: one bit per slot, set iff the scalar
    /// semantics would accept. Tombstoned slots are never set (their cells
    /// are marked null, and null satisfies no operator).
    pub fn eval_const_op(&self, attr: AttrId, op: PredOp, v: &Value) -> Bitset {
        let col = &self.columns[attr.index()];
        let mut out = Bitset::new(self.slots);
        if v.is_null() {
            return out; // null const satisfies nothing, incl. ≠
        }
        match (&col.data, v) {
            (ColumnData::Int64(xs), Value::Int(c)) => {
                col.fill(&mut out, |i| op.holds(xs[i].cmp(c)));
            }
            (ColumnData::Int64(xs), Value::Float(c)) => {
                col.fill(&mut out, |i| op.holds(cmp_int_float(xs[i], *c)));
            }
            (ColumnData::Float64(xs), Value::Float(c)) => {
                col.fill(&mut out, |i| op.holds(xs[i].total_cmp(c)));
            }
            (ColumnData::Float64(xs), Value::Int(c)) => {
                col.fill(&mut out, |i| op.holds(cmp_int_float(*c, xs[i]).reverse()));
            }
            (ColumnData::Date(xs), Value::Date(c)) => {
                col.fill(&mut out, |i| op.holds(xs[i].cmp(c)));
            }
            (ColumnData::Bool(xs), Value::Bool(c)) => {
                col.fill(&mut out, |i| op.holds(xs[i].cmp(c)));
            }
            (ColumnData::Str { codes, dict }, _) => {
                // Per-code satisfaction table: each distinct string is
                // evaluated once with the shared scalar semantics (this
                // also covers numeric-string coercion under range ops),
                // then the scan compares u32 codes only. For `=`/`≠`
                // against a string constant this degenerates to code
                // equality, since the dictionary holds each payload once.
                let table: Vec<bool> = dict
                    .iter()
                    .map(|(_, s)| op.eval(&Value::Str(Arc::clone(s)), v))
                    .collect();
                col.fill(&mut out, |i| {
                    let c = codes[i] as usize;
                    c < table.len() && table[c]
                });
            }
            // remaining cross-type combos (e.g. int column vs date const)
            // are rare: exact per-slot scalar evaluation
            _ => col.fill(&mut out, |i| op.eval(&col.value_at(i), v)),
        }
        // hetero-typed cells always get the exact scalar verdict
        for (slot, cell) in &col.fallback {
            let s = *slot as usize;
            if op.eval(cell, v) {
                out.set(s);
            } else {
                out.unset(s);
            }
        }
        out
    }

    /// Vectorized `t.A ⊕ t.B` over one relation (the single-variable
    /// two-attribute prefilter). String equality compares dictionary codes
    /// through a one-shot cross-dictionary translation table.
    pub fn eval_col_op_col(&self, lattr: AttrId, op: PredOp, rattr: AttrId) -> Bitset {
        let a = &self.columns[lattr.index()];
        let b = &self.columns[rattr.index()];
        let mut out = Bitset::new(self.slots);
        match (&a.data, &b.data) {
            (ColumnData::Int64(xs), ColumnData::Int64(ys)) => {
                fill2(a, b, &mut out, |i| op.holds(xs[i].cmp(&ys[i])));
            }
            (ColumnData::Int64(xs), ColumnData::Float64(ys)) => {
                fill2(a, b, &mut out, |i| op.holds(cmp_int_float(xs[i], ys[i])));
            }
            (ColumnData::Float64(xs), ColumnData::Int64(ys)) => {
                fill2(a, b, &mut out, |i| {
                    op.holds(cmp_int_float(ys[i], xs[i]).reverse())
                });
            }
            (ColumnData::Float64(xs), ColumnData::Float64(ys)) => {
                fill2(a, b, &mut out, |i| op.holds(xs[i].total_cmp(&ys[i])));
            }
            (ColumnData::Date(xs), ColumnData::Date(ys)) => {
                fill2(a, b, &mut out, |i| op.holds(xs[i].cmp(&ys[i])));
            }
            (ColumnData::Bool(xs), ColumnData::Bool(ys)) => {
                fill2(a, b, &mut out, |i| op.holds(xs[i].cmp(&ys[i])));
            }
            (
                ColumnData::Str {
                    codes: ac,
                    dict: ad,
                },
                ColumnData::Str {
                    codes: bc,
                    dict: bd,
                },
            ) if matches!(op, PredOp::Eq | PredOp::Neq) => {
                // code translation: left code -> right code of the same
                // payload (None when the payload is absent on the right)
                let trans: Vec<Option<u32>> = ad.iter().map(|(_, s)| bd.code(s)).collect();
                fill2(a, b, &mut out, |i| {
                    let eq = trans.get(ac[i] as usize).is_some_and(|t| *t == Some(bc[i]));
                    op.holds(if eq { Ordering::Equal } else { Ordering::Less })
                });
            }
            // lexicographic string ranges and cross-type columns: exact
            // per-slot scalar evaluation
            _ => fill2(a, b, &mut out, |i| op.eval(&a.value_at(i), &b.value_at(i))),
        }
        for slot in a.fallback.keys().chain(b.fallback.keys()) {
            let s = *slot as usize;
            if op.eval(&a.value_at(s), &b.value_at(s)) {
                out.set(s);
            } else {
                out.unset(s);
            }
        }
        out
    }

    /// Heap footprint of the columnar image (bytes-touched accounting for
    /// the bench panel).
    pub fn heap_bytes(&self) -> usize {
        self.live.heap_bytes() + self.columns.iter().map(Column::heap_bytes).sum::<usize>()
    }
}

/// Approximate heap footprint of the row image of a relation — the
/// row-vs-column bytes comparison of the `figures -- columnar` panel.
pub fn row_heap_bytes(rel: &Relation) -> usize {
    let mut bytes = rel.capacity() * std::mem::size_of::<Option<crate::tuple::Tuple>>();
    for t in rel.iter() {
        bytes += t.values.capacity() * std::mem::size_of::<Value>();
        for v in &t.values {
            if let Value::Str(s) = v {
                bytes += s.len();
            }
        }
    }
    bytes
}

/// Versioned per-relation cache of the [`ColumnSet`].
///
/// * serde-skipped: checkpoint/WAL bytes are unchanged by the columnar
///   plane;
/// * `Clone` yields an *empty* cache (a cloned relation rebuilds lazily);
/// * mutators bump `version`; readers rebuild when their snapshot's
///   version is stale;
/// * `write_cell` patches the snapshot in place when it is current and
///   exclusively held, keeping the chase's commit path rebuild-free.
#[derive(Debug)]
pub struct ColumnCache {
    // Release bump / Acquire read: a reader that observes version v also
    // observes every row mutation that preceded the bump to v, so a
    // version-matched snapshot is never stale.
    version: AtomicU64,
    snapshot: RankedRwLock<Option<(u64, Arc<ColumnSet>)>>,
}

impl Default for ColumnCache {
    fn default() -> Self {
        ColumnCache {
            version: AtomicU64::new(0),
            snapshot: RankedRwLock::new(LockRank::ColumnSnapshot, None),
        }
    }
}

impl Clone for ColumnCache {
    fn clone(&self) -> Self {
        ColumnCache::default()
    }
}

impl ColumnCache {
    /// Drop any snapshot validity (structural mutation: insert/delete/raw
    /// tuple access).
    pub(crate) fn invalidate(&self) {
        self.version.fetch_add(1, AtomicOrdering::Release);
    }

    /// Write one cell through to the cached snapshot, or invalidate when
    /// the snapshot is stale or shared.
    pub(crate) fn write_cell(&self, slot: usize, attr: AttrId, v: &Value) {
        let mut guard = self.snapshot.write();
        let current = self.version.load(AtomicOrdering::Acquire);
        match guard.as_mut() {
            Some((ver, set)) if *ver == current => match Arc::get_mut(set) {
                Some(set) => set.set_cell(slot, attr, v),
                None => self.invalidate(),
            },
            _ => self.invalidate(),
        }
    }

    /// Current snapshot, rebuilding from the rows if stale or absent.
    pub(crate) fn get_or_build(&self, rel: &Relation) -> Arc<ColumnSet> {
        let current = self.version.load(AtomicOrdering::Acquire);
        {
            let guard = self.snapshot.read();
            if let Some((ver, set)) = guard.as_ref() {
                if *ver == current {
                    return Arc::clone(set);
                }
            }
        }
        let built = Arc::new(ColumnSet::from_relation(rel));
        let mut guard = self.snapshot.write();
        // Concurrent readers may race to rebuild the same version; both
        // build identical data, so last-write-wins is fine. Mutation
        // cannot race (it needs `&mut Relation`).
        *guard = Some((current, Arc::clone(&built)));
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TupleId;
    use crate::schema::RelationSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelationSchema::of(
            "T",
            &[
                ("name", AttrType::Str),
                ("n", AttrType::Int),
                ("x", AttrType::Float),
            ],
        ));
        r.insert_row(vec![Value::str("a"), Value::Int(1), Value::Float(1.5)])
            .unwrap();
        r.insert_row(vec![Value::str("b"), Value::Int(2), Value::Null])
            .unwrap();
        r.insert_row(vec![Value::str("a"), Value::Null, Value::Float(3.0)])
            .unwrap();
        // injected type error: a string in the int column
        r.insert_row(vec![Value::Null, Value::str("oops"), Value::Float(2.0)])
            .unwrap();
        r
    }

    fn ones(b: &Bitset) -> Vec<usize> {
        b.ones().collect()
    }

    #[test]
    fn value_roundtrip_is_exact() {
        let r = rel();
        let cols = r.columns();
        for t in r.iter() {
            for (attr, _) in r.schema.iter_attrs() {
                assert_eq!(
                    cols.value_at(attr, t.tid.index()),
                    *t.get(attr),
                    "cell {:?}/{attr:?}",
                    t.tid
                );
            }
        }
    }

    #[test]
    fn const_kernel_matches_scalar_on_every_op() {
        let r = rel();
        let cols = r.columns();
        let consts = [
            Value::str("a"),
            Value::Int(2),
            Value::Float(1.5),
            Value::Float(2.0),
            Value::Null,
            Value::str("oops"),
        ];
        for op in [
            PredOp::Eq,
            PredOp::Neq,
            PredOp::Lt,
            PredOp::Le,
            PredOp::Gt,
            PredOp::Ge,
        ] {
            for c in &consts {
                for (attr, _) in r.schema.iter_attrs() {
                    let mask = cols.eval_const_op(attr, op, c);
                    for t in r.iter() {
                        assert_eq!(
                            mask.get(t.tid.index()),
                            op.eval(t.get(attr), c),
                            "{op:?} {c:?} attr {attr:?} tid {:?}",
                            t.tid
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int_float_cross_type_equality_mirrored() {
        // Int(3) == Float(3.0) on the row path must hold in the kernels
        let mut r = Relation::new(RelationSchema::of("T", &[("n", AttrType::Int)]));
        r.insert_row(vec![Value::Int(3)]).unwrap();
        r.insert_row(vec![Value::Int(4)]).unwrap();
        let cols = r.columns();
        let eq = cols.eval_const_op(AttrId(0), PredOp::Eq, &Value::Float(3.0));
        assert_eq!(ones(&eq), vec![0]);
        let ge = cols.eval_const_op(AttrId(0), PredOp::Ge, &Value::Float(3.5));
        assert_eq!(ones(&ge), vec![1]);
    }

    #[test]
    fn col_op_col_kernel_matches_scalar() {
        let mut r = Relation::new(RelationSchema::of(
            "T",
            &[
                ("a", AttrType::Str),
                ("b", AttrType::Str),
                ("n", AttrType::Int),
                ("x", AttrType::Float),
            ],
        ));
        r.insert_row(vec![
            Value::str("u"),
            Value::str("u"),
            Value::Int(1),
            Value::Float(1.0),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("u"),
            Value::str("v"),
            Value::Int(2),
            Value::Float(1.5),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::Null,
            Value::str("u"),
            Value::Int(3),
            Value::Float(3.0),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("w"),
            Value::Null,
            Value::Null,
            Value::Float(0.0),
        ])
        .unwrap();
        let cols = r.columns();
        for op in [
            PredOp::Eq,
            PredOp::Neq,
            PredOp::Lt,
            PredOp::Le,
            PredOp::Gt,
            PredOp::Ge,
        ] {
            for (l, rt) in [(0u16, 1u16), (2, 3), (0, 2)] {
                let mask = cols.eval_col_op_col(AttrId(l), op, AttrId(rt));
                for t in r.iter() {
                    assert_eq!(
                        mask.get(t.tid.index()),
                        op.eval(t.get(AttrId(l)), t.get(AttrId(rt))),
                        "{op:?} {l}/{rt} tid {:?}",
                        t.tid
                    );
                }
            }
        }
    }

    #[test]
    fn tombstones_never_satisfy_and_tids_stay_stable() {
        let mut r = rel();
        assert!(r.delete(TupleId(0)));
        let cols = r.columns();
        assert_eq!(cols.slots(), 4);
        assert!(!cols.live().get(0));
        let mask = cols.eval_const_op(AttrId(0), PredOp::Eq, &Value::str("a"));
        assert_eq!(ones(&mask), vec![2], "only the live 'a' row matches");
        assert_eq!(cols.value_at(AttrId(0), 2), Value::str("a"));
    }

    #[test]
    fn null_mask_excludes_tombstones() {
        let mut r = rel();
        let before = ones(&r.columns().null_mask(AttrId(2)));
        assert_eq!(before, vec![1]);
        r.delete(TupleId(1));
        assert!(ones(&r.columns().null_mask(AttrId(2))).is_empty());
    }

    #[test]
    fn write_through_keeps_snapshot_current() {
        let mut r = rel();
        let first = r.columns();
        drop(first); // exclusively held again
        assert!(r.set_cell(TupleId(0), AttrId(1), Value::Int(42)));
        let cols = r.columns();
        assert_eq!(cols.value_at(AttrId(1), 0), Value::Int(42));
        let mask = cols.eval_const_op(AttrId(1), PredOp::Eq, &Value::Int(42));
        assert_eq!(ones(&mask), vec![0]);
        // overwrite a fallback cell with a typed value: side map shrinks
        assert_eq!(cols.column(AttrId(1)).fallback_len(), 1);
        drop(cols);
        assert!(r.set_cell(TupleId(3), AttrId(1), Value::Int(7)));
        assert_eq!(r.columns().column(AttrId(1)).fallback_len(), 0);
    }

    #[test]
    fn shared_snapshot_invalidates_instead_of_mutating() {
        let mut r = rel();
        let held = r.columns(); // keep an Arc alive across the write
        assert!(r.set_cell(TupleId(0), AttrId(1), Value::Int(99)));
        assert_eq!(
            held.value_at(AttrId(1), 0),
            Value::Int(1),
            "held snapshot is immutable"
        );
        assert_eq!(r.columns().value_at(AttrId(1), 0), Value::Int(99));
    }

    #[test]
    fn dictionary_reencoding_compacts_on_rebuild() {
        let mut r = Relation::new(RelationSchema::of("T", &[("s", AttrType::Str)]));
        for s in ["a", "b", "a", "c"] {
            r.insert_row(vec![Value::str(s)]).unwrap();
        }
        let dict_len = |r: &Relation| match &r.columns().column(AttrId(0)).data {
            ColumnData::Str { dict, .. } => dict.len(),
            _ => unreachable!("string column"),
        };
        assert_eq!(dict_len(&r), 3);
        // overwrite every 'a' and 'c' with 'b': append-only interning keeps
        // stranded codes until a structural mutation forces a re-encode
        for tid in [0u32, 2, 3] {
            r.set_cell(TupleId(tid), AttrId(0), Value::str("b"));
        }
        assert_eq!(dict_len(&r), 3, "write-through interning is append-only");
        r.insert_row(vec![Value::str("b")]).unwrap(); // invalidates
        assert_eq!(dict_len(&r), 1, "rebuild re-encodes to the live set");
    }

    #[test]
    fn cloned_relation_rebuilds_independently() {
        let mut r = rel();
        let _ = r.columns();
        let mut c = r.clone();
        c.set_cell(TupleId(0), AttrId(1), Value::Int(5));
        assert_eq!(r.columns().value_at(AttrId(1), 0), Value::Int(1));
        assert_eq!(c.columns().value_at(AttrId(1), 0), Value::Int(5));
    }

    #[test]
    fn heap_accounting_is_nonzero_and_columnar_is_denser_for_strings() {
        let mut r = Relation::new(RelationSchema::of("T", &[("s", AttrType::Str)]));
        for i in 0..256 {
            r.insert_row(vec![Value::str(if i % 2 == 0 { "even" } else { "odd" })])
                .unwrap();
        }
        let cols = r.columns();
        assert!(cols.heap_bytes() > 0);
        assert!(
            cols.heap_bytes() < row_heap_bytes(&r),
            "dictionary codes beat 24-byte values: {} vs {}",
            cols.heap_bytes(),
            row_heap_bytes(&r)
        );
    }
}
