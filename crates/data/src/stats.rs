//! Column statistics and metadata (paper §5.1, "Metadata management":
//! Crystal maintains column distributions for categorical/numerical
//! attributes and attribute summaries — signatures — for textual ones).
//!
//! These feed three consumers:
//! * the discovery layer, to build constant predicates from frequent values
//!   and to prune uncorrelated predicate candidates (FDX-style, §5.4);
//! * the work-unit **cost estimation** of the scheduler (§5.2);
//! * the data-quality assessment report (§4.1).

use crate::ids::AttrId;
use crate::relation::Relation;
use crate::schema::AttrType;
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    pub attr: AttrId,
    pub ty: AttrType,
    /// Live (non-tombstone) rows seen.
    pub count: usize,
    pub null_count: usize,
    pub distinct: usize,
    /// Most frequent non-null values with their frequencies, descending.
    pub top_values: Vec<(Value, usize)>,
    /// Numeric summary, when the column is numeric.
    pub numeric: Option<NumericStats>,
    /// Mean string length for textual columns (signature used by the
    /// attribute-summary metadata and the T5s/RB cost models).
    pub mean_len: f64,
}

/// min/max/mean/variance of a numeric column.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NumericStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub variance: f64,
}

impl ColumnStats {
    /// Compute stats for one column of a relation. `top_k` limits the
    /// frequent-value list.
    ///
    /// Scans the columnar image rather than the rows: a stats pass touches
    /// one attribute of every tuple, which is exactly the access pattern
    /// the typed columns are laid out for, and [`Column::value_at`]
    /// materializes the same [`Value`]s the row path would yield.
    ///
    /// [`Column::value_at`]: crate::column::Column::value_at
    pub fn compute(rel: &Relation, attr: AttrId, top_k: usize) -> Self {
        let ty = rel.schema.attr(attr).ty;
        let cols = rel.columns();
        let col = cols.column(attr);
        let mut freq: FxHashMap<Value, usize> = FxHashMap::default();
        let mut count = 0usize;
        let mut null_count = 0usize;
        let mut len_sum = 0usize;
        let mut n = 0usize;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for slot in cols.live().ones() {
            count += 1;
            let v = col.value_at(slot);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if let Some(s) = v.as_str() {
                len_sum += s.len();
            }
            if let Some(x) = v.as_f64() {
                n += 1;
                sum += x;
                sumsq += x * x;
                min = min.min(x);
                max = max.max(x);
            }
            *freq.entry(v).or_insert(0) += 1;
        }
        let distinct = freq.len();
        let mut top_values: Vec<(Value, usize)> = freq.into_iter().collect();
        top_values.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top_values.truncate(top_k);
        let non_null = count - null_count;
        let numeric = if ty.is_numeric() && n > 0 {
            let mean = sum / n as f64;
            Some(NumericStats {
                min,
                max,
                mean,
                variance: (sumsq / n as f64 - mean * mean).max(0.0),
            })
        } else {
            None
        };
        ColumnStats {
            attr,
            ty,
            count,
            null_count,
            distinct,
            top_values,
            numeric,
            mean_len: if non_null == 0 {
                0.0
            } else {
                len_sum as f64 / non_null as f64
            },
        }
    }

    /// Fraction of nulls.
    pub fn null_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.null_count as f64 / self.count as f64
        }
    }

    /// Selectivity estimate of an equality predicate on this column
    /// (`1/distinct` under a uniform assumption) — the scheduler's cost
    /// estimator uses this.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Is this column categorical enough to enumerate constant predicates
    /// over (few distinct values relative to rows)?
    pub fn is_categorical(&self, max_distinct: usize) -> bool {
        self.distinct > 0 && self.distinct <= max_distinct
    }
}

/// Statistics for one relation: all columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    pub rel_name: String,
    pub rows: usize,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn compute(rel: &Relation, top_k: usize) -> Self {
        TableStats {
            rel_name: rel.schema.name.clone(),
            rows: rel.len(),
            columns: (0..rel.schema.arity())
                .map(|i| ColumnStats::compute(rel, AttrId(i as u16), top_k))
                .collect(),
        }
    }

    pub fn column(&self, attr: AttrId) -> &ColumnStats {
        &self.columns[attr.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn rel() -> Relation {
        let mut r = Relation::new(RelationSchema::of(
            "T",
            &[("cat", AttrType::Str), ("num", AttrType::Float)],
        ));
        r.insert_row(vec![Value::str("a"), Value::Float(1.0)])
            .unwrap();
        r.insert_row(vec![Value::str("a"), Value::Float(3.0)])
            .unwrap();
        r.insert_row(vec![Value::str("b"), Value::Null]).unwrap();
        r.insert_row(vec![Value::Null, Value::Float(2.0)]).unwrap();
        r
    }

    #[test]
    fn categorical_stats() {
        let s = ColumnStats::compute(&rel(), AttrId(0), 10);
        assert_eq!(s.count, 4);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.top_values[0], (Value::str("a"), 2));
        assert!((s.null_fraction() - 0.25).abs() < 1e-12);
        assert!(s.is_categorical(10));
        assert!(!s.is_categorical(1));
    }

    #[test]
    fn numeric_stats() {
        let s = ColumnStats::compute(&rel(), AttrId(1), 10);
        let n = s.numeric.unwrap();
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 3.0);
        assert!((n.mean - 2.0).abs() < 1e-12);
        assert!((n.variance - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_stats_and_selectivity() {
        let ts = TableStats::compute(&rel(), 5);
        assert_eq!(ts.rows, 4);
        assert_eq!(ts.columns.len(), 2);
        assert!((ts.column(AttrId(0)).eq_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_truncation_deterministic() {
        let s = ColumnStats::compute(&rel(), AttrId(0), 1);
        assert_eq!(s.top_values.len(), 1);
        assert_eq!(s.top_values[0].0, Value::str("a"));
    }
}
