//! Typed storage-layer errors.
//!
//! The data plane used to `assert!` its invariants (an arity mismatch in
//! [`crate::Relation::insert`] aborted the process); under the repo-wide
//! unwrap/expect discipline malformed input must surface as a value the
//! caller can route — the chase turns it into a failed incremental run,
//! csvio into an `io::Error`, and the workload generators into a labelled
//! `expect` at the one place the arity is statically known.

use std::fmt;

/// An error raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A row was inserted with the wrong number of values for its schema.
    ArityMismatch {
        /// Relation name (schemas are addressed by name at the API edge).
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into {relation}: got {got} values, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_relation_and_counts() {
        let e = DataError::ArityMismatch {
            relation: "Store".into(),
            expected: 2,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("arity mismatch"), "{msg}");
        assert!(msg.contains("Store"), "{msg}");
        assert!(msg.contains("got 1"), "{msg}");
        assert!(msg.contains("expected 2"), "{msg}");
    }
}
