//! Dense `u64`-word bitsets and the bitwise kernels behind discovery's
//! predicate satisfaction cache (re-exported at `rock_core::bitset`).
//!
//! A [`Bitset`] records, for a fixed universe of `len` instances, which of
//! them satisfy some property — one bit per instance, packed 64 per word.
//! Discovery materializes one bitset per predicate over the candidate
//! instance set and then evaluates whole conjunctions with word-parallel
//! kernels ([`Bitset::and_popcount`], [`Bitset::and3_popcount`],
//! [`Bitset::intersect_with`]) instead of re-scanning tuples, so the cost
//! of measuring `supp(X ∧ p)` drops from a tuple re-scan per candidate to
//! `len / 64` word operations.
//!
//! Invariant: bits at positions `>= len` in the last word are always zero,
//! so popcount kernels never need a tail mask.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-length dense bitset over `u64` words.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
}

impl Bitset {
    /// All-zeros bitset over `len` instances.
    pub fn new(len: usize) -> Bitset {
        Bitset {
            len,
            words: vec![0u64; words_for(len)],
        }
    }

    /// All-ones bitset over `len` instances.
    pub fn full(len: usize) -> Bitset {
        let mut b = Bitset {
            len,
            words: vec![u64::MAX; words_for(len)],
        };
        b.mask_tail();
        b
    }

    /// Build from a bool slice (used by tests and the property-test model).
    pub fn from_bools(bits: &[bool]) -> Bitset {
        let mut b = Bitset::new(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i);
            }
        }
        b
    }

    /// Number of instances (bits) in the universe, not the popcount.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap footprint of the word storage, for cache accounting.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set every bit in `[start, end)`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of {}",
            self.len
        );
        if start == end {
            return;
        }
        let first = start / WORD_BITS;
        let last = (end - 1) / WORD_BITS;
        let head = u64::MAX << (start % WORD_BITS);
        let tail = u64::MAX >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
        if first == last {
            self.words[first] |= head & tail;
        } else {
            self.words[first] |= head;
            for w in &mut self.words[first + 1..last] {
                *w = u64::MAX;
            }
            self.words[last] |= tail;
        }
    }

    /// Popcount of the whole set.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// `|self ∧ other|` without materializing the intersection — the inner
    /// kernel of support counting.
    pub fn and_popcount(&self, other: &Bitset) -> u64 {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & b).count_ones()))
            .sum()
    }

    /// `|self ∧ ¬other|` — violation counting (`h ⊨ X` but `h ⊭ p0`).
    /// Sound without a tail mask because `self`'s tail bits are zero.
    pub fn and_not_popcount(&self, other: &Bitset) -> u64 {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| u64::from((a & !b).count_ones()))
            .sum()
    }

    /// `|self ∧ b ∧ c|` — confidence numerators mask three ways at once
    /// (running conjunction ∧ consequence ∧ off-diagonal).
    pub fn and3_popcount(&self, b: &Bitset, c: &Bitset) -> u64 {
        assert_eq!(self.len, b.len, "bitset length mismatch");
        assert_eq!(self.len, c.len, "bitset length mismatch");
        self.words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((x, y), z)| u64::from((x & y & z).count_ones()))
            .sum()
    }

    /// In-place intersection: the level-k running bitset is the level-(k−1)
    /// bitset intersected with the new conjunct's bitset.
    pub fn intersect_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Allocating intersection (`self ∧ other`).
    pub fn and(&self, other: &Bitset) -> Bitset {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Iterate the indices of set bits, ascending.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }
}

fn words_for(len: usize) -> usize {
    (len + WORD_BITS - 1) / WORD_BITS
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // summarize: a pair-domain bitset has millions of bits
        f.debug_struct("Bitset")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

/// Iterator over set-bit indices (see [`Bitset::ones`]).
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitset::new(130);
        assert_eq!(b.count_ones(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn full_masks_tail() {
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let b = Bitset::full(len);
            assert_eq!(b.count_ones(), len as u64, "len {len}");
            assert_eq!(b.ones().count(), len);
        }
    }

    #[test]
    fn and_kernels_match_naive() {
        let n = 200;
        let mut a = Bitset::new(n);
        let mut b = Bitset::new(n);
        let mut c = Bitset::new(n);
        // deterministic pseudo-random fill
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x & 1 == 1 {
                a.set(i);
            }
            if x & 2 == 2 {
                b.set(i);
            }
            if x & 4 == 4 {
                c.set(i);
            }
        }
        let naive_and = (0..n).filter(|&i| a.get(i) && b.get(i)).count() as u64;
        let naive_and_not = (0..n).filter(|&i| a.get(i) && !b.get(i)).count() as u64;
        let naive_and3 = (0..n).filter(|&i| a.get(i) && b.get(i) && c.get(i)).count() as u64;
        assert_eq!(a.and_popcount(&b), naive_and);
        assert_eq!(a.and_not_popcount(&b), naive_and_not);
        assert_eq!(a.and3_popcount(&b, &c), naive_and3);
        assert_eq!(a.and_popcount(&b) + a.and_not_popcount(&b), a.count_ones());
    }

    #[test]
    fn intersect_union_in_place() {
        let a = Bitset::from_bools(&[true, true, false, false, true]);
        let b = Bitset::from_bools(&[true, false, true, false, true]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.ones().collect::<Vec<_>>(), vec![0, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        assert_eq!(a.and(&b), i);
    }

    #[test]
    fn set_range_word_boundaries() {
        for (start, end) in [
            (0, 0),
            (0, 1),
            (3, 61),
            (60, 70),
            (0, 64),
            (64, 128),
            (1, 130),
        ] {
            let mut b = Bitset::new(130);
            b.set_range(start, end);
            let expect: Vec<usize> = (start..end).collect();
            assert_eq!(b.ones().collect::<Vec<_>>(), expect, "range {start}..{end}");
            assert_eq!(b.count_ones(), (end - start) as u64);
        }
    }

    #[test]
    fn ones_iterates_ascending() {
        let mut b = Bitset::new(300);
        for i in [0usize, 63, 64, 65, 127, 128, 200, 299] {
            b.set(i);
        }
        assert_eq!(
            b.ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 127, 128, 200, 299]
        );
    }

    #[test]
    fn heap_bytes_tracks_words() {
        assert_eq!(Bitset::new(0).heap_bytes(), 0);
        assert_eq!(Bitset::new(64).heap_bytes(), 8);
        assert_eq!(Bitset::new(65).heap_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Bitset::new(10).and_popcount(&Bitset::new(11));
    }
}
