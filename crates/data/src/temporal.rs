//! Temporal relations (paper §2.2).
//!
//! A temporal relation is `(D, T)` where `T` is a *partial* function
//! associating a timestamp `T(t[A])` with the `A`-attribute of a tuple `t`.
//! Different attributes of the same tuple may carry different timestamps
//! (they may come from different sources). When both `T(t1[A])` and
//! `T(t2[A])` are defined and `T(t2[A]) ≤ T(t1[A])`, then `t2 ⪯A t1` — the
//! chase seeds its `[A]⪯` orders (`Γ⪯`) from these.

use crate::ids::{AttrId, TupleId};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Timestamp: seconds since the Unix epoch. Orderable; `Timestamp(0)` is a
/// valid early time (we never treat 0 as "missing" — missing means *absent
/// from the partial map*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    pub fn from_days(days: i32) -> Self {
        Timestamp(i64::from(days) * 86_400)
    }
}

/// Partial per-cell timestamp function `T` for one relation.
///
/// Serialized as a *sorted* `[(tid, attr, ts), ...]` entry list rather
/// than a map: JSON cannot key objects by tuples, and the sort makes the
/// encoding deterministic — the chase checkpoints whole databases and
/// compares serialized repairs byte-for-byte across runs.
#[derive(Debug, Clone, Default)]
pub struct CellTimestamps {
    map: FxHashMap<(TupleId, AttrId), Timestamp>,
}

impl Serialize for CellTimestamps {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(TupleId, AttrId, Timestamp)> =
            self.map.iter().map(|(&(t, a), &ts)| (t, a, ts)).collect();
        entries.sort_unstable_by_key(|&(t, a, _)| (t, a));
        entries.serialize(s)
    }
}

impl<'de> Deserialize<'de> for CellTimestamps {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(TupleId, AttrId, Timestamp)>::deserialize(d)?;
        let mut map = FxHashMap::default();
        for (t, a, ts) in entries {
            map.insert((t, a), ts);
        }
        Ok(CellTimestamps { map })
    }
}

impl CellTimestamps {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `T(t[A]) = ts`.
    pub fn set(&mut self, tid: TupleId, attr: AttrId, ts: Timestamp) {
        self.map.insert((tid, attr), ts);
    }

    /// Look up `T(t[A])`; `None` when the partial function is undefined.
    pub fn get(&self, tid: TupleId, attr: AttrId) -> Option<Timestamp> {
        self.map.get(&(tid, attr)).copied()
    }

    /// Number of timestamped cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all `((tid, attr), ts)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, AttrId, Timestamp)> + '_ {
        self.map.iter().map(|(&(t, a), &ts)| (t, a, ts))
    }

    /// All pairs `(t2, t1)` with `T(t2[A]) ≤ T(t1[A])` for a given attribute
    /// — the initial temporal order `⪯A` induced by the timestamps. Only
    /// *comparable* (both-defined) pairs are produced; the order stays
    /// partial.
    pub fn induced_order(&self, attr: AttrId) -> Vec<(TupleId, TupleId)> {
        let mut stamped: Vec<(TupleId, Timestamp)> = self
            .map
            .iter()
            .filter(|((_, a), _)| *a == attr)
            .map(|(&(t, _), &ts)| (t, ts))
            .collect();
        stamped.sort_by_key(|&(t, ts)| (ts, t));
        let mut out = Vec::new();
        for i in 0..stamped.len() {
            for j in (i + 1)..stamped.len() {
                // stamped[i].ts <= stamped[j].ts  =>  t_i ⪯A t_j
                out.push((stamped[i].0, stamped[j].0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_function_semantics() {
        let mut t = CellTimestamps::new();
        assert!(t.is_empty());
        t.set(TupleId(0), AttrId(1), Timestamp(100));
        assert_eq!(t.get(TupleId(0), AttrId(1)), Some(Timestamp(100)));
        assert_eq!(t.get(TupleId(0), AttrId(2)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn induced_order_is_chronological() {
        let mut t = CellTimestamps::new();
        t.set(TupleId(0), AttrId(0), Timestamp(50));
        t.set(TupleId(1), AttrId(0), Timestamp(10));
        t.set(TupleId(2), AttrId(0), Timestamp(99));
        t.set(TupleId(3), AttrId(1), Timestamp(1)); // other attribute
        let ord = t.induced_order(AttrId(0));
        // t1 (ts 10) ⪯ t0 (ts 50) ⪯ t2 (ts 99): 3 comparable pairs
        assert_eq!(ord.len(), 3);
        assert!(ord.contains(&(TupleId(1), TupleId(0))));
        assert!(ord.contains(&(TupleId(1), TupleId(2))));
        assert!(ord.contains(&(TupleId(0), TupleId(2))));
    }

    #[test]
    fn from_days() {
        assert_eq!(Timestamp::from_days(1), Timestamp(86_400));
    }

    #[test]
    fn json_round_trip_is_sorted_and_lossless() {
        let mut t = CellTimestamps::new();
        t.set(TupleId(5), AttrId(1), Timestamp(50));
        t.set(TupleId(0), AttrId(2), Timestamp(10));
        t.set(TupleId(0), AttrId(1), Timestamp(99));
        let js = serde_json::to_string(&t).unwrap();
        // deterministic: entries sorted by (tid, attr)
        assert_eq!(js, "[[0,1,99],[0,2,10],[5,1,50]]");
        let back: CellTimestamps = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(TupleId(5), AttrId(1)), Some(Timestamp(50)));
        assert_eq!(back.get(TupleId(0), AttrId(2)), Some(Timestamp(10)));
    }
}
