//! Append-only string dictionaries for the columnar plane.
//!
//! String columns store dense `u32` codes; the payload `Arc<str>`s live in
//! one per-column [`Dictionary`]. Interning is append-only within a column
//! snapshot: updating a cell may strand the old code, and a full rebuild
//! (re-encoding) of the owning [`crate::column::ColumnSet`] compacts the
//! dictionary back to the live value set — property-tested in
//! `tests/columnar_equivalence.rs`.

use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A per-column string dictionary: code ↔ interned payload.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    lookup: FxHashMap<Arc<str>, u32>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern a string, returning its code. Existing payloads share the
    /// caller's `Arc` allocation, new payloads clone the handle.
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(code) = self.lookup.get(s.as_ref()) {
            return *code;
        }
        let code = self.values.len() as u32;
        self.values.push(Arc::clone(s));
        self.lookup.insert(Arc::clone(s), code);
        code
    }

    /// Code of an already-interned string, if any. Equality kernels use
    /// this: a constant that never reaches the dictionary matches nothing.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Payload of a code. Codes come from [`Dictionary::intern`] on the same
    /// dictionary, so the index is always in range.
    #[inline]
    pub fn value(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    /// Iterate `(code, payload)` pairs — the per-code satisfaction tables
    /// of the string kernels evaluate each distinct value exactly once.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Arc<str>)> {
        self.values.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Approximate heap footprint (payload bytes + tables), for the
    /// bytes-touched accounting of the columnar bench panel.
    pub fn heap_bytes(&self) -> usize {
        let payloads: usize = self.values.iter().map(|s| s.len()).sum();
        payloads
            + self.values.len() * std::mem::size_of::<Arc<str>>()
            + self.lookup.len() * (std::mem::size_of::<Arc<str>>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a: Arc<str> = Arc::from("alpha");
        let b: Arc<str> = Arc::from("beta");
        assert_eq!(d.intern(&a), 0);
        assert_eq!(d.intern(&b), 1);
        assert_eq!(d.intern(&Arc::from("alpha")), 0, "re-intern reuses code");
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1).as_ref(), "beta");
        assert_eq!(d.code("alpha"), Some(0));
        assert_eq!(d.code("missing"), None);
    }

    #[test]
    fn interned_payloads_share_allocation() {
        let mut d = Dictionary::new();
        let a: Arc<str> = Arc::from("shared");
        d.intern(&a);
        assert!(Arc::ptr_eq(
            d.value(0),
            &d.lookup.get_key_value("shared").unwrap().0.clone()
        ));
    }

    #[test]
    fn iter_yields_codes_in_order() {
        let mut d = Dictionary::new();
        for s in ["x", "y", "z"] {
            d.intern(&Arc::from(s));
        }
        let got: Vec<(u32, String)> = d.iter().map(|(c, s)| (c, s.to_string())).collect();
        assert_eq!(got, vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]);
    }
}
