//! Minimal CSV reader/writer (RFC-4180-ish quoting), implemented in-tree so
//! the workspace stays within the approved dependency set.
//!
//! Crystal "loads raw data … after ETL" (paper §5.1); this module is the ETL
//! edge: it parses fields according to the relation schema, turns empty
//! fields into `Null`, and interns strings through [`crate::database::Interner`].

use crate::database::Interner;
use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::value::Value;
use std::io::{self, BufRead, Write};

/// Split one CSV record into fields, honoring double quotes.
pub fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Quote a field if it needs it.
pub fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

/// Read a relation from CSV. The first record must be a header matching the
/// schema's attribute names (order-sensitive). Returns the populated
/// relation.
pub fn read_relation<R: BufRead>(
    schema: RelationSchema,
    reader: R,
    interner: &mut Interner,
) -> io::Result<Relation> {
    let mut rel = Relation::new(schema);
    // Reuse one line buffer (perf-book: workhorse String in read loops).
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Ok(rel),
    };
    let header_fields = split_record(&header);
    let expected: Vec<&str> = rel.schema.attrs.iter().map(|a| a.name.as_str()).collect();
    if header_fields != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "CSV header mismatch for {}: got {header_fields:?}, expected {expected:?}",
                rel.schema.name
            ),
        ));
    }
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line);
        if fields.len() != rel.schema.arity() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "CSV arity mismatch in {}: {} fields, expected {}",
                    rel.schema.name,
                    fields.len(),
                    rel.schema.arity()
                ),
            ));
        }
        let values: Vec<Value> = fields
            .iter()
            .zip(rel.schema.attrs.clone())
            .map(|(f, a)| interner.intern_value(Value::parse_as(f, a.ty)))
            .collect();
        rel.insert_row(values)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    Ok(rel)
}

/// Write a relation as CSV (header + live tuples).
pub fn write_relation<W: Write>(rel: &Relation, mut w: W) -> io::Result<()> {
    let header: Vec<String> = rel
        .schema
        .attrs
        .iter()
        .map(|a| quote_field(&a.name))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for t in rel.iter() {
        let row: Vec<String> = t.values.iter().map(|v| quote_field(&v.render())).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> RelationSchema {
        RelationSchema::of("T", &[("name", AttrType::Str), ("n", AttrType::Int)])
    }

    #[test]
    fn split_handles_quotes_and_commas() {
        assert_eq!(split_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_record(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(
            split_record(r#""he said ""hi""",x"#),
            vec![r#"he said "hi""#, "x"]
        );
        assert_eq!(split_record("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn quote_roundtrip() {
        for s in ["plain", "with,comma", "with\"quote", "with\nnewline"] {
            let quoted = quote_field(s);
            assert_eq!(split_record(&quoted), vec![s.to_owned()]);
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let csv = "name,n\nApple,15\n\"Huawei, Inc\",11\nnobody,\n";
        let mut interner = Interner::new();
        let rel = read_relation(schema(), csv.as_bytes(), &mut interner).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(
            rel.cell(crate::ids::TupleId(1), crate::ids::AttrId(0)),
            Some(&Value::str("Huawei, Inc"))
        );
        assert_eq!(
            rel.cell(crate::ids::TupleId(2), crate::ids::AttrId(1)),
            Some(&Value::Null)
        );
        let mut out = Vec::new();
        write_relation(&rel, &mut out).unwrap();
        let rel2 = read_relation(schema(), out.as_slice(), &mut interner).unwrap();
        assert_eq!(rel2.len(), 3);
        assert_eq!(
            rel2.cell(crate::ids::TupleId(1), crate::ids::AttrId(0)),
            Some(&Value::str("Huawei, Inc"))
        );
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut interner = Interner::new();
        let err = read_relation(schema(), "x,y\n".as_bytes(), &mut interner).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut interner = Interner::new();
        let err = read_relation(schema(), "name,n\na\n".as_bytes(), &mut interner).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
