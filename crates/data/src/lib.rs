//! # rock-data — relational substrate for Rock
//!
//! This crate implements the data model that every other Rock crate builds
//! on: typed [`Value`]s, relation and database [`schema`]s, [`Tuple`]s that
//! carry an entity id (`EID`, following Codd's extended relational model as
//! adopted by the paper §2), [`Relation`]s with optional *per-cell
//! timestamps* (temporal relations, §2.2), whole [`Database`] instances,
//! update batches (ΔD) for the incremental modes, column statistics used by
//! the discovery/optimizer layers, and a small CSV reader/writer.
//!
//! Design notes (see DESIGN.md §3):
//! * `Value` is a compact enum with a **total order** (floats compare via
//!   `total_cmp`) so that values can live in sorted indexes and B-tree maps.
//! * Strings are reference-counted (`Arc<str>`) and interned per database,
//!   which keeps tuples cheap to clone — the chase clones tuples liberally.
//! * Every tuple has a stable [`TupleId`] and an [`Eid`]; the fix store in
//!   `rock-chase` keys its `[EID]=` / `[EID.A]=` structures by these ids.

pub mod bitset;
pub mod csvio;
pub mod database;
pub mod ids;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod temporal;
pub mod tuple;
pub mod update;
pub mod value;

pub use bitset::Bitset;
pub use database::Database;
pub use ids::{AttrId, CellRef, Eid, GlobalTid, RelId, TupleId};
pub use relation::Relation;
pub use schema::{AttrType, Attribute, DatabaseSchema, RelationSchema};
pub use stats::{ColumnStats, TableStats};
pub use temporal::Timestamp;
pub use tuple::Tuple;
pub use update::{Delta, Update};
pub use value::Value;
