//! # rock-data — relational substrate for Rock
//!
//! This crate implements the data model that every other Rock crate builds
//! on: typed [`Value`]s, relation and database [`schema`]s, [`Tuple`]s that
//! carry an entity id (`EID`, following Codd's extended relational model as
//! adopted by the paper §2), [`Relation`]s with optional *per-cell
//! timestamps* (temporal relations, §2.2), whole [`Database`] instances,
//! update batches (ΔD) for the incremental modes, column statistics used by
//! the discovery/optimizer layers, and a small CSV reader/writer.
//!
//! Design notes (see DESIGN.md §3):
//! * `Value` is a compact enum with a **total order** (floats compare via
//!   `total_cmp`) so that values can live in sorted indexes and B-tree maps.
//! * Strings are reference-counted (`Arc<str>`) and interned per database,
//!   which keeps tuples cheap to clone — the chase clones tuples liberally.
//! * Every tuple has a stable [`TupleId`] and an [`Eid`]; the fix store in
//!   `rock-chase` keys its `[EID]=` / `[EID.A]=` structures by these ids.

// Every evaluation hot path sits on this crate; a panic here takes down a
// whole chase round (or a Crystal worker), so non-test code must surface
// errors as values — same gate as rock-crystal, rock-rees, and rock-chase.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bitset;
pub mod column;
pub mod csvio;
pub mod database;
pub mod dict;
pub mod error;
pub mod ids;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod temporal;
pub mod tuple;
pub mod update;
pub mod value;

pub use bitset::Bitset;
pub use column::{row_heap_bytes, Column, ColumnData, ColumnSet, DataConfig, PredOp};
pub use database::Database;
pub use dict::Dictionary;
pub use error::DataError;
pub use ids::{AttrId, CellRef, Eid, GlobalTid, RelId, TupleId};
pub use relation::Relation;
pub use schema::{AttrType, Attribute, DatabaseSchema, RelationSchema};
pub use stats::{ColumnStats, TableStats};
pub use temporal::Timestamp;
pub use tuple::Tuple;
pub use update::{check_arities, Delta, Update};
pub use value::{cmp_int_float, Value};
