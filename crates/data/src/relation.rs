//! Relations: a schema, a set of tuples, and (optionally) per-cell
//! timestamps making the relation *temporal* (paper §2.2).

use crate::column::{ColumnCache, ColumnSet};
use crate::error::DataError;
use crate::ids::{AttrId, Eid, TupleId};
use crate::schema::RelationSchema;
use crate::temporal::{CellTimestamps, Timestamp};
use crate::tuple::Tuple;
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One relation instance `D` of schema `R`, optionally temporal `(D, T)`.
///
/// Tuples are stored densely in insertion order; deletion marks a slot as a
/// tombstone so [`TupleId`]s stay stable for the incremental algorithms.
///
/// Rows are the source of truth; the columnar image ([`Relation::columns`])
/// is a versioned cache that evaluation hot paths use for vectorized
/// predicate kernels. The cache is serde-skipped (persisted bytes are
/// identical with or without it) and cloned relations start with a cold
/// cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    pub schema: RelationSchema,
    tuples: Vec<Option<Tuple>>,
    live: usize,
    /// Partial timestamp function `T`.
    pub timestamps: CellTimestamps,
    #[serde(skip, default)]
    columns: ColumnCache,
}

impl Relation {
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            live: 0,
            timestamps: CellTimestamps::new(),
            columns: ColumnCache::default(),
        }
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots including tombstones (exclusive upper bound on TupleIds).
    pub fn capacity(&self) -> usize {
        self.tuples.len()
    }

    /// Insert a tuple with a fresh id and the given entity id; returns the
    /// assigned [`TupleId`], or [`DataError::ArityMismatch`] when the row
    /// does not match the schema.
    pub fn insert(&mut self, eid: Eid, values: Vec<Value>) -> Result<TupleId, DataError> {
        if values.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        let tid = TupleId(self.tuples.len() as u32);
        self.tuples.push(Some(Tuple::new(tid, eid, values)));
        self.live += 1;
        self.columns.invalidate();
        Ok(tid)
    }

    /// Insert and auto-assign an entity id equal to the tuple id (common for
    /// workloads where each row initially claims to be its own entity).
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<TupleId, DataError> {
        let eid = Eid(self.tuples.len() as u32);
        self.insert(eid, values)
    }

    /// Delete a tuple; returns whether it was live.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        if let Some(slot) = self.tuples.get_mut(tid.index()) {
            if slot.is_some() {
                *slot = None;
                self.live -= 1;
                self.columns.invalidate();
                return true;
            }
        }
        false
    }

    /// Get a live tuple.
    #[inline]
    pub fn get(&self, tid: TupleId) -> Option<&Tuple> {
        self.tuples.get(tid.index()).and_then(|t| t.as_ref())
    }

    /// Mutable access to a live tuple. Invalidates the columnar cache
    /// pessimistically (the caller may rewrite any cell); prefer
    /// [`Relation::set_cell`], which writes through instead.
    #[inline]
    pub fn get_mut(&mut self, tid: TupleId) -> Option<&mut Tuple> {
        self.columns.invalidate();
        self.tuples.get_mut(tid.index()).and_then(|t| t.as_mut())
    }

    /// A cell value, if the tuple is live.
    pub fn cell(&self, tid: TupleId, attr: AttrId) -> Option<&Value> {
        self.get(tid).map(|t| t.get(attr))
    }

    /// Overwrite a cell (used when materializing fixes back into data).
    /// Writes through to the cached columnar image when possible, so the
    /// chase's commit path does not force a rebuild per fix.
    pub fn set_cell(&mut self, tid: TupleId, attr: AttrId, v: Value) -> bool {
        match self.tuples.get_mut(tid.index()).and_then(|t| t.as_mut()) {
            Some(t) => {
                *t.get_mut(attr) = v.clone();
                self.columns.write_cell(tid.index(), attr, &v);
                true
            }
            None => false,
        }
    }

    /// The columnar image of this relation, rebuilding it from the rows if
    /// stale. Cheap when cached: an `Arc` clone.
    pub fn columns(&self) -> Arc<ColumnSet> {
        self.columns.get_or_build(self)
    }

    /// Record a cell timestamp `T(t[A])`.
    pub fn set_timestamp(&mut self, tid: TupleId, attr: AttrId, ts: Timestamp) {
        self.timestamps.set(tid, attr, ts);
    }

    /// Iterate live tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().filter_map(|t| t.as_ref())
    }

    /// Iterate live tuple ids.
    pub fn tids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| TupleId(i as u32))
    }

    /// Build an equality index `value -> tuple ids` over one attribute.
    /// Null cells are skipped (null never satisfies an equality predicate).
    pub fn index_on(&self, attr: AttrId) -> FxHashMap<Value, Vec<TupleId>> {
        let mut idx: FxHashMap<Value, Vec<TupleId>> = FxHashMap::default();
        for t in self.iter() {
            let v = t.get(attr);
            if !v.is_null() {
                idx.entry(v.clone()).or_default().push(t.tid);
            }
        }
        idx
    }

    /// Distinct non-null values of an attribute, sorted.
    pub fn active_domain(&self, attr: AttrId) -> Vec<Value> {
        let mut dom: Vec<Value> = self.index_on(attr).into_keys().collect();
        dom.sort();
        dom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn rel() -> Relation {
        let schema = RelationSchema::of(
            "Store",
            &[("name", AttrType::Str), ("sales", AttrType::Int)],
        );
        Relation::new(schema)
    }

    #[test]
    fn insert_get_delete() {
        let mut r = rel();
        let t0 = r
            .insert_row(vec![Value::str("Apple"), Value::Int(15)])
            .unwrap();
        let t1 = r
            .insert_row(vec![Value::str("Huawei"), Value::Int(11)])
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(t0, AttrId(0)), Some(&Value::str("Apple")));
        assert!(r.delete(t0));
        assert!(!r.delete(t0));
        assert_eq!(r.len(), 1);
        assert!(r.get(t0).is_none());
        // ids stay stable after deletion
        assert_eq!(r.get(t1).unwrap().get(AttrId(0)), &Value::str("Huawei"));
    }

    #[test]
    fn arity_checked() {
        let err = rel().insert_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            crate::error::DataError::ArityMismatch {
                relation: "Store".into(),
                expected: 2,
                got: 1,
            }
        );
        assert!(err.to_string().contains("arity mismatch"));
    }

    #[test]
    fn index_skips_nulls() {
        let mut r = rel();
        r.insert_row(vec![Value::str("A"), Value::Null]).unwrap();
        r.insert_row(vec![Value::str("A"), Value::Int(5)]).unwrap();
        r.insert_row(vec![Value::str("B"), Value::Int(5)]).unwrap();
        let by_name = r.index_on(AttrId(0));
        assert_eq!(by_name[&Value::str("A")].len(), 2);
        let by_sales = r.index_on(AttrId(1));
        assert_eq!(by_sales.len(), 1);
        assert_eq!(by_sales[&Value::Int(5)].len(), 2);
    }

    #[test]
    fn active_domain_sorted_distinct() {
        let mut r = rel();
        r.insert_row(vec![Value::str("B"), Value::Int(2)]).unwrap();
        r.insert_row(vec![Value::str("A"), Value::Int(1)]).unwrap();
        r.insert_row(vec![Value::str("B"), Value::Null]).unwrap();
        assert_eq!(
            r.active_domain(AttrId(0)),
            vec![Value::str("A"), Value::str("B")]
        );
    }

    #[test]
    fn set_cell_and_timestamp() {
        let mut r = rel();
        let t = r.insert_row(vec![Value::str("A"), Value::Int(1)]).unwrap();
        assert!(r.set_cell(t, AttrId(1), Value::Int(9)));
        assert_eq!(r.cell(t, AttrId(1)), Some(&Value::Int(9)));
        r.set_timestamp(t, AttrId(1), Timestamp(42));
        assert_eq!(r.timestamps.get(t, AttrId(1)), Some(Timestamp(42)));
        assert!(!r.set_cell(TupleId(99), AttrId(0), Value::Null));
    }
}
