//! Database instances `D = (D1, …, Dm)` and string interning.

use crate::error::DataError;
use crate::ids::{AttrId, RelId, TupleId};
use crate::relation::Relation;
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::update::{Delta, Update};
use crate::value::Value;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A database instance over a [`DatabaseSchema`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    relations: Vec<Relation>,
}

impl Database {
    /// Create an empty instance of the given schema.
    pub fn new(schema: &DatabaseSchema) -> Self {
        Database {
            relations: schema
                .relations
                .iter()
                .cloned()
                .map(Relation::new)
                .collect(),
        }
    }

    /// Build from already-populated relations.
    pub fn from_relations(relations: Vec<Relation>) -> Self {
        Database { relations }
    }

    /// The schema this instance conforms to (reconstructed view).
    pub fn schema(&self) -> DatabaseSchema {
        DatabaseSchema::new(self.relations.iter().map(|r| r.schema.clone()).collect())
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total live tuples across relations (the paper quotes dataset sizes in
    /// tuples, e.g. "1.5 billion tuples" for Bank).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    #[inline]
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    #[inline]
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        &mut self.relations[id.index()]
    }

    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|r| r.schema.name == name)
            .map(|i| RelId(i as u16))
    }

    pub fn by_name(&self, name: &str) -> Option<&Relation> {
        self.rel_id(name).map(|id| self.relation(id))
    }

    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.rel_id(name).map(|id| self.relation_mut(id))
    }

    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u16), r))
    }

    /// A cell value.
    pub fn cell(&self, rel: RelId, tid: TupleId, attr: AttrId) -> Option<&Value> {
        self.relation(rel).cell(tid, attr)
    }

    /// Apply a batch of updates ΔD in order; returns ids of inserted tuples.
    ///
    /// Atomic with respect to malformed input: every `Insert` is
    /// arity-checked against its target schema *before* any update is
    /// applied ([`crate::update::check_arities`]), so a rejected delta
    /// leaves the instance untouched.
    pub fn apply(&mut self, delta: &Delta) -> Result<Vec<TupleId>, DataError> {
        crate::update::check_arities(delta, |rel| &self.relation(rel).schema)?;
        let mut inserted = Vec::new();
        for u in &delta.updates {
            match u {
                Update::Insert { rel, eid, values } => {
                    inserted.push(self.relation_mut(*rel).insert(*eid, values.clone())?);
                }
                Update::Delete { rel, tid } => {
                    self.relation_mut(*rel).delete(*tid);
                }
                Update::SetCell {
                    rel,
                    tid,
                    attr,
                    value,
                } => {
                    self.relation_mut(*rel).set_cell(*tid, *attr, value.clone());
                }
            }
        }
        Ok(inserted)
    }

    /// Fraction of null cells over all live tuples (completeness metric,
    /// paper §4.1 "data quality assessment").
    pub fn null_fraction(&self) -> f64 {
        let mut nulls = 0usize;
        let mut cells = 0usize;
        for r in &self.relations {
            for t in r.iter() {
                nulls += t.null_count();
                cells += t.values.len();
            }
        }
        if cells == 0 {
            0.0
        } else {
            nulls as f64 / cells as f64
        }
    }
}

/// String interner: deduplicates string payloads so equal strings share one
/// `Arc<str>` allocation (Rust Performance Book: `Rc`/`Arc` sharing to
/// reduce memory; Crystal's preprocessing "transforms attribute values to
/// unique ids", paper §5.1 — interning is the in-memory analogue).
#[derive(Debug, Default)]
pub struct Interner {
    pool: FxHashMap<Arc<str>, ()>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning a shared handle.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some((k, _)) = self.pool.get_key_value(s) {
            return Arc::clone(k);
        }
        let arc: Arc<str> = Arc::from(s);
        self.pool.insert(Arc::clone(&arc), ());
        arc
    }

    /// Intern the payload of a value if it is a string.
    pub fn intern_value(&mut self, v: Value) -> Value {
        match v {
            Value::Str(s) => Value::Str(self.intern(&s)),
            other => other,
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

/// Helper for building a relation schema + instance in one go (tests and
/// examples lean on this heavily).
pub struct RelationBuilder {
    rel: Relation,
}

impl RelationBuilder {
    pub fn new(schema: RelationSchema) -> Self {
        RelationBuilder {
            rel: Relation::new(schema),
        }
    }

    pub fn row(mut self, values: Vec<Value>) -> Self {
        // The builder keeps its chaining signature; a wrong-arity row in a
        // hand-written fixture is a programming error, so surface it loudly.
        match self.rel.insert_row(values) {
            Ok(_) => self,
            Err(e) => panic!("RelationBuilder::row: {e}"),
        }
    }

    pub fn build(self) -> Relation {
        self.rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Eid;
    use crate::schema::AttrType;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![
            RelationSchema::of("A", &[("x", AttrType::Int)]),
            RelationSchema::of("B", &[("y", AttrType::Str)]),
        ]);
        Database::new(&schema)
    }

    #[test]
    fn relations_addressable_by_name_and_id() {
        let mut d = db();
        d.by_name_mut("A")
            .unwrap()
            .insert_row(vec![Value::Int(1)])
            .unwrap();
        assert_eq!(d.total_tuples(), 1);
        assert_eq!(d.rel_id("B"), Some(RelId(1)));
        assert!(d.by_name("C").is_none());
    }

    #[test]
    fn apply_delta() {
        let mut d = db();
        let rel_a = d.rel_id("A").unwrap();
        let t = d
            .relation_mut(rel_a)
            .insert_row(vec![Value::Int(1)])
            .unwrap();
        let delta = Delta::new(vec![
            Update::Insert {
                rel: rel_a,
                eid: Eid(9),
                values: vec![Value::Int(2)],
            },
            Update::SetCell {
                rel: rel_a,
                tid: t,
                attr: AttrId(0),
                value: Value::Int(7),
            },
        ]);
        let ins = d.apply(&delta).unwrap();
        assert_eq!(ins.len(), 1);
        assert_eq!(d.cell(rel_a, t, AttrId(0)), Some(&Value::Int(7)));
        assert_eq!(d.relation(rel_a).len(), 2);
    }

    #[test]
    fn null_fraction() {
        let mut d = db();
        let a = d.rel_id("A").unwrap();
        d.relation_mut(a).insert_row(vec![Value::Null]).unwrap();
        d.relation_mut(a).insert_row(vec![Value::Int(1)]).unwrap();
        assert!((d.null_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn apply_rejects_malformed_delta_atomically() {
        let mut d = db();
        let rel_a = d.rel_id("A").unwrap();
        let delta = Delta::new(vec![
            Update::Insert {
                rel: rel_a,
                eid: Eid(0),
                values: vec![Value::Int(1)],
            },
            Update::Insert {
                rel: rel_a,
                eid: Eid(1),
                values: vec![Value::Int(2), Value::Int(3)], // wrong arity
            },
        ]);
        let err = d.apply(&delta).unwrap_err();
        assert!(err.to_string().contains("arity mismatch"), "{err}");
        assert_eq!(d.total_tuples(), 0, "rejected delta must not apply at all");
    }

    #[test]
    fn interner_shares_allocations() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
        let v = i.intern_value(Value::str("hello"));
        if let Value::Str(s) = v {
            assert!(Arc::ptr_eq(&a, &s));
        } else {
            panic!("expected Str");
        }
    }
}
