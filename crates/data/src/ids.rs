//! Newtype identifiers used throughout the system.
//!
//! Kept as `u32` where possible (Rust Performance Book: smaller integers for
//! indices shrink hot types); a database of up to 4B tuples per relation is
//! far beyond the laptop-scale reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw index view.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                $name(v as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a relation (table) within a [`crate::DatabaseSchema`].
    RelId, u16, "R"
);
id_type!(
    /// Identifies an attribute (column) within one relation schema.
    AttrId, u16, "A"
);
id_type!(
    /// Identifies a tuple within one relation; stable across updates
    /// (deletions leave holes rather than renumbering).
    TupleId, u32, "t"
);
id_type!(
    /// Entity id: which real-world entity a tuple represents (paper §2,
    /// following Codd's EID attribute). Two tuples with different `Eid`s may
    /// be *identified* by ER rules; the fix store's `[EID]=` classes track
    /// that.
    Eid, u32, "e"
);

/// Globally unique tuple address: (relation, tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalTid {
    pub rel: RelId,
    pub tid: TupleId,
}

impl GlobalTid {
    pub fn new(rel: RelId, tid: TupleId) -> Self {
        GlobalTid { rel, tid }
    }
}

impl fmt::Display for GlobalTid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.rel, self.tid)
    }
}

/// Globally unique cell address: (relation, tuple, attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellRef {
    pub rel: RelId,
    pub tid: TupleId,
    pub attr: AttrId,
}

impl CellRef {
    pub fn new(rel: RelId, tid: TupleId, attr: AttrId) -> Self {
        CellRef { rel, tid, attr }
    }

    pub fn tuple(&self) -> GlobalTid {
        GlobalTid::new(self.rel, self.tid)
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.rel, self.tid, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RelId(3).to_string(), "R3");
        assert_eq!(TupleId(12).to_string(), "t12");
        assert_eq!(Eid(7).to_string(), "e7");
        assert_eq!(
            CellRef::new(RelId(1), TupleId(2), AttrId(3)).to_string(),
            "R1.t2.A3"
        );
    }

    #[test]
    fn conversions() {
        let t: TupleId = 5usize.into();
        assert_eq!(t.index(), 5);
        let r: RelId = 2u16.into();
        assert_eq!(r, RelId(2));
    }

    #[test]
    fn cellref_tuple_projection() {
        let c = CellRef::new(RelId(1), TupleId(9), AttrId(0));
        assert_eq!(c.tuple(), GlobalTid::new(RelId(1), TupleId(9)));
    }
}
