//! Tuples: a fixed-arity row of [`Value`]s plus an entity id.

use crate::ids::{AttrId, Eid, TupleId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One tuple of a relation.
///
/// Per the paper (§2, following [21]) every tuple carries an `EID`
/// identifying the real-world entity it represents. ER rules may later prove
/// that two distinct `Eid`s denote the same entity; that knowledge lives in
/// the chase's fix store, not here — the tuple keeps its original id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable id within the owning relation.
    pub tid: TupleId,
    /// Entity id this tuple claims to represent.
    pub eid: Eid,
    /// Attribute values, indexed by [`AttrId`].
    pub values: Vec<Value>,
}

impl Tuple {
    pub fn new(tid: TupleId, eid: Eid, values: Vec<Value>) -> Self {
        Tuple { tid, eid, values }
    }

    /// Value of attribute `A`.
    #[inline]
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// Mutable value of attribute `A` (used when materializing fixes).
    #[inline]
    pub fn get_mut(&mut self, attr: AttrId) -> &mut Value {
        &mut self.values[attr.index()]
    }

    /// Project a vector of attributes `t[Ā]` (ML predicates take vectors of
    /// pairwise-compatible attributes, paper §2.1(e)).
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.get(*a).clone()).collect()
    }

    /// Number of null cells (quality metric input).
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }

    /// Indices of attributes whose value is non-null ("validated values"
    /// feed `Md(t[Ā], B)` in MI rules, paper §2.3).
    pub fn non_null_attrs(&self) -> Vec<AttrId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_null())
            .map(|(i, _)| AttrId(i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            TupleId(0),
            Eid(1),
            vec![Value::str("a"), Value::Null, Value::Int(3)],
        )
    }

    #[test]
    fn get_and_project() {
        let t = t();
        assert_eq!(t.get(AttrId(2)), &Value::Int(3));
        assert_eq!(
            t.project(&[AttrId(2), AttrId(0)]),
            vec![Value::Int(3), Value::str("a")]
        );
    }

    #[test]
    fn null_accounting() {
        let t = t();
        assert_eq!(t.null_count(), 1);
        assert_eq!(t.non_null_attrs(), vec![AttrId(0), AttrId(2)]);
    }

    #[test]
    fn mutate_cell() {
        let mut t = t();
        *t.get_mut(AttrId(1)) = Value::Bool(true);
        assert_eq!(t.get(AttrId(1)), &Value::Bool(true));
    }
}
