//! Concurrency regression test for the `ColumnCache` version protocol:
//! concurrent `write_cell` (under exclusive access) and snapshot rebuilds
//! (under shared access) must never let a reader observe a columnar image
//! that disagrees with the row store it was built from.
//!
//! The bounded model-checking certificate for this protocol lives in
//! `rock-crystal/tests/model_protocols.rs` (`column-cache-version`); this
//! test drives the real implementation — raw `std` threads stand in for
//! loom, which the build does not carry — so the Arc-uniqueness
//! write-through, the invalidation path, and racing rebuilds all execute
//! for real under contention.

use std::sync::RwLock;

use rock_data::{AttrType, PredOp, Relation, RelationSchema, TupleId, Value};

const ROWS: usize = 64;
const WRITERS: usize = 2;
const READERS: usize = 4;
const OPS: usize = 300;

fn build_relation() -> Relation {
    let mut rel = Relation::new(RelationSchema::of(
        "T",
        &[("n", AttrType::Int), ("name", AttrType::Str)],
    ));
    for i in 0..ROWS {
        rel.insert_row(vec![Value::Int(i as i64), Value::str(format!("row-{i}"))])
            .unwrap();
    }
    rel
}

/// Under a read lock the rows cannot move, so the snapshot — whether it
/// was served from cache, write-through-updated, or just rebuilt by a
/// racing reader — must agree cell-for-cell with the row store.
fn assert_snapshot_consistent(rel: &Relation) {
    let snap = rel.columns();
    for t in rel.iter() {
        for (attr, _) in rel.schema.iter_attrs() {
            assert_eq!(
                snap.value_at(attr, t.tid.index()),
                *t.get(attr),
                "snapshot diverged from rows at tid {:?} attr {:?}",
                t.tid,
                attr
            );
        }
    }
}

#[test]
fn concurrent_write_cell_and_rebuild_never_serve_stale_cells() {
    let rel = RwLock::new(build_relation());
    let int_attr = rel.read().unwrap().schema.iter_attrs().next().unwrap().0;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let rel = &rel;
            scope.spawn(move || {
                for op in 0..OPS {
                    let mut guard = rel.write().unwrap();
                    let slot = (op * WRITERS + w) % ROWS;
                    let value = Value::Int((w * OPS + op) as i64);
                    assert!(guard.set_cell(TupleId(slot as u32), int_attr, value));
                    // the writer's own view must be current immediately
                    // (write-through or invalidate, never a stale hit)
                    assert_eq!(
                        guard.columns().value_at(int_attr, slot),
                        Value::Int((w * OPS + op) as i64),
                    );
                }
            });
        }
        for r in 0..READERS {
            let rel = &rel;
            scope.spawn(move || {
                for op in 0..OPS {
                    let guard = rel.read().unwrap();
                    assert_snapshot_consistent(&guard);
                    // the predicate kernels run over the same snapshot:
                    // the mask must match a scalar recomputation
                    let pivot = Value::Int(((r + op) % OPS) as i64);
                    let snap = guard.columns();
                    let mask = snap.eval_const_op(int_attr, PredOp::Ge, &pivot);
                    for t in guard.iter() {
                        let scalar = match t.get(int_attr) {
                            Value::Int(n) => *n >= ((r + op) % OPS) as i64,
                            _ => false,
                        };
                        assert_eq!(
                            mask.get(t.tid.index()),
                            scalar,
                            "kernel mask stale at tid {:?}",
                            t.tid
                        );
                    }
                }
            });
        }
    });

    // quiescent state: one more full check plus a cache-hit identity —
    // two back-to-back snapshots with no mutation share the same Arc
    let guard = rel.read().unwrap();
    assert_snapshot_consistent(&guard);
    let a = guard.columns();
    let b = guard.columns();
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "quiescent snapshots must be served from cache"
    );
}
