//! **T5s** — the pretrained-language-model baseline ([20]; paper §6).
//!
//! The paper fine-tunes a T5-class model to judge/repair cells. What the
//! evaluation needs from this baseline is its *behavioral profile*:
//!
//! * fine-tuning must touch every training cell with a transformer-scale
//!   cost ("T5s has to tune millions of parameters" — cannot finish rule
//!   discovery in a day);
//! * a single pass over the data at inference, also expensive per cell;
//! * strong on free text, weak on numeric attributes ("its F-Measure is
//!   0.52" on Sales, versus 0.96 for Rock) and weak at correcting numerics
//!   ("0.10 F-Measure for numerical values");
//! * no support for TD.
//!
//! The stand-in learns per-column *value profiles* (frequency + embedding
//! centroid) from a training sample, flags cells that are improbable under
//! their column profile given the row context, and "generates" repairs by
//! retrieving the profile value closest to the row context. Numeric cells
//! only get a crude global z-score check — deliberately matching the
//! published weakness. Every cell processed adds `COST_PER_CELL` to the
//! cost meter (≈ the ratio of a T5 forward pass to an n-gram kernel).

use rock_data::{AttrId, CellRef, Database, RelId, Value};
use rock_ml::features::{cosine, HashingEmbedder};
use rock_ml::CostMeter;
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Instant;

/// Modeled cost units per cell inference (transformer-scale).
pub const COST_PER_CELL: f64 = 2_000.0;
/// Modeled cost units per training cell per epoch.
pub const COST_PER_TRAIN_CELL: f64 = 6_000.0;

/// Per-column profile.
struct ColumnProfile {
    /// value -> (frequency, embedding)
    values: FxHashMap<Value, (u32, Vec<f64>)>,
    /// numeric mean/std for the crude numeric check
    mean: f64,
    std: f64,
    numeric: bool,
}

/// The simulated T5-class cell model.
pub struct T5sModel {
    embedder: HashingEmbedder,
    profiles: FxHashMap<(RelId, AttrId), ColumnProfile>,
    pub meter: CostMeter,
    /// epochs of simulated fine-tuning
    pub epochs: usize,
    pub train_seconds: f64,
}

impl T5sModel {
    /// "Fine-tune" on a training database (the paper trains on a 10%
    /// split). Builds column profiles; meters transformer-scale cost.
    pub fn train(db: &Database, epochs: usize) -> T5sModel {
        let start = Instant::now();
        let embedder = HashingEmbedder::default();
        let meter = CostMeter::default();
        let mut profiles = FxHashMap::default();
        for (rid, rel) in db.iter() {
            for (attr, meta) in rel.schema.iter_attrs() {
                let mut values: FxHashMap<Value, (u32, Vec<f64>)> = FxHashMap::default();
                let mut sum = 0.0;
                let mut sumsq = 0.0;
                let mut n = 0usize;
                for t in rel.iter() {
                    let v = t.get(attr);
                    if v.is_null() {
                        continue;
                    }
                    meter.add(COST_PER_TRAIN_CELL * epochs as f64);
                    let e = values
                        .entry(v.clone())
                        .or_insert_with(|| (0, embedder.embed_value(v)));
                    e.0 += 1;
                    if let Some(x) = v.as_f64() {
                        sum += x;
                        sumsq += x * x;
                        n += 1;
                    }
                }
                let mean = if n == 0 { 0.0 } else { sum / n as f64 };
                let std = if n == 0 {
                    1.0
                } else {
                    (sumsq / n as f64 - mean * mean).max(1e-9).sqrt()
                };
                profiles.insert(
                    (rid, attr),
                    ColumnProfile {
                        values,
                        mean,
                        std,
                        numeric: meta.ty.is_numeric(),
                    },
                );
            }
        }
        T5sModel {
            embedder,
            profiles,
            meter,
            epochs,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Row-context embedding: all cells except the target.
    fn context(&self, values: &[Value], skip: usize) -> Vec<f64> {
        let ctx: Vec<Value> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| v.clone())
            .collect();
        self.embedder.embed_values(&ctx)
    }

    /// Probability-ish score that a cell is erroneous (higher = more
    /// suspicious).
    pub fn suspicion(&self, db: &Database, cell: CellRef) -> f64 {
        self.meter.add(COST_PER_CELL);
        let Some(t) = db.relation(cell.rel).get(cell.tid) else {
            return 0.0;
        };
        let v = t.get(cell.attr);
        let Some(profile) = self.profiles.get(&(cell.rel, cell.attr)) else {
            return 0.0;
        };
        if v.is_null() {
            return 1.0; // missing — always flagged
        }
        if profile.numeric {
            // crude z-score check only: the published numeric weakness
            let Some(x) = v.as_f64() else { return 0.0 };
            let z = (x - profile.mean).abs() / profile.std.max(1e-9);
            return if z > 4.0 { 0.9 } else { 0.05 };
        }
        match profile.values.get(v) {
            Some((count, _)) if *count >= 2 => 0.0, // seen in training: fine
            _ => {
                // unseen value: suspicious unless very close to a trained
                // value's embedding (paraphrase tolerance of an LM)
                let emb = self.embedder.embed_value(v);
                let best = profile
                    .values
                    .values()
                    .map(|(_, e)| cosine(&emb, e))
                    .fold(0.0f64, f64::max);
                if best > 0.98 {
                    0.1
                } else {
                    0.85
                }
            }
        }
    }

    /// Detect: flag every cell with suspicion ≥ 0.5.
    pub fn detect(&self, db: &Database) -> (FxHashSet<CellRef>, f64) {
        let start = Instant::now();
        let mut out = FxHashSet::default();
        for (rid, rel) in db.iter() {
            for t in rel.iter() {
                for a in 0..rel.schema.arity() {
                    let cell = CellRef::new(rid, t.tid, AttrId(a as u16));
                    if self.suspicion(db, cell) >= 0.5 {
                        out.insert(cell);
                    }
                }
            }
        }
        (out, start.elapsed().as_secs_f64())
    }

    /// "Generate" a repair for a cell, the way an LM denoises: for a
    /// non-null suspicious value, pick the training value *closest to the
    /// corrupted surface form* (a typo is one edit from its correction),
    /// lightly weighted by row-context fit and frequency; for a null cell,
    /// fall back to context alone. Numeric cells get the column mean — the
    /// published 0.10-F-measure-on-numerics behavior.
    pub fn repair(&self, db: &Database, cell: CellRef) -> Option<Value> {
        self.meter.add(COST_PER_CELL);
        let t = db.relation(cell.rel).get(cell.tid)?;
        let profile = self.profiles.get(&(cell.rel, cell.attr))?;
        if profile.numeric {
            return Some(Value::Float((profile.mean * 100.0).round() / 100.0));
        }
        let cur = t.get(cell.attr);
        let cur_emb = if cur.is_null() {
            None
        } else {
            Some(self.embedder.embed_value(cur))
        };
        let ctx = self.context(&t.values, cell.attr.index());
        profile
            .values
            .iter()
            .map(|(v, (count, emb))| {
                let surface = cur_emb.as_ref().map(|ce| cosine(ce, emb)).unwrap_or(0.0);
                let score = 2.0 * surface + cosine(&ctx, emb) + (*count as f64).ln_1p() * 0.05;
                (v, score)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, _)| v.clone())
    }

    /// Correct: repair every flagged cell.
    pub fn correct(&self, db: &Database) -> (Database, f64) {
        let start = Instant::now();
        let (flagged, _) = self.detect(db);
        let mut out = db.clone();
        for cell in flagged {
            if let Some(v) = self.repair(db, cell) {
                out.relation_mut(cell.rel).set_cell(cell.tid, cell.attr, v);
            }
        }
        (out, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, TupleId};

    fn train_db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("city", AttrType::Str), ("price", AttrType::Float)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..30 {
            let c = if i % 2 == 0 { "Beijing" } else { "Shanghai" };
            r.insert_row(vec![
                Value::str(c),
                Value::Float(100.0 + ((i % 7) * 10) as f64),
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn flags_typos_and_nulls_not_clean_text() {
        let model = T5sModel::train(&train_db(), 2);
        let mut d = train_db();
        d.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(0), Value::str("BejX@ng"));
        d.relation_mut(RelId(0))
            .set_cell(TupleId(1), AttrId(0), Value::Null);
        let (flagged, _) = model.detect(&d);
        assert!(flagged.contains(&CellRef::new(RelId(0), TupleId(0), AttrId(0))));
        assert!(flagged.contains(&CellRef::new(RelId(0), TupleId(1), AttrId(0))));
        // clean cells unflagged
        assert!(!flagged.contains(&CellRef::new(RelId(0), TupleId(2), AttrId(0))));
    }

    #[test]
    fn weak_on_moderate_numeric_errors() {
        let model = T5sModel::train(&train_db(), 2);
        let mut d = train_db();
        // a ~1.2× price error stays within 4σ — T5s misses it
        d.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(1), Value::Float(155.0));
        let (flagged, _) = model.detect(&d);
        assert!(!flagged.contains(&CellRef::new(RelId(0), TupleId(0), AttrId(1))));
        // an extreme outlier is caught
        d.relation_mut(RelId(0))
            .set_cell(TupleId(1), AttrId(1), Value::Float(9e9));
        let (flagged, _) = model.detect(&d);
        assert!(flagged.contains(&CellRef::new(RelId(0), TupleId(1), AttrId(1))));
    }

    #[test]
    fn repairs_text_reasonably_numerics_poorly() {
        let model = T5sModel::train(&train_db(), 2);
        let mut d = train_db();
        d.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(0), Value::Null);
        let rep = model.repair(&d, CellRef::new(RelId(0), TupleId(0), AttrId(0)));
        assert!(matches!(rep, Some(Value::Str(_))));
        // numeric repair = column mean, almost never the right value
        let rep = model
            .repair(&d, CellRef::new(RelId(0), TupleId(0), AttrId(1)))
            .unwrap();
        assert!(matches!(rep, Value::Float(_)));
    }

    #[test]
    fn cost_meter_reflects_transformer_scale() {
        let db = train_db();
        let model = T5sModel::train(&db, 2);
        let train_cost = model.meter.cost();
        assert!(train_cost >= 60.0 * COST_PER_TRAIN_CELL, "{train_cost}");
        model.detect(&db);
        assert!(model.meter.cost() > train_cost);
    }
}
