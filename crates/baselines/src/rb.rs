//! **RB** — the Baran-style holistic cleaner ([65]; paper §6: "a holistic
//! data cleaning system that adopts the feature engineering and learns ML
//! models for error detection and correction").
//!
//! Behavioral profile reproduced from the paper's observations:
//! * "costly feature engineering" — RB materializes, per cell, a wide
//!   feature vector (value frequency, format pattern frequency,
//!   co-occurrence with every other cell of the row); metered per feature;
//! * good on textual values (0.88 F-measure correcting text per §6),
//!   weaker on numerics (0.52);
//! * error detection via a learned classifier over the cell features
//!   (stand-in: gradient-boosted stumps);
//! * correction via context co-occurrence voting (Baran's value models);
//! * no ER and no TD support ("TD and ER of RB are not shown because they
//!   do not support these operations").

use rock_data::{AttrId, CellRef, Database, RelId, Value};
use rock_ml::tree::GradientBoosting;
use rock_ml::CostMeter;
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Instant;

/// Modeled cost per cell featurization (wide feature engineering).
pub const COST_PER_FEATURIZE: f64 = 120.0;

/// Format pattern of a value: letters→a, digits→9, other kept.
pub fn format_pattern(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphabetic() {
                'a'
            } else if c.is_numeric() {
                '9'
            } else {
                c
            }
        })
        .collect()
}

/// Per-column statistics RB's features read.
struct ColStats {
    value_freq: FxHashMap<Value, u32>,
    pattern_freq: FxHashMap<String, u32>,
    rows: u32,
}

/// Co-occurrence: (context attr, context value, target attr) -> target
/// value -> count. This is Baran's "value model" context.
type Cooc = FxHashMap<(AttrId, Value, AttrId), FxHashMap<Value, u32>>;

/// The RB cleaner for one relation.
pub struct RbCleaner {
    rel: RelId,
    stats: Vec<ColStats>,
    cooc: Cooc,
    detector: GradientBoosting,
    pub meter: CostMeter,
    pub train_seconds: f64,
}

impl RbCleaner {
    /// Feature vector of a cell (given the row): [value rarity, pattern
    /// rarity, null flag, mean context co-occurrence support].
    fn features(
        stats: &[ColStats],
        cooc: &Cooc,
        meter: &CostMeter,
        values: &[Value],
        attr: AttrId,
    ) -> Vec<f64> {
        meter.add(COST_PER_FEATURIZE);
        let v = &values[attr.index()];
        let col = &stats[attr.index()];
        if v.is_null() {
            return vec![1.0, 1.0, 1.0, 0.0];
        }
        let vf = col.value_freq.get(v).copied().unwrap_or(0) as f64 / col.rows.max(1) as f64;
        let pf = col
            .pattern_freq
            .get(&format_pattern(&v.render()))
            .copied()
            .unwrap_or(0) as f64
            / col.rows.max(1) as f64;
        // context support: over the other cells, how often does this
        // target value co-occur with that context value?
        let mut support = 0.0;
        let mut n = 0usize;
        for (i, cv) in values.iter().enumerate() {
            let cattr = AttrId(i as u16);
            if cattr == attr || cv.is_null() {
                continue;
            }
            n += 1;
            if let Some(dist) = cooc.get(&(cattr, cv.clone(), attr)) {
                let total: u32 = dist.values().sum();
                let mine = dist.get(v).copied().unwrap_or(0);
                if total > 0 {
                    support += mine as f64 / total as f64;
                }
            }
        }
        let support = if n == 0 { 0.0 } else { support / n as f64 };
        vec![1.0 - vf.min(1.0), 1.0 - pf.min(1.0), 0.0, support]
    }

    /// Train on a labeled sample: `(clean, dirty)` databases of the same
    /// shape (the paper samples a small labeled set "so that they could
    /// finish training in one day").
    pub fn train(clean_sample: &Database, dirty_sample: &Database, rel: RelId) -> RbCleaner {
        let start = Instant::now();
        let meter = CostMeter::default();
        let r = dirty_sample.relation(rel);
        // column stats + co-occurrence from the dirty sample (what RB sees)
        let mut stats = Vec::new();
        for a in 0..r.schema.arity() {
            let attr = AttrId(a as u16);
            let mut value_freq: FxHashMap<Value, u32> = FxHashMap::default();
            let mut pattern_freq: FxHashMap<String, u32> = FxHashMap::default();
            for t in r.iter() {
                let v = t.get(attr);
                if v.is_null() {
                    continue;
                }
                *value_freq.entry(v.clone()).or_insert(0) += 1;
                *pattern_freq.entry(format_pattern(&v.render())).or_insert(0) += 1;
            }
            stats.push(ColStats {
                value_freq,
                pattern_freq,
                rows: r.len() as u32,
            });
        }
        let mut cooc: Cooc = FxHashMap::default();
        for t in r.iter() {
            for i in 0..t.values.len() {
                for j in 0..t.values.len() {
                    if i == j || t.values[i].is_null() || t.values[j].is_null() {
                        continue;
                    }
                    *cooc
                        .entry((AttrId(i as u16), t.values[i].clone(), AttrId(j as u16)))
                        .or_default()
                        .entry(t.values[j].clone())
                        .or_insert(0) += 1;
                }
            }
        }
        // labeled training rows: cell is an error iff dirty != clean
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for t in r.iter() {
            let Some(ct) = clean_sample.relation(rel).get(t.tid) else {
                continue;
            };
            for a in 0..t.values.len() {
                let attr = AttrId(a as u16);
                xs.push(Self::features(&stats, &cooc, &meter, &t.values, attr));
                ys.push(if t.get(attr) != ct.get(attr) {
                    1.0
                } else {
                    0.0
                });
            }
        }
        let detector = GradientBoosting::fit(&xs, &ys, 40, 0.3);
        RbCleaner {
            rel,
            stats,
            cooc,
            detector,
            meter,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Detect erroneous cells of the relation.
    pub fn detect(&self, db: &Database) -> (FxHashSet<CellRef>, f64) {
        let start = Instant::now();
        let mut out = FxHashSet::default();
        for t in db.relation(self.rel).iter() {
            for a in 0..t.values.len() {
                let attr = AttrId(a as u16);
                let f = Self::features(&self.stats, &self.cooc, &self.meter, &t.values, attr);
                if self.detector.predict(&f) >= 0.5 {
                    out.insert(CellRef::new(self.rel, t.tid, attr));
                }
            }
        }
        (out, start.elapsed().as_secs_f64())
    }

    /// Correct: context co-occurrence vote over the row's other cells.
    pub fn correct(&self, db: &Database) -> (Database, f64) {
        let start = Instant::now();
        let (flagged, _) = self.detect(db);
        let mut out = db.clone();
        for cell in flagged {
            let Some(t) = db.relation(self.rel).get(cell.tid) else {
                continue;
            };
            let mut votes: FxHashMap<Value, f64> = FxHashMap::default();
            for (i, cv) in t.values.iter().enumerate() {
                let cattr = AttrId(i as u16);
                if cattr == cell.attr || cv.is_null() {
                    continue;
                }
                if let Some(dist) = self.cooc.get(&(cattr, cv.clone(), cell.attr)) {
                    let total: u32 = dist.values().sum();
                    for (v, c) in dist {
                        *votes.entry(v.clone()).or_insert(0.0) += *c as f64 / total.max(1) as f64;
                    }
                }
            }
            let mut winner = votes
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .map(|(v, _)| v);
            // Baran's value models: when context co-occurrence gives no
            // answer (near-unique textual values), propose the training
            // value most edit-similar to the corrupted surface form.
            if winner.is_none() {
                if let Some(cur) = db.cell(cell.rel, cell.tid, cell.attr) {
                    if let Some(s) = cur.as_str() {
                        winner = self.stats[cell.attr.index()]
                            .value_freq
                            .keys()
                            .filter_map(|v| {
                                v.as_str()
                                    .map(|vs| (v, rock_ml::text::edit_similarity(s, vs)))
                            })
                            .filter(|(_, sim)| *sim >= 0.75)
                            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                            .map(|(v, _)| v.clone());
                    }
                }
            }
            if let Some(v) = winner {
                if !v.is_null() && Some(&v) != db.cell(cell.rel, cell.tid, cell.attr) {
                    out.relation_mut(cell.rel).set_cell(cell.tid, cell.attr, v);
                }
            }
        }
        (out, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrType, DatabaseSchema, RelationSchema, TupleId};

    fn clean() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("city", AttrType::Str), ("code", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..40 {
            let (c, a) = if i % 2 == 0 {
                ("Beijing", "010")
            } else {
                ("Shanghai", "021")
            };
            r.insert_row(vec![Value::str(c), Value::str(a)]).unwrap();
        }
        db
    }

    fn dirtied() -> (Database, Database) {
        let c = clean();
        let mut d = c.clone();
        d.relation_mut(RelId(0))
            .set_cell(TupleId(0), AttrId(1), Value::str("0999"));
        d.relation_mut(RelId(0))
            .set_cell(TupleId(3), AttrId(0), Value::str("Shangha!"));
        (c, d)
    }

    #[test]
    fn format_patterns() {
        assert_eq!(format_pattern("010"), "999");
        assert_eq!(format_pattern("Beijing"), "aaaaaaa");
        assert_eq!(format_pattern("A-12"), "a-99");
    }

    #[test]
    fn detects_trained_error_classes() {
        let (c, d) = dirtied();
        let rb = RbCleaner::train(&c, &d, RelId(0));
        let (flagged, _) = rb.detect(&d);
        assert!(
            flagged.contains(&CellRef::new(RelId(0), TupleId(0), AttrId(1))),
            "{flagged:?}"
        );
        assert!(flagged.contains(&CellRef::new(RelId(0), TupleId(3), AttrId(0))));
        // precision: not everything flagged
        assert!(flagged.len() < 10, "{}", flagged.len());
    }

    #[test]
    fn corrects_via_cooccurrence() {
        let (c, d) = dirtied();
        let rb = RbCleaner::train(&c, &d, RelId(0));
        let (fixed, _) = rb.correct(&d);
        // the wrong code co-occurs with "Beijing" → restored to 010
        assert_eq!(
            fixed.cell(RelId(0), TupleId(0), AttrId(1)),
            Some(&Value::str("010"))
        );
    }

    #[test]
    fn feature_engineering_is_metered() {
        let (c, d) = dirtied();
        let rb = RbCleaner::train(&c, &d, RelId(0));
        let cost0 = rb.meter.cost();
        rb.detect(&d);
        assert!(rb.meter.cost() > cost0);
        assert!(rb.meter.cost() >= 80.0 * COST_PER_FEATURIZE);
    }
}
