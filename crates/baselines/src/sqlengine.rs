//! **SparkSQL / Presto** simulators (paper §6 Exp-2/Exp-3).
//!
//! "For a fair comparison, we transformed the learned REE++s to SQL and
//! fed them into SparkSQL and Presto, where ML predicates in REE++s are
//! re-written as UDFs and embedded in SQL." The comparison point is a
//! *generic* engine: nested-loop/hash joins with per-call UDF invocation,
//! **no** LSH blocking, **no** inference memoization, **no** partial
//! valuations, **no** chase-aware incremental re-evaluation ("they support
//! no designated strategy for accelerating ML models").
//!
//! The two engines share the evaluator and differ only in a per-row
//! dispatch overhead constant (Presto's vectorized execution is somewhat
//! leaner than Spark's task scheduling at small scale — the figures care
//! about the Rock-vs-engine gap, not Spark-vs-Presto).

use rock_data::{CellRef, Database, GlobalTid, Value};
use rock_ml::{CostMeter, ModelRegistry};
use rock_rees::{CmpOp, Predicate, Rule, RuleSet};
use rustc_hash::FxHashSet;
use std::time::Instant;

/// Which engine personality to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlEngineKind {
    SparkSql,
    Presto,
}

impl SqlEngineKind {
    pub fn name(&self) -> &'static str {
        match self {
            SqlEngineKind::SparkSql => "SparkSQL",
            SqlEngineKind::Presto => "Presto",
        }
    }

    /// Modeled per-evaluated-row dispatch overhead (cost units).
    fn row_overhead(&self) -> f64 {
        match self {
            SqlEngineKind::SparkSql => 2.0,
            SqlEngineKind::Presto => 1.2,
        }
    }
}

/// Detection/correction report.
#[derive(Debug)]
pub struct SqlReport {
    pub flagged_cells: FxHashSet<CellRef>,
    pub duplicate_pairs: Vec<(GlobalTid, GlobalTid)>,
    pub rows_evaluated: u64,
    pub wall_seconds: f64,
}

/// The engine simulator.
pub struct SqlEngine<'a> {
    pub kind: SqlEngineKind,
    pub registry: &'a ModelRegistry,
    pub meter: CostMeter,
}

impl<'a> SqlEngine<'a> {
    pub fn new(kind: SqlEngineKind, registry: &'a ModelRegistry) -> Self {
        SqlEngine {
            kind,
            registry,
            meter: CostMeter::default(),
        }
    }

    /// Evaluate one predicate the UDF way: straight computation, no memo.
    /// ML predicates call the classifier directly (bypassing the
    /// registry's memoization — that cache is Rock's optimization).
    fn eval_pred(&self, db: &Database, rule: &Rule, tuples: &[GlobalTid], p: &Predicate) -> bool {
        self.meter.add(self.kind.row_overhead());
        let cell = |var: usize, attr: rock_data::AttrId| -> Value {
            let gt = tuples[var];
            db.relation(gt.rel)
                .get(gt.tid)
                .map(|t| t.get(attr).clone())
                .unwrap_or(Value::Null)
        };
        match p {
            Predicate::Const {
                var,
                attr,
                op,
                value,
            } => op.eval(&cell(*var, *attr), value),
            Predicate::Attr {
                lvar,
                lattr,
                op,
                rvar,
                rattr,
            } => op.eval(&cell(*lvar, *lattr), &cell(*rvar, *rattr)),
            Predicate::IsNull { var, attr } => cell(*var, *attr).is_null(),
            Predicate::EidCmp { lvar, rvar, eq } => {
                let (l, r) = (tuples[*lvar], tuples[*rvar]);
                let le = db.relation(l.rel).get(l.tid).map(|t| t.eid);
                let re = db.relation(r.rel).get(r.tid).map(|t| t.eid);
                let same = l.rel == r.rel && le.is_some() && le == re;
                if *eq {
                    same
                } else {
                    !same
                }
            }
            Predicate::Ml {
                model,
                lvar,
                lattrs,
                rvar,
                rattrs,
            } => {
                // UDF call: full inference, every single time
                let a: Vec<Value> = lattrs.iter().map(|x| cell(*lvar, *x)).collect();
                let b: Vec<Value> = rattrs.iter().map(|x| cell(*rvar, *x)).collect();
                match self.registry.pair(model.resolved()) {
                    Some(m) => {
                        self.meter.add(m.cost());
                        m.predict(&a, &b)
                    }
                    None => false,
                }
            }
            // Temporal / KG / correlation predicates have no SQL
            // translation — the paper's SQL baselines only run ED/EC over
            // the relational REE++s.
            _ => false,
        }
        .also_note(rule)
    }

    /// Detect violations of the rule set by nested-loop evaluation.
    pub fn detect(&self, db: &Database, rules: &RuleSet) -> SqlReport {
        let start = Instant::now();
        let mut flagged = FxHashSet::default();
        let mut dups = Vec::new();
        let mut rows = 0u64;
        for rule in rules.iter() {
            self.for_each_valuation(db, rule, &mut rows, |tuples| {
                let pre_ok = rule
                    .precondition
                    .iter()
                    .all(|p| self.eval_pred(db, rule, tuples, p));
                if !pre_ok {
                    return;
                }
                if self.eval_pred(db, rule, tuples, &rule.consequence) {
                    return;
                }
                match &rule.consequence {
                    Predicate::Attr {
                        lvar,
                        lattr,
                        rvar,
                        rattr,
                        ..
                    } => {
                        let (l, r) = (tuples[*lvar], tuples[*rvar]);
                        flagged.insert(CellRef::new(l.rel, l.tid, *lattr));
                        flagged.insert(CellRef::new(r.rel, r.tid, *rattr));
                    }
                    Predicate::Const { var, attr, .. } => {
                        let gt = tuples[*var];
                        flagged.insert(CellRef::new(gt.rel, gt.tid, *attr));
                    }
                    Predicate::EidCmp {
                        lvar,
                        rvar,
                        eq: true,
                    } => {
                        dups.push((tuples[*lvar], tuples[*rvar]));
                    }
                    _ => {}
                }
                for p in &rule.precondition {
                    if let Predicate::IsNull { var, attr } = p {
                        let gt = tuples[*var];
                        flagged.insert(CellRef::new(gt.rel, gt.tid, *attr));
                    }
                }
            });
        }
        SqlReport {
            flagged_cells: flagged,
            duplicate_pairs: dups,
            rows_evaluated: rows,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// "Correct" by iteratively executing the SQL until no more fixes
    /// (paper §6: "To simulate the chase of Rock, we iteratively executed
    /// SQL in SparkSQL and Presto … until no more fixes can be
    /// generated"). Violating Attr-consequences copy the partner's value;
    /// no conflict resolution, no entity classes.
    pub fn correct(
        &self,
        db: &Database,
        rules: &RuleSet,
        max_iters: usize,
    ) -> (Database, SqlReport) {
        let start = Instant::now();
        let mut out = db.clone();
        let mut total_rows = 0u64;
        let mut flagged_all = FxHashSet::default();
        for _ in 0..max_iters {
            let mut changed = false;
            for rule in rules.iter() {
                let mut fixes: Vec<(CellRef, Value)> = Vec::new();
                let mut rows = 0u64;
                self.for_each_valuation(&out, rule, &mut rows, |tuples| {
                    let pre_ok = rule
                        .precondition
                        .iter()
                        .all(|p| self.eval_pred(&out, rule, tuples, p));
                    if !pre_ok || self.eval_pred(&out, rule, tuples, &rule.consequence) {
                        return;
                    }
                    if let Predicate::Attr {
                        lvar,
                        lattr,
                        rvar,
                        rattr,
                        op: CmpOp::Eq,
                    } = &rule.consequence
                    {
                        // the UPDATE's SET expression is an aggregate over
                        // the group (MAX), so repeated executions converge
                        // instead of swapping two values forever
                        let (l, r) = (tuples[*lvar], tuples[*rvar]);
                        let lv = out
                            .cell(l.rel, l.tid, *lattr)
                            .cloned()
                            .unwrap_or(Value::Null);
                        if let Some(rv) = out.cell(r.rel, r.tid, *rattr) {
                            let winner = if lv.is_null() || rv > &lv {
                                rv.clone()
                            } else {
                                lv
                            };
                            if !winner.is_null() {
                                fixes.push((CellRef::new(l.rel, l.tid, *lattr), winner));
                            }
                        }
                    } else if let Predicate::Const {
                        var,
                        attr,
                        op: CmpOp::Eq,
                        value,
                    } = &rule.consequence
                    {
                        let gt = tuples[*var];
                        fixes.push((CellRef::new(gt.rel, gt.tid, *attr), value.clone()));
                    }
                });
                total_rows += rows;
                for (cell, v) in fixes {
                    if out.cell(cell.rel, cell.tid, cell.attr) != Some(&v) {
                        out.relation_mut(cell.rel).set_cell(cell.tid, cell.attr, v);
                        flagged_all.insert(cell);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let report = SqlReport {
            flagged_cells: flagged_all,
            duplicate_pairs: Vec::new(),
            rows_evaluated: total_rows,
            wall_seconds: start.elapsed().as_secs_f64(),
        };
        (out, report)
    }

    /// Nested-loop enumeration over the rule's variable bindings — the
    /// generic plan a SQL engine runs without Rock's candidate pruning.
    fn for_each_valuation<F>(&self, db: &Database, rule: &Rule, rows: &mut u64, mut f: F)
    where
        F: FnMut(&[GlobalTid]),
    {
        let nvars = rule.tuple_vars.len();
        let mut tuples: Vec<GlobalTid> = Vec::with_capacity(nvars);
        self.nested(db, rule, 0, nvars, &mut tuples, rows, &mut f);
    }

    #[allow(clippy::too_many_arguments)]
    fn nested<F>(
        &self,
        db: &Database,
        rule: &Rule,
        depth: usize,
        nvars: usize,
        tuples: &mut Vec<GlobalTid>,
        rows: &mut u64,
        f: &mut F,
    ) where
        F: FnMut(&[GlobalTid]),
    {
        if depth == nvars {
            // skip trivially-degenerate same-tuple bindings (SQL would
            // include a t.rowid <> s.rowid filter)
            for i in 0..nvars {
                for j in (i + 1)..nvars {
                    if rule.rel_of(i) == rule.rel_of(j) && tuples[i] == tuples[j] {
                        return;
                    }
                }
            }
            *rows += 1;
            f(tuples);
            return;
        }
        let rel = rule.rel_of(depth);
        let tids: Vec<_> = db.relation(rel).tids().collect();
        for tid in tids {
            tuples.push(GlobalTid::new(rel, tid));
            self.nested(db, rule, depth + 1, nvars, tuples, rows, f);
            tuples.pop();
        }
    }
}

/// No-op helper so `eval_pred`'s match can stay an expression while
/// keeping the rule parameter for future per-rule costing.
trait AlsoNote {
    fn also_note(self, rule: &Rule) -> Self;
}

impl AlsoNote for bool {
    #[inline]
    fn also_note(self, _rule: &Rule) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, AttrType, DatabaseSchema, RelId, RelationSchema, TupleId};
    use rock_ml::pair::NgramPairModel;
    use rock_rees::parse_rules;
    use std::sync::Arc;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "T",
            &[("k", AttrType::Str), ("v", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        r.insert_row(vec![Value::str("a"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("a"), Value::str("1")])
            .unwrap();
        r.insert_row(vec![Value::str("a"), Value::str("2")])
            .unwrap();
        r.insert_row(vec![Value::str("b"), Value::str("9")])
            .unwrap();
        db
    }

    fn fd_rules(db: &Database) -> RuleSet {
        RuleSet::new(
            parse_rules(
                "rule fd: T(t) && T(s) && t.k = s.k -> t.v = s.v",
                &db.schema(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn nested_loop_counts_cartesian_rows() {
        let d = db();
        let reg = ModelRegistry::new();
        let engine = SqlEngine::new(SqlEngineKind::SparkSql, &reg);
        let report = engine.detect(&d, &fd_rules(&d));
        // 4×4 minus 4 self-pairs = 12 rows per rule
        assert_eq!(report.rows_evaluated, 12);
        // the conflicting pair flags both cells
        assert!(report
            .flagged_cells
            .contains(&CellRef::new(RelId(0), TupleId(2), AttrId(1))));
        assert!(report.flagged_cells.len() >= 2);
    }

    #[test]
    fn correction_iterates_to_fixpoint() {
        let d = db();
        let reg = ModelRegistry::new();
        let engine = SqlEngine::new(SqlEngineKind::Presto, &reg);
        let (fixed, _) = engine.correct(&d, &fd_rules(&d), 10);
        // all k=a rows end with the same v
        let vs: Vec<_> = (0..3)
            .map(|i| fixed.cell(RelId(0), TupleId(i), AttrId(1)).cloned())
            .collect();
        assert_eq!(vs[0], vs[1]);
        assert_eq!(vs[1], vs[2]);
    }

    #[test]
    fn ml_udf_pays_per_call_no_memo() {
        let d = db();
        let reg = ModelRegistry::new();
        reg.register_pair("M", Arc::new(NgramPairModel::default()));
        let rules = RuleSet::new({
            let mut rs = parse_rules(
                "rule ml: T(t) && T(s) && ml:M(t[k], s[k]) -> t.v = s.v",
                &d.schema(),
            )
            .unwrap();
            for r in &mut rs {
                r.resolve(&reg).unwrap();
            }
            rs
        });
        let engine = SqlEngine::new(SqlEngineKind::SparkSql, &reg);
        let inferences0 = engine.meter.inferences();
        engine.detect(&d, &rules);
        engine.detect(&d, &rules);
        // cost accrues on the engine meter per call — two passes, twice
        // the cost, zero memoization benefit
        let cost = engine.meter.cost();
        assert!(cost > 0.0);
        assert_eq!(engine.meter.memo_hits(), 0);
        let _ = inferences0;
    }

    #[test]
    fn presto_cheaper_dispatch_than_spark() {
        let d = db();
        let reg = ModelRegistry::new();
        let spark = SqlEngine::new(SqlEngineKind::SparkSql, &reg);
        spark.detect(&d, &fd_rules(&d));
        let presto = SqlEngine::new(SqlEngineKind::Presto, &reg);
        presto.detect(&d, &fd_rules(&d));
        assert!(presto.meter.cost() < spark.meter.cost());
        assert_eq!(SqlEngineKind::Presto.name(), "Presto");
    }
}
