//! # rock-baselines — the comparison systems of §6
//!
//! The paper compares Rock against five baselines; none are open-source in
//! the configurations used, so each is reimplemented from its published
//! description (DESIGN.md §1):
//!
//! * [`es`] — **ES** [72]: evidence-set rule discovery "in a purely mining
//!   manner" with *no* sampling or effective pruning; precision-oriented
//!   (exact rules only), which is why its recall lags (§6 Exp-2).
//! * [`t5s`] — **T5s** [20]: a pretrained-LM cell model. Simulated as a
//!   hashing-embedding classifier with a transformer-scale per-inference
//!   cost; strong on text, intentionally weak on numeric attributes
//!   ("when there are many numerical attributes … its F-Measure is 0.52").
//! * [`rb`] — **RB** (Baran [65]): "holistic feature engineering + a
//!   downstream random-forest model"; costly feature generation, good on
//!   text, weak on numerics and unable to do ER/TD.
//! * [`sqlengine`] — **SparkSQL** [14] / **Presto** [80]: generic SQL
//!   engines evaluating Rock's REE++s translated to joins with ML UDFs —
//!   no blocking, no memoization, no partial valuations ("they support no
//!   designated strategy for accelerating ML models").
//!
//! Every baseline reports wall time *and* modeled ML cost through the
//! shared `CostMeter`, so the figure harness can reproduce the paper's
//! relative-runtime shapes without hours of transformer simulation.

pub mod es;
pub mod rb;
pub mod sqlengine;
pub mod t5s;

pub use es::EsMiner;
pub use rb::RbCleaner;
pub use sqlengine::{SqlEngine, SqlEngineKind};
pub use t5s::T5sModel;
