//! **ES** — evidence-set rule discovery ([72]; paper §6: "a rule discovery
//! system that uses the idea of evidence set to discover REE++s in parallel
//! in a purely mining manner").
//!
//! The evidence set of a tuple pair is the set of candidate predicates the
//! pair satisfies. A rule `X → p0` is *exact* iff no evidence contains all
//! of `X` but not `p0`. ES enumerates the full evidence multiset (every
//! ordered pair — no sampling, which is exactly why "ES does not have
//! effective pruning strategies" and times out at scale) and then mines
//! exact minimal rules. Being exact-only makes it precision-oriented: "it
//! mainly focuses on the precision and does not optimize the recall".

use rock_data::{Database, RelId};
use rock_ml::ModelRegistry;
use rock_rees::eval::{distinct_ok, enumerate_valuations, EvalContext};
use rock_rees::{Predicate, Rule, RuleSet};
use std::time::Instant;

/// One evidence: bitset of satisfied candidate predicates for a pair.
type Evidence = u64;

/// ES mining output.
#[derive(Debug)]
pub struct EsReport {
    pub rules: RuleSet,
    /// Evidence rows materialized (the quadratic cost driver).
    pub evidence_rows: usize,
    pub wall_seconds: f64,
}

/// The ES miner.
pub struct EsMiner<'a> {
    pub registry: &'a ModelRegistry,
    /// Maximum precondition size mined.
    pub max_preconditions: usize,
    /// Approximate-constraint confidence floor ([72] discovers exact *and*
    /// approximate DCs). Kept high — ES "mainly focuses on the precision
    /// and does not optimize the recall" (§6).
    pub min_confidence: f64,
}

impl<'a> EsMiner<'a> {
    pub fn new(registry: &'a ModelRegistry) -> Self {
        EsMiner {
            registry,
            max_preconditions: 2,
            min_confidence: 0.94,
        }
    }

    /// Mine exact rules over one relation's two-variable template, from
    /// the provided predicate candidates (precondition pool + consequence
    /// pool). Pools beyond 64 predicates are truncated (bitset width).
    pub fn mine(
        &self,
        db: &Database,
        rel: RelId,
        preconditions: &[Predicate],
        consequences: &[Predicate],
    ) -> EsReport {
        let start = Instant::now();
        let pre: Vec<Predicate> = preconditions.iter().take(40).cloned().collect();
        let cons: Vec<Predicate> = consequences.iter().take(24).cloned().collect();
        let all: Vec<Predicate> = pre.iter().chain(cons.iter()).cloned().collect();

        // a template rule binding (t, s) so we can evaluate predicates
        let probe = Rule::new(
            "es-probe",
            vec![("t".into(), rel), ("s".into(), rel)],
            vec![],
            Vec::new(),
            // consequence is irrelevant for enumeration; use a tautology-ish
            Predicate::EidCmp {
                lvar: 0,
                rvar: 1,
                eq: true,
            },
        );
        let ctx = EvalContext::new(db, self.registry);

        // full evidence multiset over all ordered distinct pairs — the
        // deliberately unpruned quadratic pass
        let mut evidence: Vec<Evidence> = Vec::new();
        enumerate_valuations(&probe, &ctx, |h| {
            if !distinct_ok(&probe, h) {
                return true;
            }
            let mut bits: Evidence = 0;
            for (i, p) in all.iter().enumerate() {
                if ctx.eval_predicate(&probe, h, p) == Some(true) {
                    bits |= 1 << i;
                }
            }
            evidence.push(bits);
            true
        });

        // mine exact minimal rules: for each consequence c, find minimal
        // precondition sets X (|X| ≤ max) with: ∀e: X ⊆ e ⇒ c ∈ e, and X
        // non-vacuous (some evidence contains X).
        let mut rules = RuleSet::default();
        let mut counter = 0usize;
        for (ci, c) in cons.iter().enumerate() {
            let cbit = 1u64 << (pre.len() + ci);
            let mut accepted: Vec<Vec<usize>> = Vec::new();
            let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
            for _level in 1..=self.max_preconditions {
                let mut next = Vec::new();
                for x in &frontier {
                    let startp = x.last().map(|&i| i + 1).unwrap_or(0);
                    for pi in startp..pre.len() {
                        if &pre[pi] == c {
                            continue;
                        }
                        let mut cand = x.clone();
                        cand.push(pi);
                        if accepted.iter().any(|a| a.iter().all(|i| cand.contains(i))) {
                            continue; // minimality
                        }
                        let xbits: u64 = cand.iter().map(|&i| 1u64 << i).sum();
                        let mut support = 0usize;
                        let mut holds = 0usize;
                        for &e in &evidence {
                            if e & xbits == xbits {
                                support += 1;
                                if e & cbit != 0 {
                                    holds += 1;
                                }
                            }
                        }
                        let confidence = if support == 0 {
                            0.0
                        } else {
                            holds as f64 / support as f64
                        };
                        if support > 0 && confidence >= self.min_confidence {
                            counter += 1;
                            let mut rule = Rule::new(
                                format!("es-{counter}"),
                                vec![("t".into(), rel), ("s".into(), rel)],
                                vec![],
                                cand.iter().map(|&i| pre[i].clone()).collect(),
                                c.clone(),
                            );
                            rule.support =
                                support as f64 / (db.relation(rel).len() as f64).powi(2).max(1.0);
                            rule.confidence = confidence;
                            if rule.resolve(self.registry).is_ok() {
                                rules.push(rule);
                            }
                            accepted.push(cand);
                        } else if support > 0 {
                            next.push(cand);
                        }
                        // support == 0: vacuous; supersets are too — prune
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
        }
        EsReport {
            rules,
            evidence_rows: evidence.len(),
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// ES-style *correction*: one direct repair pass, without the chase,
/// ground truth or entity classes (those are Rock's contribution). For
/// each violated `t.A = s.B` consequence, the left cell is rewritten to
/// the majority value among its violating partners — but only when that
/// majority is strict (a lone disagreeing pair gives no direction), which
/// keeps ES precise and recall-poor, as in §6.
pub fn es_correct(db: &Database, rules: &RuleSet, registry: &ModelRegistry) -> Database {
    use rock_rees::eval::find_violations;
    use rustc_hash::FxHashMap;
    let mut out = db.clone();
    let ctx = EvalContext::new(db, registry);
    // collect partner values per violated cell
    let mut votes: FxHashMap<rock_data::CellRef, Vec<rock_data::Value>> = FxHashMap::default();
    for rule in rules.iter() {
        for h in find_violations(rule, &ctx) {
            if let Predicate::Attr {
                lvar,
                lattr,
                rvar,
                rattr,
                op: rock_rees::CmpOp::Eq,
            } = &rule.consequence
            {
                let l = h.tuples[*lvar];
                let r = h.tuples[*rvar];
                if let Some(v) = db.cell(r.rel, r.tid, *rattr) {
                    if !v.is_null() {
                        votes
                            .entry(rock_data::CellRef::new(l.rel, l.tid, *lattr))
                            .or_default()
                            .push(v.clone());
                    }
                }
            }
        }
    }
    let mut cells: Vec<_> = votes.keys().copied().collect();
    cells.sort();
    for cell in cells {
        let vs = &votes[&cell];
        let mut counts: FxHashMap<&rock_data::Value, usize> = FxHashMap::default();
        for v in vs {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut ranked: Vec<(&rock_data::Value, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        // strict majority among partners required
        if (ranked.len() == 1 || (ranked.len() > 1 && ranked[0].1 > ranked[1].1))
            && ranked[0].1 * 2 > vs.len()
        {
            out.relation_mut(cell.rel)
                .set_cell(cell.tid, cell.attr, ranked[0].0.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rock_data::{AttrId, AttrType, DatabaseSchema, RelationSchema, Value};
    use rock_rees::CmpOp;

    fn db() -> Database {
        let schema = DatabaseSchema::new(vec![RelationSchema::of(
            "Store",
            &[("city", AttrType::Str), ("area_code", AttrType::Str)],
        )]);
        let mut db = Database::new(&schema);
        let r = db.relation_mut(RelId(0));
        for i in 0..10 {
            let (c, a) = if i % 2 == 0 {
                ("Beijing", "010")
            } else {
                ("Shanghai", "021")
            };
            r.insert_row(vec![Value::str(c), Value::str(a)]).unwrap();
        }
        db
    }

    fn pools() -> (Vec<Predicate>, Vec<Predicate>) {
        let eq = |a: u16| Predicate::Attr {
            lvar: 0,
            lattr: AttrId(a),
            op: CmpOp::Eq,
            rvar: 1,
            rattr: AttrId(a),
        };
        (vec![eq(0), eq(1)], vec![eq(0), eq(1)])
    }

    #[test]
    fn mines_exact_fd() {
        let db = db();
        let reg = ModelRegistry::new();
        let (pre, cons) = pools();
        let report = EsMiner::new(&reg).mine(&db, RelId(0), &pre, &cons);
        assert_eq!(report.evidence_rows, 90); // all ordered pairs
                                              // both directions of the city ↔ area_code FD are exact here
        assert!(report.rules.len() >= 2, "{}", report.rules.len());
        for r in report.rules.iter() {
            assert!(r.confidence >= 0.94);
        }
    }

    #[test]
    fn dirty_data_breaks_exactness() {
        let mut d = db();
        // one dirty cell breaks the exact FD — ES (exact-only) drops it;
        // this is precisely its recall problem on real data
        d.relation_mut(RelId(0))
            .set_cell(rock_data::TupleId(0), AttrId(1), Value::str("999"));
        let reg = ModelRegistry::new();
        let (pre, cons) = pools();
        let mut miner = EsMiner::new(&reg);
        miner.min_confidence = 1.0; // exact mode
        let report = miner.mine(&d, RelId(0), &pre, &cons);
        let has_city_fd = report.rules.iter().any(|r| {
            matches!(&r.precondition[..], [Predicate::Attr { lattr, .. }] if lattr.0 == 0)
                && matches!(&r.consequence, Predicate::Attr { lattr, .. } if lattr.0 == 1)
        });
        assert!(!has_city_fd, "exact miner must reject the broken FD");
    }

    #[test]
    fn es_correction_is_naive() {
        let mut d = db();
        d.relation_mut(RelId(0))
            .set_cell(rock_data::TupleId(0), AttrId(1), Value::str("999"));
        let reg = ModelRegistry::new();
        let schema = d.schema();
        let rules = RuleSet::new(
            rock_rees::parse_rules(
                "rule fd: Store(t) && Store(s) && t.city = s.city -> t.area_code = s.area_code",
                &schema,
            )
            .unwrap(),
        );
        let fixed = es_correct(&d, &rules, &reg);
        // the dirty cell is overwritten with a partner's value
        assert_eq!(
            fixed.cell(RelId(0), rock_data::TupleId(0), AttrId(1)),
            Some(&Value::str("010"))
        );
    }
}
