//! L005: blocking file I/O inside scheduler work closures. The closure
//! passed to `execute` runs on a worker thread; a blocked worker stalls
//! every unit queued behind it.

struct Cluster;

struct Unit {
    id: u64,
}

impl Cluster {
    fn execute<R>(&self, units: Vec<Unit>, work: impl Fn(&Unit) -> R) -> Vec<R> {
        units.iter().map(work).collect()
    }
}

fn spill_inside_worker(cluster: &Cluster, units: Vec<Unit>) -> Vec<u64> {
    cluster.execute(units, |u| {
        std::fs::write("/tmp/spill", u.id.to_le_bytes()).ok(); //~ L005
        u.id
    })
}

fn open_inside_worker(cluster: &Cluster, units: Vec<Unit>) -> Vec<u64> {
    cluster.execute(units, |u| {
        let _f = std::fs::File::open("/etc/hosts"); //~ L005
        u.id
    })
}

/// Clean: the I/O happens before dispatch, workers stay compute-only.
fn io_outside_worker(cluster: &Cluster, units: Vec<Unit>) -> Vec<u64> {
    std::fs::write("/tmp/manifest", b"units").ok();
    cluster.execute(units, |u| u.id * 2)
}
