//! L006: `.lock().unwrap()` propagates lock poisoning — one panicking
//! critical section cascades panics into every later user. Test code is
//! exempt (a poisoned lock in a failing test is already a failing test).

// lint:allow(L001) fixture: raw locks are needed to seed the L006 defects
use std::sync::{Mutex, RwLock};

struct Shared {
    items: Mutex<Vec<u64>>,
    table: RwLock<Vec<u64>>,
}

fn push(s: &Shared, v: u64) {
    s.items.lock().unwrap().push(v); //~ L006
}

fn total(s: &Shared) -> u64 {
    s.table.read().unwrap().iter().sum() //~ L006
}

fn replace(s: &Shared, rows: Vec<u64>) {
    *s.table.write().expect("table poisoned") = rows; //~ L006
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let s = Shared {
            items: Mutex::new(Vec::new()),
            table: RwLock::new(vec![1, 2]),
        };
        s.items.lock().unwrap().push(1);
        assert_eq!(total(&s), 3);
    }
}
