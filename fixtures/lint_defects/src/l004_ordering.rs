//! L004: store/load ordering mismatches on the same atomic field. The
//! `done` flag is published correctly and stays unflagged.

// lint:allow(L001) fixture: atomics are needed to seed the L004 defects
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Channel {
    ready: AtomicBool,
    seq: AtomicUsize,
    done: AtomicBool,
}

impl Channel {
    /// Publishes with Release…
    fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    /// …but the consumer reads Relaxed: the payload may not be visible.
    fn consume(&self) -> bool {
        self.ready.load(Ordering::Relaxed) //~ L004
    }

    /// The reader pairs Acquire…
    fn wait(&self) -> usize {
        self.seq.load(Ordering::Acquire)
    }

    /// …with a Relaxed store that publishes nothing.
    fn bump(&self) {
        self.seq.store(1, Ordering::Relaxed); //~ L004
    }

    /// Consistent Release/Acquire pair: clean.
    fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    fn finished(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}
