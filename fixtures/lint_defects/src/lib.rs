//! Seeded concurrency defects, one module per lint code. Every `//~ LXXX`
//! trailing marker names the diagnostic `rock-lint --fixtures` must emit
//! on that exact line (100% recall), and any diagnostic without a marker
//! is a false positive (zero-FP precision). The `shim` module is a
//! miniature `rock_crystal::sync` stand-in so the L002 defects have real
//! ranks to violate — its own raw-primitive use is suppressed with
//! justified `lint:allow` comments, which doubles as coverage for the
//! suppression mechanism itself.

#![allow(dead_code, unused_imports, unused_variables)]

mod l001_raw_primitives;
mod l002_lock_rank;
mod l003_seqcst;
mod l004_ordering;
mod l005_blocking_io;
mod l006_poison;
mod shim;
