//! L001: raw synchronization primitives that must go through the shim.
//! `Arc` and `mpsc` imports stay unflagged — the shim does not wrap them.

use std::sync::atomic::AtomicU64; //~ L001
use std::sync::Arc;
use std::sync::Mutex; //~ L001
use std::sync::RwLock; //~ L001
use std::sync::{mpsc, Condvar}; //~ L001

struct Holder {
    counter: Arc<AtomicU64>,
    state: Mutex<u64>,
    table: RwLock<Vec<u64>>,
    wakeup: Condvar,
    tx: mpsc::Sender<u64>,
}

fn inline_paths() {
    let _m = std::sync::Mutex::new(0u8); //~ L001
}

#[cfg(any())] // never compiled (crossbeam is not a fixture dependency) — but still linted
fn inline_backoff() {
    let _b = crossbeam::utils::Backoff::new(); //~ L001
}
