//! Miniature `rock_crystal::sync` stand-in: just enough for the L002
//! defects to declare ranked locks. Raw primitive use in here is the whole
//! point, so it carries justified suppressions.

// lint:allow(L001) the fixture shim mirrors rock_crystal::sync and must wrap a raw mutex
use std::sync::Mutex;

/// Rank order the L002 defects violate. Mirrors the real `LockRank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRank {
    Low = 10,
    Mid = 20,
    High = 30,
}

pub struct RankedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    pub fn new(rank: LockRank, value: T) -> RankedMutex<T> {
        RankedMutex {
            rank,
            // lint:allow(L001) fixture shim: the wrapped primitive lives here by design
            inner: Mutex::new(value),
        }
    }

    // lint:allow(L001) fixture shim: exposing the raw guard keeps the fixture dependency-free
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        // lint:allow(L006) fixture shim: poison recovery is the shim's job
        self.inner.lock().unwrap()
    }

    pub fn rank(&self) -> LockRank {
        self.rank
    }
}
