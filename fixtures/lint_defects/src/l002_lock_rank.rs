//! L002: nested acquisitions that violate the static `LockRank` order.
//! The rank table is harvested from the `RankedMutex::new(LockRank::…)`
//! constructor sites below, exactly as in the real workspace.

use crate::shim::{LockRank, RankedMutex};

struct Pipeline {
    queue: RankedMutex<Vec<u64>>,
    index: RankedMutex<u64>,
    journal: RankedMutex<Vec<String>>,
}

impl Pipeline {
    fn new() -> Pipeline {
        Pipeline {
            queue: RankedMutex::new(LockRank::Low, Vec::new()),
            index: RankedMutex::new(LockRank::Mid, 0),
            journal: RankedMutex::new(LockRank::High, Vec::new()),
        }
    }

    /// Correct: ranks strictly increase inward.
    fn drain(&self) {
        let q = self.queue.lock();
        let mut idx = self.index.lock();
        *idx += q.len() as u64;
    }

    /// Defect: takes the High journal, then reaches back down for Low.
    fn log_then_drain(&self) {
        let mut j = self.journal.lock();
        let q = self.queue.lock(); //~ L002
        j.push(format!("{} queued", q.len()));
    }

    /// Defect: re-acquires the same rank while still holding it.
    fn double_index(&self) {
        let a = self.index.lock();
        let b = self.index.lock(); //~ L002
        let _ = (*a, *b);
    }

    /// Correct: the first guard is dropped before descending.
    fn log_after_release(&self) {
        {
            let mut j = self.journal.lock();
            j.push("checkpoint".to_owned());
        }
        let q = self.queue.lock();
        drop(q);
        let j = self.journal.lock();
        let _ = j.len();
    }
}
