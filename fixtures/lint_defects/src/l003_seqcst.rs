//! L003: `SeqCst` is quarantined behind a justified `lint:allow(L003)`
//! comment; bare uses (and suppressions with no reason) are flagged.

// lint:allow(L001) fixture: atomics are needed to seed the L003 defects
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static READY: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn publish() {
    READY.store(true, Ordering::SeqCst); //~ L003
}

fn observe() -> u64 {
    EPOCH.load(Ordering::SeqCst) //~ L003
}

fn justified() -> u64 {
    // lint:allow(L003) the Dekker-style handshake needs a total store order with READY
    EPOCH.fetch_add(1, Ordering::SeqCst)
}
