#!/usr/bin/env python3
"""Trajectory regression gate for the figure harness.

Compares a freshly generated ``results/BENCH_trajectory.json`` (written by
``cargo run -p rock-bench --bin figures``) against the committed baseline
``results/BENCH_trajectory_baseline.json`` and exits non-zero on a
regression:

* **Wall time** is compared as per-panel *shares* of the run's total wall
  seconds, not absolute seconds — CI runners vary wildly in speed, but a
  panel suddenly eating a 20%+ larger slice of the run than it used to is
  a real algorithmic regression, not runner noise.  A panel fails when its
  share exceeds baseline share * (1 + SLACK) + ABS_SLACK.
* **Semantic metrics** (the ``metrics`` map: speedup ratios, checkpoint /
  resume-point counts) are runner-speed invariant, so they gate directly:
  a metric fails when it degrades by more than SLACK relative to baseline.
  Direction matters — for ratios named ``*_ratio`` where bigger is better
  (chase_delta_valuation_ratio) a *drop* fails, for overhead-style ratios
  (durability_overhead_ratio, chaos_wall_ratio) a *rise* fails, and counts
  (checkpoints, resume_points) fail only when they *shrink* (lost
  durability coverage).

Bootstrap mode: while the baseline carries ``"bootstrap": true`` the gate
only reports (always exit 0).  Refresh the baseline from a green CI run's
``BENCH_trajectory.json`` artifact and drop the flag to arm the gate.

Usage: check_trajectory.py [current.json [baseline.json]]
"""

import json
import sys

SLACK = 0.20  # 20% relative tolerance (the ISSUE's regression budget)
# 10-point absolute share slack.  Shares are gated against an *armed*
# baseline now: with only four gated panels in the trajectory run a small
# absolute cushion turns runner jitter on 1-4s panels into spurious
# failures, so the share gate catches panels whose slice of the run grows
# by double digits (a real algorithmic regression) while the semantic
# metrics below stay tight at SLACK.
ABS_SLACK = 0.10


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def shares(panels):
    total = sum(p.get("wall_seconds", 0.0) for p in panels.values())
    if total <= 0:
        return {}
    return {k: p.get("wall_seconds", 0.0) / total for k, p in panels.items()}


# Overhead-style metrics where a RISE is a regression; everything else
# ending in _ratio is treated as bigger-is-better, bare counts as
# must-not-shrink.
RISE_IS_BAD = {
    "durability_overhead_ratio",
    "chaos_wall_ratio",
    "wal_disk_bound_ratio",
    "recovery_wall_ratio",
}

# Metrics that must stay *exactly* zero: any nonzero current value is a
# regression regardless of slack.  Checked before the base<=0 guard below,
# which would otherwise silently skip a zero-valued baseline.
ZERO_METRICS = {
    "lint_violations",
}


def check_metric(name, base, cur):
    """Return a failure message or None."""
    if name in ZERO_METRICS:
        if cur != 0:
            return f"metric {name} must stay 0, got {cur:g}"
        return None
    if base <= 0:
        return None
    if name in RISE_IS_BAD:
        if cur > base * (1.0 + SLACK):
            return f"metric {name} rose {base:.3f} -> {cur:.3f} (> {SLACK:.0%} slack)"
    elif name.endswith("_ratio"):
        if cur < base * (1.0 - SLACK):
            return f"metric {name} fell {base:.3f} -> {cur:.3f} (> {SLACK:.0%} slack)"
    else:  # counts: losing durability coverage is the regression
        if cur < base * (1.0 - SLACK):
            return f"metric {name} shrank {base:.0f} -> {cur:.0f} (> {SLACK:.0%} slack)"
    return None


def main(argv):
    cur_path = argv[1] if len(argv) > 1 else "results/BENCH_trajectory.json"
    base_path = (
        argv[2] if len(argv) > 2 else "results/BENCH_trajectory_baseline.json"
    )
    cur = load(cur_path)
    if cur is None:
        print(f"FAIL: no current trajectory at {cur_path}")
        return 1
    base = load(base_path)
    if base is None:
        print(f"WARN: no baseline at {base_path}; nothing to gate against")
        return 0
    bootstrap = bool(base.get("bootstrap"))

    failures = []
    cur_shares = shares(cur.get("panels", {}))
    base_shares = shares(base.get("panels", {}))
    for panel, bshare in sorted(base_shares.items()):
        cshare = cur_shares.get(panel)
        if cshare is None:
            failures.append(f"panel {panel} missing from current run")
            continue
        limit = bshare * (1.0 + SLACK) + ABS_SLACK
        status = "ok" if cshare <= limit else "REGRESSED"
        print(
            f"panel {panel:<12} share {bshare:.3f} -> {cshare:.3f}"
            f" (limit {limit:.3f}) {status}"
        )
        if cshare > limit:
            failures.append(
                f"panel {panel} wall share {bshare:.3f} -> {cshare:.3f}"
                f" exceeds limit {limit:.3f}"
            )

    base_metrics = base.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    for name, bval in sorted(base_metrics.items()):
        cval = cur_metrics.get(name)
        if cval is None:
            failures.append(f"metric {name} missing from current run")
            continue
        msg = check_metric(name, float(bval), float(cval))
        print(f"metric {name:<32} {float(bval):.3f} -> {float(cval):.3f}"
              f" {'REGRESSED' if msg else 'ok'}")
        if msg:
            failures.append(msg)

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        if bootstrap:
            print(
                "\nbaseline is bootstrap-mode (estimated numbers): reporting"
                " only, not failing the build. Refresh the baseline from a"
                " green run's BENCH_trajectory.json artifact to arm the gate."
            )
            return 0
        return 1
    print("\ntrajectory within budget" + (" (bootstrap baseline)" if bootstrap else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
