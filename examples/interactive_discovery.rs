//! Interactive top-k rule discovery (paper §5.2 "Prior knowledge learning"
//! and the anytime algorithm of [37]): Rock shows batches of discovered
//! REE++s, a (simulated) data-quality expert labels them useful or not,
//! and the learned preference model re-ranks what comes next.
//!
//! ```text
//! cargo run --release --example interactive_discovery
//! ```

use rock::core::{RockConfig, RockSystem};
use rock::discovery::levelwise::DiscoveryConfig;
use rock::discovery::topk::AnytimeMiner;
use rock::workloads::workload::GenConfig;

fn main() {
    let w = rock::workloads::logistics::generate(&GenConfig {
        rows: 240,
        error_rate: 0.08,
        seed: 17,
        trusted_per_rel: 24,
    });
    let sys = RockSystem::new(RockConfig {
        discovery: DiscoveryConfig {
            min_support: 1e-4,
            min_confidence: 0.9,
            max_preconditions: 2,
            ..Default::default()
        },
        sample_ratio: 0.4,
        ..RockConfig::default()
    });
    let schema = w.dirty.schema();

    // mine the candidate pool once (offline)
    let pool = sys.discover(&w).rules;
    println!("candidate pool: {} REE++s\n", pool.len());

    // the simulated expert: likes rules about the `region` attribute,
    // dislikes constant-heavy rules (a stand-in for domain preference)
    let expert_likes =
        |rule: &rock::rees::Rule| -> bool { rule.display(&schema).to_string().contains("region") };

    let mut miner = AnytimeMiner::new(pool.rules.clone());
    let mut liked_total = 0usize;
    for round in 0..3 {
        let batch = miner.next_k(4);
        if batch.is_empty() {
            break;
        }
        println!("— round {round}: Rock proposes {} rules —", batch.len());
        let mut liked_in_round = 0usize;
        for idx in batch {
            let rule = miner.rule(idx).clone();
            let useful = expert_likes(&rule);
            println!(
                "  [{}] {}",
                if useful { "keep" } else { "skip" },
                rule.display(&schema)
            );
            if useful {
                liked_in_round += 1;
            }
            miner.feedback(idx, useful);
        }
        liked_total += liked_in_round;
        println!("  expert kept {liked_in_round}/4; preference model retrained\n");
    }
    println!(
        "{} rules remain un-reviewed; expert kept {} so far",
        miner.remaining(),
        liked_total
    );

    // one-shot diversified top-k with the accumulated feedback
    let labeled: Vec<(String, bool)> = pool
        .rules
        .iter()
        .map(|r| (r.name.clone(), expert_likes(r)))
        .collect();
    let top = sys.discover_top_k(&w, 5, &labeled[..labeled.len().min(8)]);
    println!("\ndiversified top-5 under the learned preferences:");
    for r in top.iter() {
        println!("  {}", r.display(&schema));
    }
    println!("\ninteractive_discovery OK");
}
