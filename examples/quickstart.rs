//! Quickstart: define a schema, write two REE++s in the rule DSL, detect
//! the violations, and let the chase repair them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::{AttrType, Database, DatabaseSchema, RelId, RelationSchema, Value};
use rock::detect::Detector;
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};

fn main() {
    // 1. Schema: one Store table (a slice of the paper's example).
    let schema = DatabaseSchema::new(vec![RelationSchema::of(
        "Store",
        &[
            ("name", AttrType::Str),
            ("city", AttrType::Str),
            ("area_code", AttrType::Str),
        ],
    )]);

    // 2. Data with two injected errors: a wrong area code and a missing one.
    let mut db = Database::new(&schema);
    let store = db.rel_id("Store").unwrap();
    {
        let r = db.relation_mut(store);
        r.insert_row(vec![
            Value::str("Apple Jingdong"),
            Value::str("Beijing"),
            Value::str("010"),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("Huawei Flagship"),
            Value::str("Beijing"),
            Value::str("021"),
        ])
        .unwrap(); // wrong
        r.insert_row(vec![
            Value::str("Nike China"),
            Value::str("Shanghai"),
            Value::str("021"),
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("Adidas Outlet"),
            Value::str("Shanghai"),
            Value::Null,
        ])
        .unwrap(); // missing
        r.insert_row(vec![
            Value::str("Lenovo Hub"),
            Value::str("Beijing"),
            Value::str("010"),
        ])
        .unwrap();
    }

    // 3. Two REE++s in the rule DSL: a CFD-style functional dependency and
    //    a φ12-style constant rule (paper §2.3, Example 6).
    let rules_text = "\
rule fd_city_code: Store(t) && Store(s) && t.city = s.city -> t.area_code = s.area_code
rule beijing_code: Store(t) && t.city = 'Beijing' -> t.area_code = '010'
";
    let rules = RuleSet::new(parse_rules(rules_text, &schema).expect("rules parse"));
    let registry = ModelRegistry::new();

    // 4. Error detection: violations of the rules flag suspect cells.
    let report = Detector::new(&rules, &registry).detect(&db);
    println!("detected {} violations; flagged cells:", report.count());
    let mut flagged: Vec<_> = report.flagged_cells.iter().collect();
    flagged.sort();
    for cell in flagged {
        let rel = db.relation(cell.rel);
        println!(
            "  {}[row {}].{} = {}",
            rel.schema.name,
            cell.tid.0,
            rel.schema.attr_name(cell.attr),
            rel.cell(cell.tid, cell.attr).unwrap()
        );
    }

    // 5. Error correction: the chase deduces fixes (majority within the
    //    FD group + the constant rule) and materializes them.
    let engine = ChaseEngine::new(&rules, &registry, ChaseConfig::default());
    let result = engine.run(&db, &[]);
    println!(
        "\nchase: {} rounds, {} fixes, {} conflicts",
        result.rounds, result.steps, result.conflicts
    );
    for (cell, old, new) in &result.changes {
        let rel = result.db.relation(cell.rel);
        println!(
            "  fixed {}[row {}].{}: {} -> {}",
            rel.schema.name,
            cell.tid.0,
            rel.schema.attr_name(cell.attr),
            old,
            new
        );
    }

    // 6. The repaired table.
    println!("\nrepaired Store table:");
    for t in result.db.relation(RelId(0)).iter() {
        println!(
            "  {:16} {:10} {}",
            t.values[0].to_string(),
            t.values[1].to_string(),
            t.values[2]
        );
    }
    assert_eq!(
        result
            .db
            .cell(store, rock::data::TupleId(1), rock::data::AttrId(2)),
        Some(&Value::str("010")),
        "the wrong Beijing code must be repaired"
    );
    assert_eq!(
        result
            .db
            .cell(store, rock::data::TupleId(3), rock::data::AttrId(2)),
        Some(&Value::str("021")),
        "the missing Shanghai code must be imputed from the FD group"
    );
    println!("\nquickstart OK");
}
