//! The paper's running example: the e-commerce database of Tables 1–3
//! (Person / Store / Transaction) with the erroneous values the paper
//! highlights in bold, cleaned by REE++s φ1, φ2, φ4, φ12, φ13, φ14, φ15 —
//! reproducing the interaction chain of Example 7:
//!
//!   ER helps CR:  φ1 identifies p1 = p2 (same discount code), so φ13
//!                 fixes Christine's truncated address;
//!   CR helps TD:  φ4 ranks "single" before "married";
//!   TD helps MI:  φ14 imputes George's missing home address from his
//!                 spouse's most current one;
//!   MI helps ER:  φ15 then identifies p3 = p4 (same name + address).
//!
//! ```text
//! cargo run --example paper_example
//! ```

use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::{AttrId, AttrType, Database, DatabaseSchema, Eid, RelationSchema, TupleId, Value};
use rock::ml::pair::NgramPairModel;
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};
use std::sync::Arc;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::of(
            "Person",
            &[
                ("pid", AttrType::Str),
                ("LN", AttrType::Str),
                ("FN", AttrType::Str),
                ("gender", AttrType::Str),
                ("home", AttrType::Str),
                ("status", AttrType::Str),
                ("spouse", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "Store",
            &[
                ("sid", AttrType::Str),
                ("name", AttrType::Str),
                ("type", AttrType::Str),
                ("location", AttrType::Str),
                ("accu_sales", AttrType::Float),
                ("area_code", AttrType::Str),
            ],
        ),
        RelationSchema::of(
            "Trans",
            &[
                ("pid", AttrType::Str),
                ("sid", AttrType::Str),
                ("com", AttrType::Str),
                ("mfg", AttrType::Str),
                ("price", AttrType::Float),
                ("date", AttrType::Date),
            ],
        ),
    ])
}

fn date(s: &str) -> Value {
    Value::Date(rock::data::value::parse_date(s).unwrap())
}

fn main() {
    let schema = schema();
    let mut db = Database::new(&schema);
    let person = db.rel_id("Person").unwrap();
    let store = db.rel_id("Store").unwrap();
    let trans = db.rel_id("Trans").unwrap();

    // Table 1 (Person). t2's home "5 West Road" is the truncated error;
    // t5 (George, p4) misses home/status/spouse.
    {
        let r = db.relation_mut(person);
        let rows: Vec<Vec<Value>> = vec![
            vec![
                "p1".into(),
                "Jones".into(),
                "Christine".into(),
                "F".into(),
                "5 Beijing West Road".into(),
                "single".into(),
                "n/a".into(),
            ],
            vec![
                "p2".into(),
                "Smith".into(),
                "Christine".into(),
                "F".into(),
                "5 West Road".into(),
                "single".into(),
                "p3".into(),
            ],
            vec![
                "p2".into(),
                "Smith".into(),
                "Christine".into(),
                "F".into(),
                "12 Beijing Road".into(),
                "married".into(),
                "p4".into(),
            ],
            vec![
                "p3".into(),
                "Smith".into(),
                "George".into(),
                "M".into(),
                "12 Beijing Road".into(),
                "married".into(),
                "p2".into(),
            ],
            vec![
                "p4".into(),
                "Smith".into(),
                "George".into(),
                "M".into(),
                Value::Null,
                Value::Null,
                Value::Null,
            ],
        ];
        for (i, row) in rows.into_iter().enumerate() {
            r.insert(Eid(i as u32), row).unwrap();
        }
    }

    // Table 2 (Store), abbreviated.
    {
        let r = db.relation_mut(store);
        r.insert_row(vec![
            "s1".into(),
            "Apple Jingdong Self-run".into(),
            "Electron.".into(),
            "Beijing".into(),
            Value::Float(15e6),
            Value::Null,
        ])
        .unwrap();
        r.insert_row(vec![
            "s3".into(),
            "Huawei Flagship".into(),
            "Electron.".into(),
            "Beijing".into(),
            Value::Float(11e6),
            Value::Null,
        ])
        .unwrap();
    }

    // Table 3 (Transaction): t12/t13 share discount code 41 — the same
    // person used it twice under different pids (the φ1 ER evidence).
    {
        let r = db.relation_mut(trans);
        r.insert_row(vec![
            "p1".into(),
            "s2".into(),
            "IPhone 13".into(),
            "Apple".into(),
            Value::Float(9000.0),
            date("2020-12-18"),
        ])
        .unwrap();
        r.insert_row(vec![
            "p1".into(),
            "s1".into(),
            "IPhone 14 (Discount ID 41)".into(),
            "Apple".into(),
            Value::Float(6500.0),
            date("2021-11-11"),
        ])
        .unwrap();
        r.insert_row(vec![
            "p2".into(),
            "s1".into(),
            "IPhone 14 (Discount Code 41)".into(),
            "Apple".into(),
            Value::Null,
            date("2021-11-11"),
        ])
        .unwrap();
        r.insert_row(vec![
            "p3".into(),
            "s3".into(),
            "Mate X2 (Limited Sold)".into(),
            "Huawei".into(),
            Value::Float(5200.0),
            date("2023-08-12"),
        ])
        .unwrap();
        // t15's manufactory "Apple" for a Mate X2 is the CR error φ2 fixes
        r.insert_row(vec![
            "p4".into(),
            "s3".into(),
            "Mate X2 (Limited Sold)".into(),
            "Apple".into(),
            Value::Null,
            date("2023-08-12"),
        ])
        .unwrap();
    }

    // The rules (paper Examples 1, 2, 6, 7). MER is the discount-code ER
    // model — an n-gram matcher suffices for "Discount ID 41" vs
    // "Discount Code 41".
    let rules_text = "\
rule phi1: Trans(t) && Trans(s) && ml:MER(t[com], s[com]) && t.date = s.date && t.sid = s.sid -> t.pid = s.pid
rule phi2: Trans(t) && Trans(s) && t.com = s.com -> t.mfg = s.mfg
rule phi4: Person(t) && Person(s) && t.status = 'single' && s.status = 'married' -> t <=[status] s
rule phi12: Store(t) && t.location = 'Beijing' -> t.area_code = '010'
rule phi13: Person(t) && Person(s) && t.pid = s.pid && t.FN = s.FN -> t.home = s.home
rule phi14: Person(tp) && Person(t) && Person(s) && tp.pid = t.pid && t.spouse = s.pid && tp <=[home] t -> s.home = t.home
rule phi15: Person(t) && Person(s) && t.LN = s.LN && t.FN = s.FN && t.home = s.home -> t.eid = s.eid
rule phi_home_order: Person(t) && Person(s) && t.pid = s.pid && t.status = 'single' && s.status = 'married' -> t <=[home] s
";
    let registry = ModelRegistry::new();
    registry.register_pair("MER", Arc::new(NgramPairModel::with_threshold(0.8)));
    let mut rules = RuleSet::new(parse_rules(rules_text, &schema).expect("rules parse"));
    rules.resolve(&registry).expect("MER registered");

    // Ground truth Γ=: transaction t14 (the Huawei Mate X2 sale) is
    // validated master data — without it, the φ2 conflict between the two
    // Mate X2 manufactories is a tie the chase would have to guess at;
    // with it, the fix is *certain* (paper §4.1: fixes are logical
    // consequences of the rules and the ground truth).
    let trusted = vec![rock::data::GlobalTid::new(trans, TupleId(3))];
    let engine = ChaseEngine::new(&rules, &registry, ChaseConfig::default());
    let result = engine.run(&db, &trusted);

    println!(
        "chase finished: {} rounds, {} steps, {} merges, {} conflicts\n",
        result.rounds,
        result.steps,
        result.merged_pairs.len(),
        result.conflicts
    );
    for (cell, old, new) in &result.changes {
        let rel = result.db.relation(cell.rel);
        println!(
            "fix: {}[{}].{} : '{}' -> '{}'",
            rel.schema.name,
            cell.tid.0,
            rel.schema.attr_name(cell.attr),
            old,
            new
        );
    }

    // Example 7's outcomes:
    // (1) ER helps CR — φ1 identified the two pids, φ13 fixed the address.
    //     (2) CR helps TD — home of row 2 ranked most current via φ4/φ_home_order.
    // (3) TD helps MI — George (p4, row 4) got his spouse's current home.
    // (4) MI helps ER — p3 and p4 rows identified.
    let home = AttrId(4);
    let george_home = result.db.cell(person, TupleId(4), home).unwrap();
    println!("\nGeorge (p4) home imputed: {george_home}");
    assert_eq!(george_home, &Value::str("12 Beijing Road"));
    assert!(
        result.fixes.same_entity(
            rock::chase::EntityKey::new(person, Eid(3)),
            rock::chase::EntityKey::new(person, Eid(4))
        ),
        "MI helps ER: p3 and p4 must be identified"
    );
    // φ2 fixed the Mate X2 manufactory
    assert_eq!(
        result.db.cell(trans, TupleId(4), AttrId(3)),
        Some(&Value::str("Huawei"))
    );
    // φ12 imputed Beijing stores' area codes
    assert_eq!(
        result.db.cell(store, TupleId(0), AttrId(5)),
        Some(&Value::str("010"))
    );
    println!("all Example 7 interactions reproduced OK");
}
