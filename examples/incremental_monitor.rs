//! Incremental monitoring (paper §3: "the users may opt to employ Rock to
//! monitor changes to D, and incrementally detect and fix errors in
//! response to updates"). A stream of ΔD batches arrives; each batch is
//! checked by incremental detection — touching only valuations that
//! involve updated tuples — and the flagged errors are repaired by an
//! incremental chase.
//!
//! ```text
//! cargo run --example incremental_monitor
//! ```

use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::{
    AttrId, AttrType, Database, DatabaseSchema, Delta, Eid, RelId, RelationSchema, Update, Value,
};
use rock::detect::Detector;
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};

fn main() {
    let schema = DatabaseSchema::new(vec![RelationSchema::of(
        "Order",
        &[
            ("oid", AttrType::Str),
            ("city", AttrType::Str),
            ("region", AttrType::Str),
        ],
    )]);
    let mut db = Database::new(&schema);
    let rel = RelId(0);
    for i in 0..200 {
        let (city, region) = match i % 3 {
            0 => ("Beijing", "North"),
            1 => ("Shanghai", "East"),
            _ => ("Shenzhen", "South"),
        };
        db.relation_mut(rel)
            .insert_row(vec![
                Value::str(format!("O{i:04}")),
                Value::str(city),
                Value::str(region),
            ])
            .unwrap();
    }

    let rules = RuleSet::new(
        parse_rules(
            "rule fd: Order(t) && Order(s) && t.city = s.city -> t.region = s.region",
            &schema,
        )
        .unwrap(),
    );
    let registry = ModelRegistry::new();
    let detector = Detector::new(&rules, &registry);

    // A stream of update batches; the third one carries an error.
    let batches = [
        Delta::new(vec![Update::Insert {
            rel,
            eid: Eid(1000),
            values: vec![
                Value::str("O9001"),
                Value::str("Beijing"),
                Value::str("North"),
            ],
        }]),
        Delta::new(vec![Update::SetCell {
            rel,
            tid: rock::data::TupleId(0),
            attr: AttrId(0),
            value: Value::str("O0000-v2"),
        }]),
        Delta::new(vec![Update::Insert {
            rel,
            eid: Eid(1001),
            values: vec![
                Value::str("O9002"),
                Value::str("Beijing"),
                Value::str("West"),
            ], // wrong region
        }]),
    ];

    for (i, delta) in batches.iter().enumerate() {
        let inserted = db.apply(delta).unwrap();
        let report = detector.detect_incremental(&db, delta, &inserted);
        println!(
            "batch {i}: {} updates -> {} incremental violations",
            delta.len(),
            report.count()
        );
        if report.count() > 0 {
            // incremental chase repairs in response to the same ΔD
            let engine = ChaseEngine::new(&rules, &registry, ChaseConfig::default());
            let res = engine.run(&db, &[]);
            for (cell, old, new) in &res.changes {
                println!(
                    "  repaired row {} {}: '{}' -> '{}'",
                    cell.tid.0,
                    res.db.relation(cell.rel).schema.attr_name(cell.attr),
                    old,
                    new
                );
            }
            db = res.db;
        }
    }

    // the stream left the database consistent
    let final_report = detector.detect(&db);
    assert_eq!(final_report.count(), 0, "monitor must leave no violations");
    println!("incremental_monitor OK — database consistent after the stream");
}
