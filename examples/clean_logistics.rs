//! End-to-end cleaning of the Logistics application (paper §6): generate
//! the synthetic workload, discover rules, detect errors, run the chase,
//! and score against the known injected errors.
//!
//! ```text
//! cargo run --release --example clean_logistics
//! ```

use rock::core::{RockConfig, RockSystem, Variant};
use rock::discovery::levelwise::DiscoveryConfig;
use rock::workloads::workload::GenConfig;

fn main() {
    // 1. The workload: one wide Shipment table with injected typos, nulls,
    //    stale statuses and duplicated scan events — all recorded, so the
    //    scores below are exact.
    let w = rock::workloads::logistics::generate(&GenConfig {
        rows: 300,
        error_rate: 0.08,
        seed: 7,
        trusted_per_rel: 30,
    });
    println!(
        "workload: {} tuples, {} injected errors ({} corrupted, {} nulled, {} stale, {} duplicates)",
        w.dirty.total_tuples(),
        w.truth.total(),
        w.truth.corrupted.len(),
        w.truth.nulled.len(),
        w.truth.stale.len(),
        w.truth.duplicate_pairs.len()
    );

    let sys = RockSystem::new(RockConfig {
        discovery: DiscoveryConfig {
            min_support: 1e-5,
            min_confidence: 0.9,
            max_preconditions: 2,
            ..Default::default()
        },
        sample_ratio: 0.25,
        ..RockConfig::default()
    });

    // 2. Rule discovery (the offline phase of §3).
    let discovered = sys.discover(&w);
    println!(
        "\ndiscovered {} REE++s from {} candidates in {:.2}s; a few of them:",
        discovered.rules.len(),
        discovered.candidates_evaluated,
        discovered.wall_seconds
    );
    let schema = w.dirty.schema();
    for rule in discovered.rules.iter().take(5) {
        println!("  {}", rule.display(&schema));
    }

    // 3. Error detection with the curated per-task rules.
    for task_name in ["RS", "RR", "SN", "RClean"] {
        let task = w.task(task_name).unwrap().clone();
        let out = sys.detect(&w, &task);
        println!(
            "detect {task_name:7}: F1 = {:.3} (P {:.3} / R {:.3}), {} cells flagged",
            out.metrics.f1(),
            out.metrics.precision(),
            out.metrics.recall(),
            out.report.flagged_cells.len()
        );
    }

    // 4. Error correction: the chase, scored cell-by-cell against the
    //    clean oracle.
    let task = w.task("RClean").unwrap().clone();
    let out = sys.correct(&w, &task);
    println!(
        "\ncorrect RClean: F1 = {:.3} (P {:.3} / R {:.3}), {} cells changed in {} rounds",
        out.metrics.f1(),
        out.metrics.precision(),
        out.metrics.recall(),
        out.changes,
        out.rounds
    );

    // 5. The ablation of §6 Exp-3 in miniature.
    for variant in [Variant::RockNoMl, Variant::RockSeq, Variant::RockNoC] {
        let sys = RockSystem::new(RockConfig {
            variant,
            ..RockConfig::default()
        });
        let out = sys.correct(&w, &task);
        println!(
            "correct RClean [{}]: F1 = {:.3}",
            variant.name(),
            out.metrics.f1()
        );
    }
    assert!(out.metrics.f1() > 0.6, "Rock must clean most of Logistics");
    println!("\nclean_logistics OK");
}
