//! Fault-tolerance properties of the Crystal substrate (DESIGN.md §Crystal
//! fault model): seeded deterministic fault injection must never change
//! what a computation produces — only how long it takes. Covers the
//! scheduler (retry, quarantine, speculation, node crash), lease-based
//! membership, and the end-to-end cleaning pipeline under chaos.

use proptest::prelude::*;
use rock::core::{RockConfig, RockSystem};
use rock::crystal::work::{Partition, WorkUnit};
use rock::crystal::{Cluster, ClusterConfig, FaultPlan, KvStore, UnitError};
use rock::workloads::workload::GenConfig;
use std::sync::Arc;
use std::time::Duration;

fn units(n: u32) -> Vec<WorkUnit> {
    (0..n)
        .map(|i| WorkUnit::new(i % 7, vec![Partition::new(0, i * 10, (i + 1) * 10)]))
        .collect()
}

/// Seed for chaos runs: `ROCK_CHAOS_SEED` when CI sweeps a matrix,
/// otherwise a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("ROCK_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seed and any recoverable fault mix, the non-quarantined
    /// results equal the fault-free run's results (here: everything, since
    /// first-attempt-only faults always recover within one retry).
    #[test]
    fn faulted_results_equal_fault_free(
        seed in any::<u64>(),
        panic_prob in 0.0f64..0.3,
        transient_prob in 0.0f64..0.3,
        workers in 1usize..5,
        n_units in 20u32..80,
    ) {
        let us = units(n_units);
        let clean = Cluster::new(workers).execute(us.clone(), |u| Ok(u.placement_hash()));
        let plan = FaultPlan::seeded(seed)
            .with_panics(panic_prob)
            .with_transients(transient_prob);
        let chaotic = Cluster::with_config(
            workers,
            ClusterConfig::default().with_fault_plan(plan),
        )
        .execute(us, |u| Ok(u.placement_hash()));
        prop_assert!(chaotic.is_complete(), "failures: {:?}", chaotic.failures);
        prop_assert_eq!(clean.results, chaotic.results);
        prop_assert_eq!(chaotic.stats.faults.quarantined, 0);
    }

    /// A poison unit is quarantined after exactly `max_retries + 1`
    /// attempts, for any retry budget; every other unit commits.
    #[test]
    fn quarantine_after_exact_retry_budget(
        seed in any::<u64>(),
        max_retries in 0u32..5,
        poisoned in 0u32..20,
    ) {
        let cfg = ClusterConfig::default()
            .with_fault_plan(FaultPlan::seeded(seed).with_poison(vec![poisoned]))
            .with_max_retries(max_retries);
        let out = Cluster::with_config(2, cfg).execute(units(20), |u| Ok(u.rule));
        prop_assert_eq!(out.failures.len(), 1);
        let fl = &out.failures[0];
        prop_assert_eq!(fl.unit, poisoned as usize);
        prop_assert_eq!(fl.attempts, max_retries + 1);
        prop_assert!(matches!(fl.error, UnitError::Panic(_)));
        prop_assert!(out.results[poisoned as usize].is_none());
        prop_assert_eq!(
            out.results.iter().filter(|r| r.is_some()).count(),
            19
        );
        prop_assert_eq!(out.stats.faults.quarantined, 1);
    }

    /// Transient typed errors from the unit body itself (not injected) are
    /// retried like faults and recover when they stop.
    #[test]
    fn own_transient_errors_retried(seed in any::<u64>(), workers in 1usize..4) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let first_tries: Vec<AtomicU32> = (0..30).map(|_| AtomicU32::new(0)).collect();
        let salt = seed; // fail a seed-dependent subset on the first attempt
        let out = Cluster::with_config(
            workers,
            ClusterConfig::default().with_max_retries(2),
        )
        .execute(units(30), |u| {
            let i = u.partitions[0].start as usize / 10;
            let flaky = (salt.wrapping_mul(i as u64 + 1)).wrapping_mul(0x9E3779B97F4A7C15) >> 63 == 1;
            if flaky && first_tries[i].fetch_add(1, Ordering::Relaxed) == 0 {
                return Err(UnitError::Transient("cold cache".into()));
            }
            Ok(u.placement_hash())
        });
        prop_assert!(out.is_complete(), "failures: {:?}", out.failures);
        prop_assert_eq!(out.results.iter().filter(|r| r.is_some()).count(), 30);
    }
}

#[test]
fn node_crash_reassigns_and_membership_persists() {
    // Controlled placement: all units hash to one owner; crashing it must
    // push the queue through the reassignment injector, and the dead node
    // must stay dead for subsequent rounds on the same cluster.
    let probe = WorkUnit::new(7, vec![Partition::new(0, 0, 10)]);
    let victim = Cluster::new(4).owner_of(&probe);
    let us: Vec<WorkUnit> = (0..32)
        .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
        .collect();
    let cluster = Cluster::with_config(
        4,
        ClusterConfig::default()
            .with_fault_plan(FaultPlan::seeded(chaos_seed()).with_crash(victim, 0)),
    );
    let out = cluster.execute(us, |u| {
        let mut acc = u.rule as u64;
        for i in 0..100_000u64 {
            acc = acc.wrapping_add(i).rotate_left(5);
        }
        Ok(acc)
    });
    assert!(out.is_complete(), "failures: {:?}", out.failures);
    assert_eq!(out.stats.faults.node_crashes, 1);
    assert!(out.stats.faults.reassigned > 0, "{:?}", out.stats.faults);
    assert_eq!(out.stats.executed[victim], 0);
    assert_eq!(cluster.alive_workers(), 3);
    // round 2 on the same cluster: placement avoids the dead node
    let out2 = cluster.execute(units(40), |u| Ok(u.rule));
    assert!(out2.is_complete());
    assert_eq!(out2.stats.executed[victim], 0);
    for i in 0..50u32 {
        let u = WorkUnit::new(0, vec![Partition::new(0, i * 3, i * 3 + 2)]);
        assert_ne!(cluster.owner_of(&u), victim);
    }
}

#[test]
fn lease_expiry_removes_node_and_watch_observes_it() {
    let kv = Arc::new(KvStore::new());
    let mut watch = kv.watch_prefix("nodes/");
    let cluster = Cluster::new(3).with_kv(Arc::clone(&kv));
    assert_eq!(cluster.register_leased(4), 3);
    let put_events = watch.poll(&kv);
    assert_eq!(put_events.len(), 3, "watch must see all registrations");
    // everyone heartbeats for a while: nothing expires
    for _ in 0..6 {
        kv.tick();
        cluster.keep_alive_all();
    }
    assert_eq!(cluster.sync_membership(), 3);
    // then all heartbeats stop: every lease lapses
    for _ in 0..5 {
        kv.tick();
    }
    assert_eq!(cluster.sync_membership(), 0);
    let deletions = watch.poll(&kv);
    assert_eq!(deletions.len(), 3, "watch must see all expirations");
    assert_eq!(kv.scan_prefix("nodes/").len(), 0);
}

#[test]
fn crash_revokes_lease_and_watchers_see_departure() {
    let kv = Arc::new(KvStore::new());
    let probe = WorkUnit::new(7, vec![Partition::new(0, 0, 10)]);
    let victim = Cluster::new(3).owner_of(&probe);
    let cluster = Cluster::with_config(
        3,
        ClusterConfig::default()
            .with_fault_plan(FaultPlan::seeded(chaos_seed()).with_crash(victim, 0)),
    )
    .with_kv(Arc::clone(&kv));
    let mut watch = kv.watch_prefix("nodes/");
    assert_eq!(cluster.register_leased(100), 3);
    watch.poll(&kv); // drain the registration puts
    let us: Vec<WorkUnit> = (0..16)
        .map(|_| WorkUnit::new(7, vec![Partition::new(0, 0, 10)]))
        .collect();
    let out = cluster.execute(us, |u| Ok(u.rule));
    assert!(out.is_complete());
    let events = watch.poll(&kv);
    assert!(
        events.iter().any(|e| e.key() == format!("nodes/{victim}")),
        "lease revocation must delete the dead node's key: {events:?}"
    );
    assert!(kv.get(&format!("nodes/{victim}")).is_none());
}

#[test]
fn e2e_repairs_byte_identical_under_chaos() {
    // The acceptance property: a full detect+correct pipeline under
    // injected panics, transients, stragglers and a node crash repairs the
    // database byte-for-byte identically to an undisturbed run.
    let w = rock::workloads::logistics::generate(&GenConfig {
        rows: 180,
        error_rate: 0.08,
        seed: 2,
        trusted_per_rel: 20,
    });
    let task = w.tasks.last().unwrap().clone();
    let run = |cluster: ClusterConfig| {
        RockSystem::new(RockConfig {
            workers: 4,
            cluster,
            ..RockConfig::default()
        })
        .correct(&w, &task)
    };
    let clean = run(ClusterConfig::default());
    let plan = FaultPlan::chaos(chaos_seed()).with_crash(1, 2);
    let chaotic = run(ClusterConfig::default().with_fault_plan(plan));
    assert!(
        chaotic.unit_failures.is_empty(),
        "recoverable chaos must not quarantine: {:?}",
        chaotic.unit_failures
    );
    assert_eq!(
        serde_json::to_string(&clean.repaired).unwrap(),
        serde_json::to_string(&chaotic.repaired).unwrap(),
        "repairs diverged under fault injection (seed {})",
        chaos_seed()
    );
    assert_eq!(
        (clean.rounds, clean.changes, clean.conflicts),
        (chaotic.rounds, chaotic.changes, chaotic.conflicts)
    );
}

#[test]
fn e2e_detection_identical_under_chaos() {
    let w = rock::workloads::bank::generate(&GenConfig {
        rows: 150,
        error_rate: 0.08,
        seed: 1,
        trusted_per_rel: 20,
    });
    let task = w.tasks.last().unwrap().clone();
    let run = |cluster: ClusterConfig| {
        RockSystem::new(RockConfig {
            workers: 3,
            cluster,
            ..RockConfig::default()
        })
        .detect(&w, &task)
    };
    let clean = run(ClusterConfig::default());
    let chaotic = run(ClusterConfig::default().with_fault_plan(FaultPlan::chaos(chaos_seed())));
    assert!(chaotic.report.unit_failures.is_empty());
    assert_eq!(clean.report.count(), chaotic.report.count());
    assert_eq!(clean.report.flagged_cells, chaotic.report.flagged_cells);
    assert_eq!(clean.metrics.f1(), chaotic.metrics.f1());
}

#[test]
fn chase_survives_quarantine_with_degraded_rounds() {
    // A poison unit voids its rule's round; the chase must neither abort
    // nor commit partial emissions, and the failure must be reported.
    let w = rock::workloads::logistics::generate(&GenConfig {
        rows: 120,
        error_rate: 0.08,
        seed: 2,
        trusted_per_rel: 20,
    });
    let task = w.tasks.last().unwrap().clone();
    let out = RockSystem::new(RockConfig {
        workers: 2,
        cluster: ClusterConfig::default()
            .with_fault_plan(FaultPlan::seeded(chaos_seed()).with_poison(vec![0]))
            .with_max_retries(1),
        ..RockConfig::default()
    })
    .correct(&w, &task);
    // unit 0 of every cluster round is poisoned, so at least one failure
    // must be on record, and the run still terminates with a database.
    assert!(
        !out.unit_failures.is_empty(),
        "poisoned unit must surface as a quarantine"
    );
    assert!(out.fault_stats.quarantined > 0);
    assert!(out.rounds > 0);
}

#[test]
fn straggler_speculation_preserves_results() {
    let plan = FaultPlan::seeded(chaos_seed()).with_latency(1.0, Duration::from_millis(20));
    let cfg = ClusterConfig {
        fault_plan: Some(plan),
        speculative_threshold: 2.0,
        ..ClusterConfig::default()
    };
    let us = units(12);
    let clean = Cluster::new(4).execute(us.clone(), |u| Ok(u.placement_hash()));
    let out = Cluster::with_config(4, cfg).execute(us, |u| Ok(u.placement_hash()));
    assert!(out.is_complete());
    assert_eq!(clean.results, out.results);
    assert!(out.stats.faults.speculative_won <= out.stats.faults.speculative_launched);
}
