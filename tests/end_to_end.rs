//! End-to-end integration over the three synthetic applications (paper
//! §6): generate → detect → correct, asserting the evaluation's headline
//! shapes hold — Rock beats its ablations where the paper says it should
//! and cleans most injected errors.

use rock::core::{RockConfig, RockSystem, Variant};
use rock::workloads::workload::GenConfig;
use rock::workloads::Workload;

fn cfg(seed: u64) -> GenConfig {
    GenConfig {
        rows: 180,
        error_rate: 0.08,
        seed,
        trusted_per_rel: 20,
    }
}

fn apps() -> Vec<Workload> {
    vec![
        rock::workloads::bank::generate(&cfg(1)),
        rock::workloads::logistics::generate(&cfg(2)),
        rock::workloads::sales::generate(&cfg(3)),
    ]
}

#[test]
fn detection_f1_above_bar_on_all_apps() {
    for w in apps() {
        let sys = RockSystem::new(RockConfig::default());
        let task = w.tasks.last().unwrap().clone();
        let out = sys.detect(&w, &task);
        assert!(
            out.metrics.f1() > 0.6,
            "{} detection F1 {:.3} too low",
            w.name,
            out.metrics.f1()
        );
    }
}

#[test]
fn correction_f1_above_bar_on_all_apps() {
    for w in apps() {
        let sys = RockSystem::new(RockConfig::default());
        let task = w.tasks.last().unwrap().clone();
        let out = sys.correct(&w, &task);
        assert!(
            out.metrics.f1() > 0.6,
            "{} correction F1 {:.3} too low",
            w.name,
            out.metrics.f1()
        );
    }
}

#[test]
fn rockseq_matches_rock_and_dominates_noc() {
    // Paper §6 Exp-3: "Rock has the same F-Measure as Rockseq because both
    // adopt the chasing procedure"; RocknoC loses the interactions.
    let w = rock::workloads::sales::generate(&cfg(9));
    let task = w.tasks.last().unwrap().clone();
    let f1 = |variant| {
        RockSystem::new(RockConfig {
            variant,
            ..RockConfig::default()
        })
        .correct(&w, &task)
        .metrics
        .f1()
    };
    let rock = f1(Variant::Rock);
    let seq = f1(Variant::RockSeq);
    let noc = f1(Variant::RockNoC);
    assert!((rock - seq).abs() < 0.02, "rock {rock:.3} vs seq {seq:.3}");
    assert!(noc < rock - 0.01, "noc {noc:.3} must trail rock {rock:.3}");
}

#[test]
fn ml_predicates_lift_sales_accuracy() {
    // Paper §6 Exp-2/3: dropping ML predicates costs accuracy, most
    // visibly on Sales (numeric TPWT + ML-dependent imputations).
    let w = rock::workloads::sales::generate(&cfg(11));
    let task = w.tasks.last().unwrap().clone();
    let rock = RockSystem::new(RockConfig::default()).correct(&w, &task);
    let noml = RockSystem::new(RockConfig {
        variant: Variant::RockNoMl,
        ..RockConfig::default()
    })
    .correct(&w, &task);
    assert!(
        rock.metrics.f1() > noml.metrics.f1() + 0.1,
        "rock {:.3} vs noml {:.3}",
        rock.metrics.f1(),
        noml.metrics.f1()
    );
}

#[test]
fn repaired_database_has_fewer_violations() {
    for w in apps() {
        let sys = RockSystem::new(RockConfig::default());
        let task = w.tasks.last().unwrap().clone();
        let before = sys.detect(&w, &task).report.count();
        let out = sys.correct(&w, &task);
        // re-detect on the repaired data
        let rules = w.rules_for(&task);
        let det = rock::detect::Detector::new(&rules, &w.registry);
        let after = det.detect(&out.repaired).count();
        assert!(
            after < before / 2,
            "{}: violations {before} -> {after}, expected a big drop",
            w.name
        );
    }
}

#[test]
fn workloads_are_deterministic_across_generations() {
    let a = rock::workloads::bank::generate(&cfg(5));
    let b = rock::workloads::bank::generate(&cfg(5));
    assert_eq!(a.truth.total(), b.truth.total());
    assert_eq!(a.dirty.total_tuples(), b.dirty.total_tuples());
    let sys = RockSystem::new(RockConfig::default());
    let task_a = a.tasks.last().unwrap().clone();
    let task_b = b.tasks.last().unwrap().clone();
    let fa = sys.correct(&a, &task_a).metrics;
    let fb = sys.correct(&b, &task_b).metrics;
    assert_eq!((fa.tp, fa.fp, fa.fn_), (fb.tp, fb.fp, fb.fn_));
}
