//! Property tests for the data substrate: the Value total order really is
//! total, hashing is consistent with equality, and CSV round-trips
//! arbitrary relations.

use proptest::prelude::*;
use rock::data::csvio::{read_relation, write_relation};
use rock::data::database::Interner;
use rock::data::value::{civil_from_days, days_from_civil};
use rock::data::{AttrType, Relation, RelationSchema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // finite floats only (CSV text round-trip; NaN is unrepresentable)
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        (-300_000i32..300_000).prop_map(Value::Date),
        "[a-zA-Z0-9 _.-]{0,16}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total order: antisymmetric, transitive, total.
    #[test]
    fn value_order_is_total(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // totality + antisymmetry
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // transitivity
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Hash is consistent with structural equality (Int/Float cross-kind
    /// equality included).
    #[test]
    fn value_hash_consistent(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Civil date conversion round-trips.
    #[test]
    fn civil_date_roundtrip(z in -500_000i32..500_000) {
        let (y, m, d) = civil_from_days(z);
        prop_assert_eq!(days_from_civil(y, m, d), z);
    }

    /// CSV write → read preserves every cell of a string/int relation.
    /// (Floats are excluded here: shortest-roundtrip formatting is exact
    /// for f64 but kept out to keep the generator simple.)
    #[test]
    fn csv_roundtrips_relations(
        rows in prop::collection::vec(
            ("[a-zA-Z0-9 _.,'-]{0,20}", prop::option::of(any::<i64>())),
            0..30,
        ),
    ) {
        let schema = RelationSchema::of("T", &[("s", AttrType::Str), ("n", AttrType::Int)]);
        let mut rel = Relation::new(schema.clone());
        for (s, n) in &rows {
            // empty strings read back as Null by the documented ETL rule;
            // normalize the expectation
            rel.insert_row(vec![
                Value::str(s),
                n.map(Value::Int).unwrap_or(Value::Null),
            ]).unwrap();
        }
        let mut buf = Vec::new();
        write_relation(&rel, &mut buf).unwrap();
        let mut interner = Interner::new();
        let back = read_relation(schema, buf.as_slice(), &mut interner).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (a, b) in rel.iter().zip(back.iter()) {
            let expect_s = match a.values[0].as_str() {
                // ETL rule: empty / "null" / "NULL" fields become Null
                Some("") | Some("null") | Some("NULL") => Value::Null,
                _ => a.values[0].clone(),
            };
            prop_assert_eq!(&b.values[0], &expect_s);
            prop_assert_eq!(&b.values[1], &a.values[1]);
        }
    }
}
