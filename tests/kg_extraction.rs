//! End-to-end knowledge-graph extraction (paper §2.3 / Example 3, rule φ7):
//! `Store(t) && vertex(x) && her:HER(t, x) && match(t.location, x.ρ)
//!  -> t.location = val(x.ρ)` — align tuples with KG vertices via
//! heterogeneous ER, then pull missing attribute values out of the graph.

use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::{
    AttrId, AttrType, Database, DatabaseSchema, RelId, RelationSchema, TupleId, Value,
};
use rock::kg::Graph;
use rock::ml::her::HerModel;
use rock::ml::ModelRegistry;
use rock::rees::eval::find_violations;
use rock::rees::{parse_rules, EvalContext, RuleSet};
use std::sync::Arc;

fn setup() -> (Database, Graph, ModelRegistry, RuleSet) {
    let schema = DatabaseSchema::new(vec![RelationSchema::of(
        "Store",
        &[
            ("sid", AttrType::Str),
            ("name", AttrType::Str),
            ("location", AttrType::Str),
        ],
    )]);
    let mut db = Database::new(&schema);
    {
        let r = db.relation_mut(RelId(0));
        r.insert_row(vec![
            Value::str("s1"),
            Value::str("Apple Jingdong"),
            Value::str("Beijing"),
        ])
        .unwrap();
        // missing location — the extraction target
        r.insert_row(vec![
            Value::str("s2"),
            Value::str("Huawei Flagship"),
            Value::Null,
        ])
        .unwrap();
        // wrong location — the extraction check flags it
        r.insert_row(vec![
            Value::str("s3"),
            Value::str("Nike China"),
            Value::str("Beijing"),
        ])
        .unwrap();
    }

    // the Wikipedia stand-in
    let mut g = Graph::new("Wiki");
    let beijing = g.add_vertex(Value::str("Beijing"), "City");
    let shanghai = g.add_vertex(Value::str("Shanghai"), "City");
    for (name, city) in [
        ("Apple Jingdong", beijing),
        ("Huawei Flagship", beijing),
        ("Nike China", shanghai),
    ] {
        let v = g.add_vertex(Value::str(name), "Store");
        g.add_edge(v, "LocationAt", city);
    }

    let reg = ModelRegistry::new();
    reg.register_her("HER", Arc::new(HerModel::for_kind("Store")));
    let mut rules = RuleSet::new(
        parse_rules(
            "rule phi7: Store(t) && vertex(x) && her:HER(t, x) && match(t.location, x.LocationAt) -> t.location = val(x.LocationAt)",
            &schema,
        )
        .unwrap(),
    );
    rules.resolve(&reg).unwrap();
    (db, g, reg, rules)
}

#[test]
fn detection_flags_missing_and_wrong_locations() {
    let (db, g, reg, rules) = setup();
    let ctx = EvalContext::new(&db, &reg).with_graph(&g);
    let violations = find_violations(&rules.rules[0], &ctx);
    let tids: Vec<u32> = violations.iter().map(|h| h.tuples[0].tid.0).collect();
    assert!(tids.contains(&1), "missing location flagged: {tids:?}");
    assert!(tids.contains(&2), "wrong location flagged: {tids:?}");
    assert!(!tids.contains(&0), "correct row not flagged: {tids:?}");
}

#[test]
fn chase_extracts_values_from_graph() {
    let (db, g, reg, rules) = setup();
    let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default()).with_graph(&g);
    let res = engine.run(&db, &[]);
    assert_eq!(
        res.db.cell(RelId(0), TupleId(1), AttrId(2)),
        Some(&Value::str("Beijing")),
        "missing location extracted via HER + val(x.LocationAt)"
    );
    assert_eq!(
        res.db.cell(RelId(0), TupleId(2), AttrId(2)),
        Some(&Value::str("Shanghai")),
        "wrong location repaired from the graph"
    );
    // re-chasing is a no-op
    let again = engine.run(&res.db, &[]);
    assert!(again.changes.is_empty());
}

#[test]
fn no_graph_means_no_extraction() {
    let (db, _, reg, rules) = setup();
    // without a graph attached the extraction rule cannot fire, and must
    // not corrupt anything
    let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
    let res = engine.run(&db, &[]);
    assert!(res.changes.is_empty());
    assert_eq!(
        res.db.cell(RelId(0), TupleId(1), AttrId(2)),
        Some(&Value::Null)
    );
}
