//! Crash-consistency suite for the segmented WAL + incremental-checkpoint
//! durability stack (`rock::chase::wal` / `rock::chase::checkpoint` over
//! `rock::crystal::FaultVfs`): a recorded fault-free run yields an I/O
//! trace, and a crash injected at every sampled trace point must leave a
//! directory from which recovery is byte-identical to the uninterrupted
//! oracle. Segment rotation and compaction are transparent; incremental
//! (delta) checkpoints resume at every round; corrupted checkpoint files
//! are CRC-rejected with fallback to an earlier marker; transient I/O
//! errors retry to `Recovered`, persistent ones degrade to in-memory
//! without corrupting fixes; and durable incremental sessions fold ΔD
//! batches across crashes.

use proptest::prelude::*;
use rock::chase::{
    list_segments, locate, wal_bytes, ChaseConfig, ChaseEngine, ChaseResult, DurabilityConfig,
    WalHealth,
};
use rock::crystal::{FaultVfs, IoOpKind, StorageFaultPlan};
use rock::data::{
    AttrType, Database, DatabaseSchema, Delta, Eid, GlobalTid, RelId, RelationSchema, TupleId,
    Update, Value,
};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};
use std::path::{Path, PathBuf};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

/// The durability-suite rule set: propagation (r1, r2), a constant rule
/// (r3), an ER merge (r4) and a null-fill (r5), so the WAL carries every
/// fix kind across several rounds.
fn rules(schema: &DatabaseSchema) -> RuleSet {
    RuleSet::new(
        parse_rules(
            "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
             rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
             rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
             rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
             rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'",
            schema,
        )
        .unwrap(),
    )
}

fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(if b % 3 == 0 {
                "bz".into()
            } else {
                format!("b{}", b % 3)
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

fn default_rows() -> Vec<(u8, u8, u8, Option<u8>)> {
    vec![
        (0, 0, 1, None),
        (0, 1, 0, Some(1)),
        (1, 2, 2, None),
        (1, 0, 0, Some(0)),
        (2, 1, 1, None),
        (2, 2, 0, None),
        (3, 0, 2, Some(1)),
        (3, 1, 0, None),
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rock-crashsim-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Canonical dump of everything the byte-identity contract covers.
fn canon(res: &ChaseResult) -> String {
    serde_json::to_string(&serde_json::json!({
        "rounds": res.rounds,
        "steps": res.steps,
        "conflicts": res.conflicts,
        "changes": res.changes,
        "merged_pairs": res.merged_pairs,
        "round_stats": res.round_stats,
        "fixes": res.fixes.to_snapshot(),
        "db": res.db,
    }))
    .unwrap()
}

/// `Database` deliberately has no `PartialEq` (interning makes structural
/// equality misleading) — byte-identity is compared on the serialized form.
fn db_json(db: &Database) -> String {
    serde_json::to_string(db).unwrap()
}

fn engine(rs: &RuleSet, reg: &ModelRegistry, dur: Option<DurabilityConfig>) -> ChaseEngine {
    ChaseEngine::new(
        rs,
        reg,
        ChaseConfig {
            durability: dur,
            ..ChaseConfig::default()
        },
    )
}

/// Small segments + compaction + delta checkpoints: the config the crash
/// sweep runs under, so rotation, retirement and delta-chain writes all
/// appear in the recorded trace.
fn sweep_cfg(dir: &Path, vfs: FaultVfs) -> DurabilityConfig {
    DurabilityConfig::new(dir)
        .with_vfs(vfs)
        .with_segment_bytes(256)
        .with_compaction(true)
        .with_full_every(2)
}

/// Evenly strided sample of at most `cap` points (always keeps the ends).
fn sample(points: &[u64], cap: usize) -> Vec<u64> {
    if points.len() <= cap {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(cap);
    for i in 0..cap {
        out.push(points[i * (points.len() - 1) / (cap - 1)]);
    }
    out
}

/// Tentpole: replay the recorded fault-free run with a crash injected at
/// every sampled I/O trace point — all structural ops (create / rename /
/// remove / dir-sync, the segment-switch and compaction and checkpoint
/// commit edges) plus an even stride over everything else. At each point
/// the crashed run must still repair byte-identically (durability
/// degrades, fixes never do) and recovery from the frozen directory must
/// match the uninterrupted oracle.
#[test]
fn crash_at_every_sampled_trace_point_recovers_byte_identical() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    // Fault-free recorded run: the crash plan's op universe.
    let rec_dir = fresh_dir("sweep-record");
    let rec_vfs = FaultVfs::recording();
    let durable = engine(&rs, &reg, Some(sweep_cfg(&rec_dir, rec_vfs.clone())));
    let first = durable.run(&db, &trusted);
    assert_eq!(canon(&first), want, "recorded run diverged from oracle");
    let s = first.wal.as_ref().expect("recorded run has a WalSummary");
    assert_eq!(s.health, WalHealth::Healthy);
    assert!(
        s.segments_rotated >= 1 && s.segments_compacted >= 1,
        "sweep config must exercise rotation + compaction (rotated {}, compacted {})",
        s.segments_rotated,
        s.segments_compacted
    );
    assert!(
        s.full_checkpoints >= 1 && s.delta_checkpoints >= 1,
        "sweep config must write both checkpoint kinds"
    );
    let trace = rec_vfs.trace();
    assert!(trace.len() >= 16, "trace too short to sweep");

    let structural: Vec<u64> = trace
        .iter()
        .filter(|t| {
            matches!(
                t.op,
                IoOpKind::Create | IoOpKind::Rename | IoOpKind::Remove | IoOpKind::SyncDir
            )
        })
        .map(|t| t.index)
        .collect();
    let everything: Vec<u64> = trace.iter().map(|t| t.index).collect();
    let mut points = sample(&structural, 20);
    points.extend(sample(&everything, 8));
    points.push(0);
    points.push(everything[everything.len() - 1]);
    points.sort_unstable();
    points.dedup();

    for &p in &points {
        let dir_p = fresh_dir(&format!("sweep-{p}"));
        let plan = StorageFaultPlan::seeded(11).with_crash_at_op(p);
        let crashed = engine(
            &rs,
            &reg,
            Some(sweep_cfg(&dir_p, FaultVfs::with_plan(plan))),
        )
        .run(&db, &trusted);
        assert_eq!(
            canon(&crashed),
            want,
            "crash at op {p} corrupted the repairs themselves"
        );
        let cw = crashed.wal.as_ref().unwrap();
        assert!(
            matches!(cw.health, WalHealth::Degraded { .. }),
            "crash at op {p} must degrade durability, got {:?}",
            cw.health
        );

        // Recovery: resume off the frozen directory with a clean vfs; if
        // nothing was durable yet, a fresh durable run is the fallback.
        let rec = engine(&rs, &reg, Some(sweep_cfg(&dir_p, FaultVfs::clean())));
        match rec.resume(&trusted) {
            Ok(resumed) => assert_eq!(
                canon(&resumed),
                want,
                "recovery after crash at op {p} diverged from oracle"
            ),
            Err(_) => {
                let _ = std::fs::remove_dir_all(&dir_p);
                std::fs::create_dir_all(&dir_p).unwrap();
                let fresh = engine(&rs, &reg, Some(sweep_cfg(&dir_p, FaultVfs::clean())))
                    .run(&db, &trusted);
                assert_eq!(
                    canon(&fresh),
                    want,
                    "fresh fallback after crash at op {p} diverged"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir_p);
    }
    let _ = std::fs::remove_dir_all(&rec_dir);
}

#[test]
fn segment_rotation_is_transparent_and_replay_idempotent() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("rotation");
    let cfg = DurabilityConfig::new(&dir).with_segment_bytes(256);
    let durable = engine(&rs, &reg, Some(cfg));
    let first = durable.run(&db, &trusted);
    assert_eq!(canon(&first), want);
    let s = first.wal.as_ref().unwrap();
    assert!(s.error.is_none(), "rotation run degraded: {:?}", s.error);
    assert!(
        s.segments_rotated >= 1,
        "256-byte budget must rotate at least once"
    );
    let segs = list_segments(&FaultVfs::clean(), &dir).unwrap();
    assert_eq!(segs.len() as u64, s.segments_rotated + 1);

    // Cross-segment read-back + resume land on the same state, and the
    // resumed rounds regenerate the concatenated log byte-for-byte.
    let before = wal_bytes(&dir).unwrap();
    for r in 1..=first.rounds as u64 {
        let resumed = durable
            .resume_at(&trusted, r)
            .unwrap_or_else(|e| panic!("resume at round {r} across segments failed: {e}"));
        assert_eq!(canon(&resumed), want, "segmented resume at {r} diverged");
        assert_eq!(
            before,
            wal_bytes(&dir).unwrap(),
            "segmented WAL not replay-idempotent at round {r}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_bounds_disk_and_preserves_resume() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("compaction");
    let mk = || {
        DurabilityConfig::new(&dir)
            .with_segment_bytes(256)
            .with_compaction(true)
    };
    let durable = engine(&rs, &reg, Some(mk()));
    let first = durable.run(&db, &trusted);
    assert_eq!(canon(&first), want);
    let s = first.wal.as_ref().unwrap();
    assert!(s.error.is_none(), "compaction run degraded: {:?}", s.error);
    assert!(
        s.segments_compacted >= 1,
        "full-every-round + tiny segments must retire something"
    );

    // Disk bound: everything on disk is the latest full checkpoint's
    // chain plus at most two live segments.
    let vfs = FaultVfs::clean();
    let rp = locate(&mk(), durable.fingerprint(), None).unwrap();
    let live = list_segments(&vfs, &dir).unwrap();
    assert!(
        live.len() <= 2,
        "compaction left {} live segments",
        live.len()
    );
    let mut on_disk: Vec<String> = vfs
        .list_dir(&dir)
        .unwrap()
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
        .filter(|n| n.starts_with("checkpoint-"))
        .collect();
    on_disk.sort();
    let mut chain = rp.chain.clone();
    chain.sort();
    assert_eq!(on_disk, chain, "stale checkpoint files survived compaction");

    // Resume over the compacted directory still reaches the oracle.
    let resumed = durable.resume(&trusted).unwrap();
    assert_eq!(canon(&resumed), want, "compacted resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_checkpoints_resume_at_every_round() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("delta-ckpt");
    let cfg = DurabilityConfig::new(&dir).with_full_every(3);
    let durable = engine(&rs, &reg, Some(cfg));
    let first = durable.run(&db, &trusted);
    assert_eq!(canon(&first), want);
    let s = first.wal.as_ref().unwrap();
    assert!(s.error.is_none());
    assert!(s.full_checkpoints >= 1, "chain needs a full to anchor");
    assert!(
        first.rounds < 3 || s.delta_checkpoints >= 1,
        "full_every=3 over {} rounds must write deltas",
        first.rounds
    );

    // Every round marker reconstructs through its delta chain.
    for r in 1..=first.rounds as u64 {
        let resumed = durable
            .resume_at(&trusted, r)
            .unwrap_or_else(|e| panic!("delta-chain resume at round {r} failed: {e}"));
        assert_eq!(
            canon(&resumed),
            want,
            "delta-chain resume at round {r} diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_io_errors_retry_to_recovered() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("transient");
    // Every fault transient; with dozens of write/sync ops at these rates
    // the fixed seed injects some (deterministically), and 8 retries make
    // retry exhaustion essentially impossible.
    let plan = StorageFaultPlan::seeded(5)
        .with_sync_errors(0.3)
        .with_torn_writes(0.2)
        .with_transient_fraction(1.0);
    let mut cfg = DurabilityConfig::new(&dir).with_vfs(FaultVfs::with_plan(plan));
    cfg.max_io_retries = 8;
    let durable = engine(&rs, &reg, Some(cfg));
    let res = durable.run(&db, &trusted);
    assert_eq!(canon(&res), want, "transient faults corrupted repairs");
    let s = res.wal.as_ref().unwrap();
    match &s.health {
        WalHealth::Recovered { io_retries } => assert!(*io_retries > 0),
        other => panic!("expected Recovered under transient faults, got {other:?}"),
    }
    assert!(s.io_retries > 0, "summary must count the retries");

    // The retried log is still a valid recovery source.
    let clean = DurabilityConfig::new(&dir);
    let resumed = engine(&rs, &reg, Some(clean)).resume(&trusted).unwrap();
    assert_eq!(canon(&resumed), want, "post-retry resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_fsync_failure_degrades_without_corrupting_fixes() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("enosync");
    let plan = StorageFaultPlan::seeded(5).with_sync_errors(1.0);
    let cfg = DurabilityConfig::new(&dir).with_vfs(FaultVfs::with_plan(plan));
    let res = engine(&rs, &reg, Some(cfg)).run(&db, &trusted);
    assert_eq!(canon(&res), want, "fsync failure corrupted repairs");
    let s = res.wal.as_ref().unwrap();
    assert!(
        matches!(s.health, WalHealth::Degraded { .. }),
        "persistent fsync failure must degrade, got {:?}",
        s.health
    );
    assert!(s.error.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoint_temp_files_are_garbage_collected() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let dir = fresh_dir("tmp-gc");
    // A crash between a checkpoint's temp write and its rename leaves the
    // temp file behind; the next open must reap it.
    std::fs::write(dir.join("checkpoint-000042.json.tmp"), b"stray").unwrap();
    let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let res = durable.run(&db, &trusted);
    let s = res.wal.as_ref().unwrap();
    assert!(s.error.is_none());
    assert!(
        s.temp_files_removed >= 1,
        "stale temp file not counted as removed"
    );
    assert!(
        !dir.join("checkpoint-000042.json.tmp").exists(),
        "stale temp file survived the open-time GC"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The three ΔD batches the session tests fold.
fn session_deltas() -> [Delta; 3] {
    [
        Delta::new(vec![Update::SetCell {
            rel: RelId(0),
            tid: TupleId(2),
            attr: rock::data::AttrId(1),
            value: Value::str("x"),
        }]),
        Delta::new(vec![Update::Insert {
            rel: RelId(0),
            eid: Eid(900_001),
            values: vec![
                Value::str("k1"),
                Value::str("a2"),
                Value::str("bz"),
                Value::Null,
            ],
        }]),
        Delta::new(vec![Update::SetCell {
            rel: RelId(0),
            tid: TupleId(4),
            attr: rock::data::AttrId(2),
            value: Value::str("bz"),
        }]),
    ]
}

#[test]
fn durable_session_matches_the_incremental_fold() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];
    let [d1, d2, d3] = session_deltas();

    // In-memory oracle: the fold run_incremental(run_incremental(..).db, ..).
    let mem = engine(&rs, &reg, None);
    let o1 = mem.run_incremental(&db, &trusted, &d1).unwrap();
    let o2 = mem.run_incremental(&o1.db, &trusted, &d2).unwrap();
    let o3 = mem.run_incremental(&o2.db, &trusted, &d3).unwrap();

    let dir = fresh_dir("session");
    let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let s1 = durable.run_incremental_durable(&db, &trusted, &d1).unwrap();
    assert_eq!(
        db_json(&s1.db),
        db_json(&o1.db),
        "batch 1 diverged from the fold"
    );
    assert_eq!(s1.wal.as_ref().unwrap().batch, 1);
    // `db` is ignored once a session exists — durable state is authoritative.
    let s2 = durable.run_incremental_durable(&db, &trusted, &d2).unwrap();
    assert_eq!(
        db_json(&s2.db),
        db_json(&o2.db),
        "batch 2 diverged from the fold"
    );
    assert_eq!(s2.wal.as_ref().unwrap().batch, 2);
    let s3 = durable.run_incremental_durable(&db, &trusted, &d3).unwrap();
    assert_eq!(
        db_json(&s3.db),
        db_json(&o3.db),
        "batch 3 diverged from the fold"
    );
    assert_eq!(s3.wal.as_ref().unwrap().batch, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_session_crash_mid_batch_resumes_mid_stream() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];
    let [d1, d2, d3] = session_deltas();

    let mem = engine(&rs, &reg, None);
    let o1 = mem.run_incremental(&db, &trusted, &d1).unwrap();
    let o2 = mem.run_incremental(&o1.db, &trusted, &d2).unwrap();
    let o3 = mem.run_incremental(&o2.db, &trusted, &d3).unwrap();

    // Dry run in a scratch directory to learn batch 2's op-trace length.
    // Batch 1's writes are deterministic, so the scratch and real
    // directories are byte-identical when batch 2 starts and the traces
    // line up op for op.
    let scratch = fresh_dir("session-crash-scratch");
    engine(&rs, &reg, Some(DurabilityConfig::new(&scratch)))
        .run_incremental_durable(&db, &trusted, &d1)
        .unwrap();
    let rec_vfs = FaultVfs::recording();
    engine(
        &rs,
        &reg,
        Some(DurabilityConfig::new(&scratch).with_vfs(rec_vfs.clone())),
    )
    .run_incremental_durable(&db, &trusted, &d2)
    .unwrap();
    let n = rec_vfs.trace().len() as u64;
    assert!(n >= 4, "batch 2 trace too short to crash inside");
    let _ = std::fs::remove_dir_all(&scratch);

    let dir = fresh_dir("session-crash");
    engine(&rs, &reg, Some(DurabilityConfig::new(&dir)))
        .run_incremental_durable(&db, &trusted, &d1)
        .unwrap();
    // Crash near the end of batch 2: its ΔD and early rounds are durable,
    // its tail is not. Repairs (when the call returns) are still the fold.
    let plan = StorageFaultPlan::seeded(27).with_crash_at_op(n - 2);
    let crashed = engine(
        &rs,
        &reg,
        Some(DurabilityConfig::new(&dir).with_vfs(FaultVfs::with_plan(plan))),
    )
    .run_incremental_durable(&db, &trusted, &d2);
    if let Ok(res) = &crashed {
        assert_eq!(
            db_json(&res.db),
            db_json(&o2.db),
            "crashed batch corrupted the repairs"
        );
        assert!(
            matches!(res.wal.as_ref().unwrap().health, WalHealth::Degraded { .. }),
            "crash mid-batch must degrade durability"
        );
    }

    // Mid-stream resume: the session finishes batch 2 durably from the
    // frozen directory, then batch 3 continues the fold.
    let clean = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let resumed = clean.resume(&trusted).unwrap();
    assert_eq!(
        db_json(&resumed.db),
        db_json(&o2.db),
        "mid-stream resume diverged from fold"
    );
    let rp = locate(&DurabilityConfig::new(&dir), clean.fingerprint(), None).unwrap();
    assert_eq!(rp.checkpoint.batch, 2, "resume must land inside batch 2");
    let s3 = clean.run_incremental_durable(&db, &trusted, &d3).unwrap();
    assert_eq!(
        db_json(&s3.db),
        db_json(&o3.db),
        "post-crash batch 3 diverged from the fold"
    );
    assert_eq!(s3.wal.as_ref().unwrap().batch, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    // Satellite: a corrupted checkpoint document — bit-flipped or
    // truncated anywhere — must be CRC-rejected by `locate`, which falls
    // back to an earlier round marker, and recovery from that marker is
    // still byte-identical to the uninterrupted oracle.
    #[test]
    fn corrupt_checkpoint_is_rejected_and_recovery_falls_back(
        pick in 0usize..10_000,
        flip in any::<bool>(),
        case in 0u32..1_000_000,
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let reg = ModelRegistry::new();
        let db = build_db(&default_rows());
        let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

        let oracle = engine(&rs, &reg, None).run(&db, &trusted);
        let want = canon(&oracle);

        let dir = fresh_dir(&format!("ckpt-prop-{case}"));
        let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
        let first = durable.run(&db, &trusted);
        prop_assert_eq!(&canon(&first), &want);
        prop_assert!(first.rounds >= 2, "need an earlier marker to fall back to");

        let cfg = DurabilityConfig::new(&dir);
        let rp0 = locate(&cfg, durable.fingerprint(), None).unwrap();
        let newest_round = rp0.checkpoint.round;
        let path = dir.join(&rp0.name);
        let bytes = std::fs::read(&path).unwrap();
        if flip {
            let mut b = bytes.clone();
            let i = pick % b.len();
            b[i] ^= 0x20;
            std::fs::write(&path, &b).unwrap();
        } else {
            // Truncate to a strict prefix (possibly empty).
            std::fs::write(&path, &bytes[..pick % bytes.len()]).unwrap();
        }

        let rp1 = locate(&cfg, durable.fingerprint(), None).unwrap();
        prop_assert!(
            rp1.checkpoint.round < newest_round,
            "corrupt checkpoint was not rejected (round {} vs {})",
            rp1.checkpoint.round, newest_round
        );

        let resumed = durable.resume(&trusted).unwrap();
        prop_assert_eq!(&canon(&resumed), &want, "fallback recovery diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
