//! The acceptance test of the bitset-cache rewrite: on a seeded workload
//! instance (ML predicates included), the cached levelwise miner and the
//! tuple re-scan miner return **byte-identical** rule sets — same rules,
//! same names, same measures, same order — with identical search-space
//! accounting. Also exercises the degenerate budget (everything spills)
//! to show the budget trades only time, never results.

use rock::data::{AttrId, RelId};
use rock::discovery::levelwise::{Discoverer, DiscoveryConfig, DiscoveryReport};
use rock::discovery::space::{MlSignature, PredicateSpace, SpaceConfig};
use rock::workloads::workload::GenConfig;
use rock::workloads::Workload;

fn logistics() -> Workload {
    rock::workloads::logistics::generate(&GenConfig {
        rows: 120,
        error_rate: 0.08,
        seed: 7,
        trusted_per_rel: 10,
    })
}

/// Name-based ML hints → index-based signatures (same conversion as the
/// core system's discovery driver).
fn signatures(w: &Workload) -> Vec<MlSignature> {
    let schema = w.dirty.schema();
    w.ml_hints
        .iter()
        .filter_map(|h| {
            let rel = schema.rel_id(&h.rel)?;
            let attrs: Vec<AttrId> = h
                .attrs
                .iter()
                .filter_map(|a| schema.relation(rel).attr_id(a))
                .collect();
            Some(MlSignature {
                model: h.model.clone(),
                rel,
                attrs,
            })
        })
        .collect()
}

fn mine(w: &Workload, cfg: DiscoveryConfig) -> DiscoveryReport {
    let sigs = signatures(w);
    let space = PredicateSpace::build(&w.dirty, RelId(0), &sigs, &SpaceConfig::default());
    Discoverer::new(&w.registry, cfg).mine_relation(&w.dirty, RelId(0), &space)
}

fn assert_identical(cached: &DiscoveryReport, scan: &DiscoveryReport) {
    assert_eq!(
        serde_json::to_string(&cached.rules).unwrap(),
        serde_json::to_string(&scan.rules).unwrap(),
        "cached and scan rule sets must serialize identically"
    );
    assert_eq!(cached.candidates_evaluated, scan.candidates_evaluated);
    assert_eq!(cached.pruned, scan.pruned);
}

#[test]
fn cached_miner_matches_scan_on_logistics() {
    let w = logistics();
    let cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        ..Default::default()
    };
    let cached = mine(&w, cfg.clone());
    let scan = mine(
        &w,
        DiscoveryConfig {
            use_bitset_cache: false,
            ..cfg
        },
    );
    assert!(!cached.rules.is_empty(), "workload should yield rules");
    assert_identical(&cached, &scan);
    let stats = cached.cache.expect("bitset path reports cache stats");
    assert!(
        stats.hits > 0,
        "level-2 candidates must reuse cached bitsets"
    );
    assert!(stats.bytes_peak > 0);
    assert!(scan.cache.is_none());
}

#[test]
fn cached_miner_matches_scan_with_parallel_workers() {
    let w = logistics();
    let cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        workers: 4,
        ..Default::default()
    };
    let cached = mine(&w, cfg.clone());
    let scan = mine(
        &w,
        DiscoveryConfig {
            use_bitset_cache: false,
            ..cfg
        },
    );
    assert_identical(&cached, &scan);
}

#[test]
fn zero_budget_spills_everything_but_stays_exact() {
    let w = logistics();
    let cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        cache_budget_bytes: 0,
        ..Default::default()
    };
    let cached = mine(&w, cfg.clone());
    let scan = mine(
        &w,
        DiscoveryConfig {
            use_bitset_cache: false,
            ..cfg
        },
    );
    assert_identical(&cached, &scan);
    let stats = cached.cache.expect("cache stats even when nothing fits");
    assert_eq!(stats.entries, 0, "no entry fits a zero budget");
    assert_eq!(stats.hits, 0);
    assert!(stats.spills > 0, "every build must spill");
    assert_eq!(stats.bytes, 0);
}

#[test]
fn tight_budget_evicts_but_stays_exact() {
    let w = logistics();
    // a few KiB: big enough to hold some unary bitsets, far too small for
    // the pair-domain ones — forces both residency and eviction traffic
    let cfg = DiscoveryConfig {
        min_support: 1e-4,
        min_confidence: 0.9,
        max_preconditions: 2,
        cache_budget_bytes: 4 << 10,
        ..Default::default()
    };
    let cached = mine(&w, cfg.clone());
    let scan = mine(
        &w,
        DiscoveryConfig {
            use_bitset_cache: false,
            ..cfg
        },
    );
    assert_identical(&cached, &scan);
    let stats = cached.cache.expect("cache stats");
    assert!(stats.bytes <= 4 << 10, "residency respects the budget");
    assert!(
        stats.spills + stats.evictions > 0,
        "budget pressure observed"
    );
}
