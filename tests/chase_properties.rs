//! Property tests for the chase (paper §4.1): the Church–Rosser property —
//! the chase result does not depend on the order rules are supplied — plus
//! idempotence and fix-store validity.

use proptest::prelude::*;
use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::{
    AttrId, AttrType, Database, DatabaseSchema, RelId, RelationSchema, TupleId, Value,
};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

fn rules(schema: &DatabaseSchema) -> Vec<rock::rees::Rule> {
    parse_rules(
        "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
         rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
         rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
         rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
         rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'",
        schema,
    )
    .unwrap()
}

/// Build a database from a compact spec: each row is (k, a, b, c) drawn
/// from tiny alphabets so rules interact heavily.
fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(if b % 3 == 0 {
                "bz".into()
            } else {
                format!("b{}", b % 3)
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

fn db_fingerprint(db: &Database) -> Vec<String> {
    let mut rows: Vec<String> = db
        .relation(RelId(0))
        .iter()
        .map(|t| {
            t.values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Church–Rosser: permuting the rule order never changes the result.
    #[test]
    fn chase_is_church_rosser(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..12),
        perm_seed in 0u64..1000,
    ) {
        let schema = schema();
        let base_rules = rules(&schema);
        let db = build_db(&rows);
        let reg = ModelRegistry::new();

        // reference order
        let r1 = RuleSet::new(base_rules.clone());
        let engine = ChaseEngine::new(&r1, &reg, ChaseConfig::default());
        let reference = db_fingerprint(&engine.run(&db, &[]).db);

        // permuted order (deterministic shuffle from the seed)
        let mut permuted = base_rules;
        let n = permuted.len();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            permuted.swap(i, (s as usize) % (i + 1));
        }
        let r2 = RuleSet::new(permuted);
        let engine = ChaseEngine::new(&r2, &reg, ChaseConfig::default());
        let shuffled = db_fingerprint(&engine.run(&db, &[]).db);

        prop_assert_eq!(reference, shuffled);
    }

    /// Idempotence: chasing the chased database changes nothing.
    #[test]
    fn chase_is_idempotent(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..10),
    ) {
        let schema = schema();
        let rs = RuleSet::new(rules(&schema));
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let engine = ChaseEngine::new(&rs, &reg, ChaseConfig::default());
        let first = engine.run(&db, &[]);
        let second = engine.run(&first.db, &[]);
        prop_assert!(second.changes.is_empty(), "second chase changed {:?}", second.changes);
        // same-relation ER results are materialized into the eids, so the
        // re-run rediscovers no same-relation merges (cross-relation
        // identities live only in the fix store and may legitimately be
        // re-deduced).
        let same_rel = second
            .merged_pairs
            .iter()
            .filter(|(a, b)| a.rel == b.rel)
            .count();
        prop_assert_eq!(same_rel, 0);
    }

    /// The fix store stays valid (distinctness never contradicts merges).
    #[test]
    fn fix_store_valid(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..10),
    ) {
        let schema = schema();
        let rs = RuleSet::new(rules(&schema));
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let engine = ChaseEngine::new(&rs, &reg, ChaseConfig::default());
        let res = engine.run(&db, &[]);
        prop_assert!(res.fixes.is_valid());
        prop_assert!(res.rounds <= ChaseConfig::default().max_rounds);
    }

    /// Trusted (ground-truth) non-null cells are never overwritten.
    #[test]
    fn trusted_cells_never_overwritten(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 3..10),
        trusted_idx in 0usize..3,
    ) {
        let schema = schema();
        let rs = RuleSet::new(rules(&schema));
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let tid = TupleId(trusted_idx.min(rows.len() - 1) as u32);
        let trusted = vec![rock::data::GlobalTid::new(RelId(0), tid)];
        let before: Vec<Value> = db.relation(RelId(0)).get(tid).unwrap().values.clone();
        let engine = ChaseEngine::new(&rs, &reg, ChaseConfig::default());
        let res = engine.run(&db, &trusted);
        let after = res.db.relation(RelId(0)).get(tid).unwrap();
        for (i, (b, a)) in before.iter().zip(&after.values).enumerate() {
            if !b.is_null() {
                prop_assert_eq!(b, a, "trusted cell {} changed", i);
            }
        }
    }

    /// Parallel chase (4 workers, finer partitions) ≡ sequential chase.
    #[test]
    fn parallel_equals_sequential(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..10),
    ) {
        let schema = schema();
        let rs = RuleSet::new(rules(&schema));
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let seq = ChaseEngine::new(&rs, &reg, ChaseConfig::default()).run(&db, &[]);
        let par = ChaseEngine::new(
            &rs,
            &reg,
            ChaseConfig { workers: 4, partitions_per_rule: 8, ..ChaseConfig::default() },
        )
        .run(&db, &[]);
        prop_assert_eq!(db_fingerprint(&seq.db), db_fingerprint(&par.db));
    }
}

/// Deterministic regression: the r1→r2→r3 cascade needs ≥2 rounds and all
/// three fixes land.
#[test]
fn cascading_rules_propagate() {
    let schema = schema();
    let rs = RuleSet::new(rules(&schema));
    let mut db = Database::new(&schema);
    {
        let r = db.relation_mut(RelId(0));
        // same k; a differs (majority x); b differs; c null
        r.insert_row(vec![
            Value::str("k0"),
            Value::str("x"),
            Value::str("bz"),
            Value::Null,
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("k0"),
            Value::str("x"),
            Value::str("bz"),
            Value::Null,
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("k0"),
            Value::str("a1"),
            Value::str("b1"),
            Value::Null,
        ])
        .unwrap();
    }
    let reg = ModelRegistry::new();
    let engine = ChaseEngine::new(&rs, &reg, ChaseConfig::default());
    let res = engine.run(&db, &[]);
    // r1: a majority → x everywhere; r3: a=x → c=cx; r2: b equalized
    for t in res.db.relation(RelId(0)).iter() {
        assert_eq!(t.get(AttrId(1)), &Value::str("x"));
        assert_eq!(t.get(AttrId(2)), &Value::str("bz"));
        assert_eq!(t.get(AttrId(3)), &Value::str("cx"));
    }
    assert!(res.rounds >= 2);
}
