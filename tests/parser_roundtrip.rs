//! Property test: the rule pretty-printer and parser round-trip — every
//! generated REE++ renders to DSL text that parses back to an equal rule.

use proptest::prelude::*;
use rock::data::{AttrId, AttrType, DatabaseSchema, RelId, RelationSchema, Value};
use rock::rees::{parse_rule, CmpOp, ModelRef, Predicate, Rule};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![
        RelationSchema::of(
            "Person",
            &[
                ("pid", AttrType::Str),
                ("name", AttrType::Str),
                ("home", AttrType::Str),
                ("age", AttrType::Int),
            ],
        ),
        RelationSchema::of(
            "Store",
            &[
                ("sid", AttrType::Str),
                ("city", AttrType::Str),
                ("sales", AttrType::Float),
            ],
        ),
    ])
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Constant values that survive rendering (no quotes/newlines — the DSL's
/// documented literal limitation).
fn str_value() -> impl Strategy<Value = Value> {
    "[a-zA-Z0-9 _.-]{1,12}".prop_map(Value::str)
}

/// Generate predicates over a fixed two-variable Person template.
fn person_predicate() -> impl Strategy<Value = Predicate> {
    let attr = 0u16..4;
    prop_oneof![
        // t.A op 'c' — string attrs only so the constant round-trips
        (0usize..2, 1u16..3, cmp_op(), str_value()).prop_map(|(var, a, op, value)| {
            Predicate::Const {
                var,
                attr: AttrId(a),
                op,
                value,
            }
        }),
        // t.A op s.B over same-typed string attrs
        (1u16..3, cmp_op(), 1u16..3).prop_map(|(la, op, ra)| Predicate::Attr {
            lvar: 0,
            lattr: AttrId(la),
            op,
            rvar: 1,
            rattr: AttrId(ra),
        }),
        // null(t.A)
        (0usize..2, attr.clone()).prop_map(|(var, a)| Predicate::IsNull {
            var,
            attr: AttrId(a)
        }),
        // temporal
        (attr.clone(), any::<bool>()).prop_map(|(a, strict)| Predicate::Temporal {
            lvar: 0,
            rvar: 1,
            attr: AttrId(a),
            strict,
        }),
        // ML pair predicate
        (prop::collection::vec(0u16..4, 1..3)).prop_map(|attrs| {
            let attrs: Vec<AttrId> = {
                let mut a: Vec<u16> = attrs;
                a.sort_unstable();
                a.dedup();
                a.into_iter().map(AttrId).collect()
            };
            Predicate::Ml {
                model: ModelRef::named("M"),
                lvar: 0,
                lattrs: attrs.clone(),
                rvar: 1,
                rattrs: attrs,
            }
        }),
        // eid comparison
        any::<bool>().prop_map(|eq| Predicate::EidCmp {
            lvar: 0,
            rvar: 1,
            eq
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_then_parse_is_identity(
        mut pre in prop::collection::vec(person_predicate(), 1..4),
        cons in person_predicate(),
    ) {
        let schema = schema();
        // consequence must not duplicate a precondition textually for the
        // equality check to be meaningful; duplicates are fine for the
        // parser, so keep them.
        let rule = Rule::new(
            "p",
            vec![("t".into(), RelId(0)), ("s".into(), RelId(0))],
            vec![],
            std::mem::take(&mut pre),
            cons,
        );
        prop_assume!(rule.validate(&schema).is_ok());
        let text = rule.display(&schema).to_string();
        let reparsed = parse_rule(&text, &schema)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n  text: {text}"));
        prop_assert_eq!(rule, reparsed, "text: {}", text);
    }

    /// Parsing is total on printable garbage: never panics, returns Err.
    #[test]
    fn parser_never_panics(junk in "[ -~]{0,80}") {
        let schema = schema();
        let _ = parse_rule(&junk, &schema);
    }
}

/// Cross-relation rules round-trip too.
#[test]
fn cross_relation_roundtrip() {
    let schema = schema();
    let text = "rule x: Person(t) && Store(s) && t.home = s.city -> t.name = s.sid";
    let rule = parse_rule(text, &schema).unwrap();
    assert_eq!(rule.display(&schema).to_string(), text);
}
