//! CSV persistence across the stack: a generated workload relation is
//! written out, read back through the interner, and cleans identically —
//! the ETL edge of §5.1 (Crystal "loads raw data … after ETL").

use rock::chase::{ChaseConfig, ChaseEngine};
use rock::data::csvio::{read_relation, write_relation};
use rock::data::database::Interner;
use rock::data::{Database, RelId};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};
use rock::workloads::workload::GenConfig;

#[test]
fn workload_relation_roundtrips_through_csv() {
    let w = rock::workloads::logistics::generate(&GenConfig {
        rows: 90,
        error_rate: 0.1,
        seed: 13,
        trusted_per_rel: 9,
    });
    let rel = w.dirty.relation(RelId(0));

    let mut buf = Vec::new();
    write_relation(rel, &mut buf).unwrap();

    let mut interner = Interner::new();
    let back = read_relation(rel.schema.clone(), buf.as_slice(), &mut interner).unwrap();
    assert_eq!(back.len(), rel.len());
    for (a, b) in rel.iter().zip(back.iter()) {
        assert_eq!(a.values, b.values, "row {:?} mutated in transit", a.tid);
    }
    // interning dedupes the heavy string columns
    assert!(!interner.is_empty());
    assert!(
        interner.len() < back.len() * back.schema.arity(),
        "repeated values must share allocations"
    );
}

#[test]
fn cleaning_after_csv_roundtrip_is_identical() {
    let schema = rock::data::DatabaseSchema::new(vec![rock::data::RelationSchema::of(
        "T",
        &[
            ("k", rock::data::AttrType::Str),
            ("v", rock::data::AttrType::Str),
        ],
    )]);
    let mut db = Database::new(&schema);
    {
        let r = db.relation_mut(RelId(0));
        for i in 0..30 {
            let v = if i == 7 { "WRONG" } else { "right" };
            r.insert_row(vec![
                rock::data::Value::str(format!("k{}", i % 3)),
                rock::data::Value::str(v),
            ])
            .unwrap();
        }
    }
    let rules = RuleSet::new(
        parse_rules("rule fd: T(t) && T(s) && t.k = s.k -> t.v = s.v", &schema).unwrap(),
    );
    let reg = ModelRegistry::new();
    let engine = ChaseEngine::new(&rules, &reg, ChaseConfig::default());
    let direct = engine.run(&db, &[]);

    // round-trip through CSV, then clean again
    let mut buf = Vec::new();
    write_relation(db.relation(RelId(0)), &mut buf).unwrap();
    let mut interner = Interner::new();
    let back = read_relation(
        db.relation(RelId(0)).schema.clone(),
        buf.as_slice(),
        &mut interner,
    )
    .unwrap();
    let db2 = Database::from_relations(vec![back]);
    let roundtripped = engine.run(&db2, &[]);

    let fingerprint = |d: &Database| -> Vec<String> {
        d.relation(RelId(0))
            .iter()
            .map(|t| format!("{}|{}", t.values[0], t.values[1]))
            .collect()
    };
    assert_eq!(fingerprint(&direct.db), fingerprint(&roundtripped.db));
    assert_eq!(direct.changes.len(), roundtripped.changes.len());
}
