//! Property tests for the dense bitset kernels behind discovery's
//! predicate-satisfaction cache: every popcount kernel and in-place
//! combinator is checked against a naive `Vec<bool>` model, and the
//! tail-word invariant (bits past `len` are always zero) is exercised at
//! word boundaries via `full` / `set_range`.

use proptest::prelude::*;
use rock::data::Bitset;

/// A length plus two independent bool vectors of that length.
fn two_vecs() -> impl Strategy<Value = (Vec<bool>, Vec<bool>)> {
    (0usize..200).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
        )
    })
}

fn three_vecs() -> impl Strategy<Value = (Vec<bool>, Vec<bool>, Vec<bool>)> {
    (0usize..200).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
            prop::collection::vec(any::<bool>(), len),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `and_popcount` / `and_not_popcount` / `and3_popcount` agree with
    /// the model counts.
    #[test]
    fn popcount_kernels_match_model((a, b) in two_vecs(), c_seed in any::<u64>()) {
        let n = a.len();
        // derive a third vector deterministically from the seed
        let c: Vec<bool> = (0..n).map(|i| (c_seed >> (i % 64)) & 1 == 1).collect();
        let (ba, bb, bc) =
            (Bitset::from_bools(&a), Bitset::from_bools(&b), Bitset::from_bools(&c));

        let and = a.iter().zip(&b).filter(|(x, y)| **x && **y).count() as u64;
        let and_not = a.iter().zip(&b).filter(|(x, y)| **x && !**y).count() as u64;
        let and3 = (0..n).filter(|&i| a[i] && b[i] && c[i]).count() as u64;

        prop_assert_eq!(ba.and_popcount(&bb), and);
        prop_assert_eq!(ba.and_not_popcount(&bb), and_not);
        prop_assert_eq!(ba.and3_popcount(&bb, &bc), and3);
        // symmetry of the symmetric kernels
        prop_assert_eq!(bb.and_popcount(&ba), and);
        prop_assert_eq!(ba.count_ones(), a.iter().filter(|x| **x).count() as u64);
    }

    /// In-place intersect/union and the allocating `and` agree with the
    /// model, and popcounts of the results are consistent.
    #[test]
    fn in_place_combinators_match_model((a, b) in two_vecs()) {
        let (ba, bb) = (Bitset::from_bools(&a), Bitset::from_bools(&b));

        let mut inter = ba.clone();
        inter.intersect_with(&bb);
        let mut union = ba.clone();
        union.union_with(&bb);
        let anded = ba.and(&bb);

        for i in 0..a.len() {
            prop_assert_eq!(inter.get(i), a[i] && b[i]);
            prop_assert_eq!(union.get(i), a[i] || b[i]);
            prop_assert_eq!(anded.get(i), a[i] && b[i]);
        }
        prop_assert_eq!(inter.count_ones(), ba.and_popcount(&bb));
        prop_assert_eq!(anded, inter);
        // inclusion–exclusion
        prop_assert_eq!(
            union.count_ones() + inter.count_ones(),
            ba.count_ones() + bb.count_ones()
        );
    }

    /// `ones()` yields exactly the set indices, ascending.
    #[test]
    fn ones_iterator_matches_model((a, _) in two_vecs()) {
        let ba = Bitset::from_bools(&a);
        let got: Vec<usize> = ba.ones().collect();
        let want: Vec<usize> =
            a.iter().enumerate().filter_map(|(i, x)| x.then_some(i)).collect();
        prop_assert_eq!(got, want);
    }

    /// `set_range` fills exactly `[start, end)`, across word boundaries,
    /// and `full` keeps the tail-word invariant (AND with anything never
    /// counts phantom bits past `len`).
    #[test]
    fn set_range_and_full_respect_bounds(
        len in 0usize..300,
        lo in 0usize..300,
        hi in 0usize..300,
    ) {
        let (start, end) = (lo.min(len), hi.min(len));
        let (start, end) = (start.min(end), start.max(end));
        let mut b = Bitset::new(len);
        b.set_range(start, end);
        prop_assert_eq!(b.count_ones(), (end - start) as u64);
        for i in 0..len {
            prop_assert_eq!(b.get(i), i >= start && i < end);
        }
        let full = Bitset::full(len);
        prop_assert_eq!(full.count_ones(), len as u64);
        prop_assert_eq!(full.and_popcount(&full), len as u64);
        prop_assert_eq!(b.and_popcount(&full), b.count_ones());
        prop_assert_eq!(full.and_not_popcount(&b), (len - (end - start)) as u64);
    }

    /// Three-way associativity check: ((a ∧ b) ∧ c) popcount equals the
    /// fused `and3_popcount` — the identity the miner's level-k measure
    /// relies on when folding a parent bitset with a new conjunct.
    #[test]
    fn and3_equals_chained_and((a, b, c) in three_vecs()) {
        let (ba, bb, bc) =
            (Bitset::from_bools(&a), Bitset::from_bools(&b), Bitset::from_bools(&c));
        let mut ab = ba.clone();
        ab.intersect_with(&bb);
        prop_assert_eq!(ab.and_popcount(&bc), ba.and3_popcount(&bb, &bc));
    }
}
