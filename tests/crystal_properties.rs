//! Property tests for the Crystal substrate: consistent-hash remapping
//! bounds, partial-order antisymmetry under random insertions, and
//! scheduler completeness.

use proptest::prelude::*;
use rock::chase::PartialOrderStore;
use rock::crystal::ring::{ConsistentHashRing, NodeId};
use rock::crystal::work::{partition_range, Partition, WorkUnit};
use rock::crystal::Cluster;
use rock::data::TupleId;
use rustc_hash::FxHashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Removing a node only remaps that node's keys (the consistent-hash
    /// guarantee of §5.1).
    #[test]
    fn ring_remaps_only_removed_nodes_keys(
        nodes in 2usize..12,
        removed in 0usize..12,
        keys in prop::collection::vec("[a-z0-9]{3,12}", 10..80),
    ) {
        let removed = removed % nodes;
        let mut ring = ConsistentHashRing::new(32);
        for i in 0..nodes {
            ring.add_node(NodeId(i as u32), &format!("10.1.0.{i}"));
        }
        let before: FxHashMap<&String, NodeId> =
            keys.iter().map(|k| (k, ring.owner(k.as_bytes()).unwrap())).collect();
        ring.remove_node(NodeId(removed as u32));
        for k in &keys {
            let after = ring.owner(k.as_bytes()).unwrap();
            if before[k] != NodeId(removed as u32) {
                prop_assert_eq!(before[k], after, "key {} moved needlessly", k);
            } else {
                prop_assert_ne!(after, NodeId(removed as u32));
            }
        }
    }

    /// Partition ranges always cover [0, rows) exactly, contiguously, with
    /// near-equal sizes.
    #[test]
    fn partitions_cover_exactly(rows in 0u32..5000, units in 1u32..64) {
        let parts = partition_range(0, rows, units);
        let total: u32 = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, rows);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        if let (Some(min), Some(max)) = (
            parts.iter().map(|p| p.len()).min(),
            parts.iter().map(|p| p.len()).max(),
        ) {
            prop_assert!(max - min <= 1);
        }
    }

    /// The scheduler executes every unit exactly once, in result order,
    /// for any worker count.
    #[test]
    fn scheduler_executes_all(units in 1usize..60, workers in 1usize..8) {
        let us: Vec<WorkUnit> = (0..units)
            .map(|i| WorkUnit::new(i as u32, vec![Partition::new(0, i as u32, i as u32 + 1)]))
            .collect();
        let cluster = Cluster::new(workers);
        let outcome = cluster.execute(us, |u| Ok(u.rule));
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(outcome.results.len(), units);
        for (i, r) in outcome.results.iter().enumerate() {
            prop_assert_eq!(r.unwrap() as usize, i);
        }
        prop_assert_eq!(outcome.stats.executed.iter().sum::<u64>() as usize, units);
    }

    /// Partial order: inserting random pairs never yields a state where
    /// both `a ≺ b` and `b ⪯ a` hold.
    #[test]
    fn partial_order_antisymmetry(
        pairs in prop::collection::vec((0u32..6, 0u32..6, any::<bool>()), 1..40),
    ) {
        let mut store = PartialOrderStore::new();
        for (a, b, strict) in &pairs {
            let _ = store.insert(TupleId(*a), TupleId(*b), *strict);
        }
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a == b {
                    continue;
                }
                let a_strictly_before_b = store.holds(TupleId(a), TupleId(b), true);
                let b_before_a = store.holds(TupleId(b), TupleId(a), false);
                prop_assert!(
                    !(a_strictly_before_b && b_before_a),
                    "antisymmetry violated for ({a}, {b})"
                );
            }
        }
    }

    /// Transitivity: whatever was accepted is transitively closed under
    /// `holds`.
    #[test]
    fn partial_order_transitive(
        pairs in prop::collection::vec((0u32..5, 0u32..5), 1..20),
    ) {
        let mut store = PartialOrderStore::new();
        for (a, b) in &pairs {
            let _ = store.insert(TupleId(*a), TupleId(*b), false);
        }
        for a in 0..5u32 {
            for b in 0..5u32 {
                for c in 0..5u32 {
                    if store.holds(TupleId(a), TupleId(b), false)
                        && store.holds(TupleId(b), TupleId(c), false)
                    {
                        prop_assert!(store.holds(TupleId(a), TupleId(c), false));
                    }
                }
            }
        }
    }
}
