//! Equivalence suite for the semi-naive delta chase (§4.1 incremental
//! evaluation): with `ChaseConfig { semi_naive: true }` every round ≥ 2
//! enumerates only valuations pinned to a delta tuple and re-emits the
//! rest from the per-rule carry — the result must be *identical* to the
//! full-rescan oracle (`semi_naive: false`), down to the committed change
//! list. Covered: both gate modes, merge-heavy ER workloads (entity-class
//! merges re-activate tuples), multi-worker runs, and random `Delta`s
//! through `run_incremental` (pinned-bitset vs scan-and-filter mechanism).

use proptest::prelude::*;
use rock::chase::{ChaseConfig, ChaseEngine, ChaseResult, GateMode};
use rock::data::{
    AttrId, AttrType, Database, DatabaseSchema, Delta, GlobalTid, RelId, RelationSchema, TupleId,
    Update, Value,
};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

/// The `tests/chase_properties.rs` rule set: value propagation (r1, r2),
/// a constant rule (r3), an ER merge rule (r4) and a null-fill (r5) — the
/// merges make entity classes, so round ≥ 2 re-activation must follow
/// class membership, not just written cells.
fn rules(schema: &DatabaseSchema) -> RuleSet {
    RuleSet::new(
        parse_rules(
            "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
             rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
             rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
             rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
             rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'",
            schema,
        )
        .unwrap(),
    )
}

fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(if b % 3 == 0 {
                "bz".into()
            } else {
                format!("b{}", b % 3)
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

/// Everything observable except the mechanism-dependent fields
/// (`round_stats`, `round_makespans`) must match byte-for-byte.
fn assert_equiv(full: &ChaseResult, semi: &ChaseResult) {
    assert_eq!(
        serde_json::to_string(&full.db).unwrap(),
        serde_json::to_string(&semi.db).unwrap(),
        "databases diverged"
    );
    assert_eq!(full.changes, semi.changes, "change lists diverged");
    assert_eq!(full.merged_pairs, semi.merged_pairs, "merges diverged");
    assert_eq!(full.conflicts, semi.conflicts, "conflict counts diverged");
    assert_eq!(full.steps, semi.steps, "step counts diverged");
    assert_eq!(full.rounds, semi.rounds, "round counts diverged");
    assert!(semi.fixes.is_valid());
}

/// Run the full-rescan oracle and the semi-naive chase on the same input.
fn run_pair(
    db: &Database,
    rs: &RuleSet,
    trusted: &[GlobalTid],
    cfg: ChaseConfig,
) -> (ChaseResult, ChaseResult) {
    let reg = ModelRegistry::new();
    let full = ChaseEngine::new(
        rs,
        &reg,
        ChaseConfig {
            semi_naive: false,
            ..cfg.clone()
        },
    )
    .run(db, trusted);
    let semi = ChaseEngine::new(
        rs,
        &reg,
        ChaseConfig {
            semi_naive: true,
            ..cfg
        },
    )
    .run(db, trusted);
    (full, semi)
}

// No explicit case count: these blocks stay default-configured so CI's
// global `PROPTEST_CASES=64` governs them (see .github/workflows/ci.yml).
proptest! {
    /// Batch equivalence across both gate modes, with row 0 trusted so the
    /// Strict gate has ground truth to bootstrap from.
    #[test]
    fn semi_naive_equals_full_rescan(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..12),
        strict in any::<bool>(),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let trusted = vec![GlobalTid::new(RelId(0), TupleId(0))];
        let cfg = ChaseConfig {
            gate: if strict { GateMode::Strict } else { GateMode::Resolved },
            ..ChaseConfig::default()
        };
        let (full, semi) = run_pair(&db, &rs, &trusted, cfg);
        assert_equiv(&full, &semi);
    }

    /// Multi-worker semi-naive ≡ full rescan: pinned work units partition
    /// the delta ones-lists, so stealing must not change the outcome.
    #[test]
    fn semi_naive_equals_full_rescan_parallel(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..10),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let cfg = ChaseConfig {
            workers: 4,
            partitions_per_rule: 8,
            ..ChaseConfig::default()
        };
        let (full, semi) = run_pair(&db, &rs, &[], cfg);
        assert_equiv(&full, &semi);
    }

    /// `run_incremental` mode-equality over random ΔDs: the semi-naive flag
    /// only switches the mechanism (pinned bitsets + blocking vs
    /// scan-all-and-filter-on-pending); both chase exactly the touched
    /// tuples and must agree byte-for-byte.
    #[test]
    fn incremental_modes_agree_on_random_deltas(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 3..10),
        edits in prop::collection::vec((0u8..10, 0u8..4, prop::option::of(0u8..3)), 1..6),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let updates: Vec<Update> = edits
            .iter()
            .map(|(t, attr, v)| Update::SetCell {
                rel: RelId(0),
                tid: TupleId(*t as u32 % rows.len() as u32),
                attr: AttrId(*attr as u16),
                value: match v {
                    None => Value::Null,
                    Some(x) => Value::str(format!("v{x}")),
                },
            })
            .collect();
        let delta = Delta::new(updates);
        let reg = ModelRegistry::new();
        let run = |semi_naive: bool| {
            ChaseEngine::new(&rs, &reg, ChaseConfig { semi_naive, ..ChaseConfig::default() })
                .run_incremental(&db, &[], &delta).unwrap()
        };
        let full = run(false);
        let semi = run(true);
        assert_equiv(&full, &semi);
    }
}

/// Deterministic merge-heavy regression: a mostly-clean database where the
/// round-1 commit touches only two tuples (one shared key, one `a`
/// disagreement). The cascade forces ≥ 2 rounds, the ER merge re-activates
/// the merged class, and the semi-naive chase must enumerate strictly
/// fewer valuations than the full rescan while committing the same fixes.
#[test]
fn merge_heavy_cascade_fewer_valuations_same_result() {
    let schema = schema();
    let rs = rules(&schema);
    let mut db = Database::new(&schema);
    {
        let r = db.relation_mut(RelId(0));
        // ten self-consistent rows: unique keys, agreeing a/b, c filled
        for i in 0..10u32 {
            r.insert_row(vec![
                Value::str(format!("u{i}")),
                Value::str("a1"),
                Value::str("b1"),
                Value::str("c0"),
            ])
            .unwrap();
        }
        // one conflicting pair on a shared key: r4 merges them, r1
        // propagates `x` by majority-with-tiebreak, r3 then fills c
        r.insert_row(vec![
            Value::str("k0"),
            Value::str("x"),
            Value::str("bz"),
            Value::Null,
        ])
        .unwrap();
        r.insert_row(vec![
            Value::str("k0"),
            Value::str("x"),
            Value::str("b1"),
            Value::Null,
        ])
        .unwrap();
    }
    let (full, semi) = run_pair(&db, &rs, &[], ChaseConfig::default());
    assert_equiv(&full, &semi);
    assert!(full.rounds >= 2, "cascade must take ≥ 2 rounds");
    assert!(
        !full.merged_pairs.is_empty(),
        "shared key must force an ER merge"
    );
    let late = |r: &ChaseResult| {
        r.round_stats
            .iter()
            .skip(1)
            .map(|s| s.valuations)
            .sum::<u64>()
    };
    assert!(
        late(&semi) < late(&full),
        "round ≥ 2 valuations: semi {} must be < full {}",
        late(&semi),
        late(&full)
    );
    // the touched pair is 2 of 12 tuples, so the delta rounds stay small
    assert!(semi
        .round_stats
        .iter()
        .skip(1)
        .all(|s| s.delta_tuples <= 12));
}
