//! Durability suite for the WAL + checkpoint chase (`rock::chase::wal`):
//! a chase run with `ChaseConfig { durability: Some(..) }` must produce
//! byte-identical repairs to the in-memory oracle, resume from *every*
//! round boundary to the same final state, regenerate an identical WAL on
//! resume (replay idempotence — rounds are deterministic functions of the
//! checkpointed state), shrug off truncated or bit-flipped log tails by
//! falling back to the last intact round marker, and answer provenance
//! queries (rule, valuation, parent fixes) for every repaired cell.

use proptest::prelude::*;
use rock::chase::{
    read_wal, read_wal_dir, segment_file_name, wal_bytes, ChaseConfig, ChaseEngine, ChaseResult,
    DurabilityConfig, ProvenanceGraph, WalRecord,
};
use rock::data::{
    AttrType, Database, DatabaseSchema, GlobalTid, RelId, RelationSchema, TupleId, Value,
};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};
use std::path::PathBuf;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

/// The `tests/chase_properties.rs` rule set: value propagation (r1, r2),
/// a constant rule (r3), an ER merge rule (r4) and a null-fill (r5) — so
/// the WAL sees Cell, Merge, Validate and Distinct traffic, not just one
/// fix kind.
fn rules(schema: &DatabaseSchema) -> RuleSet {
    RuleSet::new(
        parse_rules(
            "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
             rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
             rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
             rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
             rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'",
            schema,
        )
        .unwrap(),
    )
}

fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(if b % 3 == 0 {
                "bz".into()
            } else {
                format!("b{}", b % 3)
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

/// Default deterministic workload: enough key collisions for merges and
/// multi-round propagation chains.
fn default_rows() -> Vec<(u8, u8, u8, Option<u8>)> {
    vec![
        (0, 0, 1, None),
        (0, 1, 0, Some(1)),
        (1, 2, 2, None),
        (1, 0, 0, Some(0)),
        (2, 1, 1, None),
        (2, 2, 0, None),
        (3, 0, 2, Some(1)),
        (3, 1, 0, None),
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rock-wal-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Canonical dump of everything the byte-identity contract covers. No
/// timing observability (`round_makespans`, fault counters) — those are
/// deliberately not checkpointed.
fn canon(res: &ChaseResult) -> String {
    serde_json::to_string(&serde_json::json!({
        "rounds": res.rounds,
        "steps": res.steps,
        "conflicts": res.conflicts,
        "changes": res.changes,
        "merged_pairs": res.merged_pairs,
        "round_stats": res.round_stats,
        "fixes": res.fixes.to_snapshot(),
        "db": res.db,
    }))
    .unwrap()
}

fn engine(rs: &RuleSet, reg: &ModelRegistry, dur: Option<DurabilityConfig>) -> ChaseEngine {
    ChaseEngine::new(
        rs,
        reg,
        ChaseConfig {
            durability: dur,
            ..ChaseConfig::default()
        },
    )
}

fn assert_no_wal_error(res: &ChaseResult) {
    let s = res
        .wal
        .as_ref()
        .expect("durable run must carry a WalSummary");
    assert!(s.error.is_none(), "durability degraded: {:?}", s.error);
}

#[test]
fn durable_run_matches_oracle_and_resumes_at_every_round() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("every-round");
    let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let first = durable.run(&db, &trusted);
    assert_no_wal_error(&first);
    assert_eq!(canon(&first), want, "durable run diverged from oracle");
    assert!(first.rounds >= 2, "workload too shallow to exercise resume");

    let wal_before = wal_bytes(&dir).unwrap();
    for r in 1..=first.rounds as u64 {
        let resumed = durable.resume_at(&trusted, r).unwrap_or_else(|e| {
            panic!("resume at round {r} failed: {e}");
        });
        assert_no_wal_error(&resumed);
        assert_eq!(
            resumed.wal.as_ref().unwrap().resumed_from,
            Some(r),
            "resume picked the wrong round"
        );
        assert_eq!(
            canon(&resumed),
            want,
            "resume from round {r} diverged from the uninterrupted oracle"
        );
        // Replay idempotence: the resumed rounds must regenerate the
        // exact bytes they truncated away.
        let wal_after = wal_bytes(&dir).unwrap();
        assert_eq!(
            wal_before, wal_after,
            "WAL bytes changed after resume at round {r}"
        );
    }

    // `resume()` with no explicit round picks the newest durable marker.
    let resumed = durable.resume(&trusted).unwrap();
    assert_eq!(canon(&resumed), want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_tail_falls_back_to_last_intact_round() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("corrupt-tail");
    let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let first = durable.run(&db, &trusted);
    assert_no_wal_error(&first);

    // The default 8 MiB segment budget keeps this tiny workload in one
    // segment, so the tail-damage surgery targets that first segment file.
    let path = dir.join(segment_file_name(1));
    let intact = std::fs::read(&path).unwrap();
    let scan = read_wal(&path).unwrap();
    assert!(!scan.corrupt_tail);
    assert!(scan.records.len() >= 4);
    let n_intact = scan.records.len();

    // Truncate mid-way through the final frame (record offsets are frame
    // *end* positions, so the second-to-last one is where the final frame
    // starts): the reader must keep the longest valid prefix and resume
    // from the previous round marker.
    let last_start = scan.records[n_intact - 2].0 as usize;
    std::fs::write(&path, &intact[..last_start + 3]).unwrap();
    let scan = read_wal(&path).unwrap();
    assert!(scan.corrupt_tail, "truncated tail must be flagged");
    assert_eq!(scan.records.len(), n_intact - 1);
    let resumed = durable
        .resume(&trusted)
        .expect("resume over truncated tail");
    assert_eq!(canon(&resumed), want, "truncated-tail resume diverged");

    // Bit-flip inside the last frame's payload: CRC must reject it and
    // recovery must again land on the previous marker.
    let mut flipped = intact.clone();
    flipped[last_start + 10] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let scan = read_wal(&path).unwrap();
    assert!(scan.corrupt_tail, "bit-flipped tail must be flagged");
    let resumed = durable
        .resume(&trusted)
        .expect("resume over bit-flipped tail");
    assert_eq!(canon(&resumed), want, "bit-flipped-tail resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn provenance_answers_why_for_every_repaired_cell() {
    let schema = schema();
    let rs = rules(&schema);
    let nrules = rs.rules.len() as u32;
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let dir = fresh_dir("provenance");
    let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
    let res = durable.run(&db, &trusted);
    assert_no_wal_error(&res);
    assert!(!res.changes.is_empty(), "workload produced no repairs");

    let graph = ProvenanceGraph::load(&dir).unwrap();
    assert!(!graph.is_empty());
    let mut with_valuation = 0usize;
    for (cell, _, _) in &res.changes {
        let chain = graph
            .why(*cell)
            .unwrap_or_else(|| panic!("no provenance for repaired cell {cell:?}"));
        assert!(
            chain.fix.rule < nrules,
            "fix {} names rule {} out of range",
            chain.fix.id,
            chain.fix.rule
        );
        for a in &chain.ancestors {
            assert!(a.id < chain.fix.id, "ancestor must precede the fix");
            assert!(a.round <= chain.fix.round, "ancestor from a later round");
        }
        if !chain.fix.valuation.is_empty() {
            with_valuation += 1;
        }
    }
    assert!(with_valuation > 0, "no fix carried a valuation");

    // Every WAL fix id is unique and parents always reference earlier ids
    // — the invariants the `why` traversal relies on.
    let scan = read_wal_dir(&dir).unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for (_, rec) in &scan.records {
        if let WalRecord::Fix(f) = rec {
            assert!(seen.insert(f.id), "duplicate fix id {}", f.id);
            for p in &f.parents {
                assert!(seen.contains(p), "parent {p} of fix {} not yet seen", f.id);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_every_coarser_than_one_still_resumes() {
    let schema = schema();
    let rs = rules(&schema);
    let reg = ModelRegistry::new();
    let db = build_db(&default_rows());
    let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(1))];

    let oracle = engine(&rs, &reg, None).run(&db, &trusted);
    let want = canon(&oracle);

    let dir = fresh_dir("coarse");
    let cfg = DurabilityConfig {
        snapshot_every: 2,
        ..DurabilityConfig::new(&dir)
    };
    let durable = engine(&rs, &reg, Some(cfg));
    let first = durable.run(&db, &trusted);
    assert_no_wal_error(&first);
    assert_eq!(canon(&first), want);
    let resumed = durable.resume(&trusted).unwrap();
    assert_eq!(canon(&resumed), want, "coarse-checkpoint resume diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    // Replay idempotence + oracle equivalence over random workloads: for
    // any input, the durable chase equals the in-memory oracle, and a
    // resume from the final round regenerates the WAL byte-for-byte.
    #[test]
    fn durable_chase_equals_oracle_on_random_dbs(
        rows in proptest::collection::vec(
            (0u8..4, 0u8..6, 0u8..6, proptest::option::of(0u8..4)),
            1..12,
        ),
        case in 0u32..1_000_000,
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let reg = ModelRegistry::new();
        let db = build_db(&rows);
        let trusted: [GlobalTid; 1] = [GlobalTid::new(RelId(0), TupleId(0))];

        let oracle = engine(&rs, &reg, None).run(&db, &trusted);
        let want = canon(&oracle);

        let dir = fresh_dir(&format!("prop-{case}"));
        let durable = engine(&rs, &reg, Some(DurabilityConfig::new(&dir)));
        let first = durable.run(&db, &trusted);
        assert_no_wal_error(&first);
        prop_assert_eq!(&canon(&first), &want);

        let wal_before = wal_bytes(&dir).unwrap();
        let resumed = durable.resume(&trusted).unwrap();
        assert_no_wal_error(&resumed);
        prop_assert_eq!(&canon(&resumed), &want);
        let wal_after = wal_bytes(&dir).unwrap();
        prop_assert_eq!(wal_before, wal_after, "WAL not replay-idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
