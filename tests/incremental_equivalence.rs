//! Incremental ≡ batch (paper §3, [41]): incremental detection after ΔD
//! must find exactly the batch violations that touch updated tuples.

use proptest::prelude::*;
use rock::data::{
    AttrId, AttrType, Database, DatabaseSchema, Delta, Eid, RelId, RelationSchema, TupleId, Update,
    Value,
};
use rock::detect::Detector;
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};
use rustc_hash::FxHashSet;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("v", AttrType::Str),
            ("w", AttrType::Str),
        ],
    )])
}

fn rules(schema: &DatabaseSchema) -> RuleSet {
    RuleSet::new(
        parse_rules(
            "rule fd1: T(t) && T(s) && t.k = s.k -> t.v = s.v\n\
             rule fd2: T(t) && T(s) && t.v = s.v -> t.w = s.w\n\
             rule mi: T(t) && null(t.w) -> t.w = 'z'",
            schema,
        )
        .unwrap(),
    )
}

fn build_db(rows: &[(u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, v, w) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 3)),
            Value::str(format!("v{}", v % 3)),
            match w {
                None => Value::Null,
                Some(x) => Value::str(format!("w{}", x % 2)),
            },
        ])
        .unwrap();
    }
    db
}

fn build_delta(db: &Database, ops: &[(u8, u8, u8)]) -> Delta {
    // op kinds: 0 = insert, 1 = set v, 2 = null w
    let n = db.relation(RelId(0)).capacity() as u32;
    let mut delta = Delta::default();
    for (kind, a, b) in ops {
        match kind % 3 {
            0 => delta.push(Update::Insert {
                rel: RelId(0),
                eid: Eid(10_000 + u32::from(*a)),
                values: vec![
                    Value::str(format!("k{}", a % 3)),
                    Value::str(format!("v{}", b % 3)),
                    Value::str(format!("w{}", b % 2)),
                ],
            }),
            1 => delta.push(Update::SetCell {
                rel: RelId(0),
                tid: TupleId(u32::from(*a) % n.max(1)),
                attr: AttrId(1),
                value: Value::str(format!("v{}", b % 3)),
            }),
            _ => delta.push(Update::SetCell {
                rel: RelId(0),
                tid: TupleId(u32::from(*a) % n.max(1)),
                attr: AttrId(2),
                value: Value::Null,
            }),
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_detection_equals_batch_on_touched(
        rows in prop::collection::vec((0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..10),
        ops in prop::collection::vec((0u8..3, 0u8..8, 0u8..4), 1..5),
    ) {
        let schema = schema();
        let rules = rules(&schema);
        let reg = ModelRegistry::new();
        let mut db = build_db(&rows);
        let delta = build_delta(&db, &ops);
        let inserted = db.apply(&delta).unwrap();

        let detector = Detector::new(&rules, &reg);
        let incremental = detector.detect_incremental(&db, &delta, &inserted);

        // touched tuple ids
        let mut touched: FxHashSet<TupleId> = inserted.iter().copied().collect();
        for u in &delta.updates {
            if let Update::SetCell { tid, .. } = u {
                touched.insert(*tid);
            }
        }

        // batch violations restricted to touched tuples
        let batch = detector.detect(&db);
        let batch_touched: usize = batch
            .violations
            .iter()
            .filter(|v| v.valuation.tuples.iter().any(|g| touched.contains(&g.tid)))
            .count();

        prop_assert_eq!(incremental.count(), batch_touched);

        // every incremental violation touches an updated tuple
        for v in &incremental.violations {
            prop_assert!(v.valuation.tuples.iter().any(|g| touched.contains(&g.tid)));
        }
    }

    /// Applying an empty delta detects nothing incrementally.
    #[test]
    fn empty_delta_detects_nothing(
        rows in prop::collection::vec((0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..8),
    ) {
        let schema = schema();
        let rules = rules(&schema);
        let reg = ModelRegistry::new();
        let db = build_db(&rows);
        let detector = Detector::new(&rules, &reg);
        let rep = detector.detect_incremental(&db, &Delta::default(), &[]);
        prop_assert_eq!(rep.count(), 0);
    }
}

/// Deterministic regression: an insert conflicting with existing rows is
/// caught with exactly the right counterpart count.
#[test]
fn insert_conflicts_counted_exactly() {
    let schema = schema();
    let rules = rules(&schema);
    let reg = ModelRegistry::new();
    let mut db = build_db(&[(0, 0, Some(0)), (0, 0, Some(0)), (1, 1, Some(1))]);
    let delta = Delta::new(vec![Update::Insert {
        rel: RelId(0),
        eid: Eid(99),
        values: vec![Value::str("k0"), Value::str("v9"), Value::str("w0")],
    }]);
    let inserted = db.apply(&delta).unwrap();
    let rep = Detector::new(&rules, &reg).detect_incremental(&db, &delta, &inserted);
    // fd1: new row (k0, v9) conflicts with both (k0, v0) rows, both
    // directions = 4 violations
    let fd1 = rep.violations.iter().filter(|v| v.rule == 0).count();
    assert_eq!(fd1, 4);
}
