//! Equivalence suite for the columnar data plane: with
//! `columnar: true` the chase and detector route unary predicates through
//! the vectorized column kernels (`rock_data::ColumnSet`); the row store
//! (`columnar: false`) is the byte-identical oracle. Covered: batch and
//! multi-worker chases, random `Delta`s through `run_incremental`,
//! detection, end-to-end `RockSystem` runs on all three workloads, and
//! the column-plane invariants themselves — dictionary re-encoding, null
//! bitmap round-trips, and tombstone / `TupleId` stability.

use proptest::prelude::*;
use rock::chase::{ChaseConfig, ChaseEngine, ChaseResult, GateMode};
use rock::data::{
    AttrId, AttrType, ColumnData, Database, DatabaseSchema, Delta, GlobalTid, PredOp, RelId,
    RelationSchema, TupleId, Update, Value,
};
use rock::ml::ModelRegistry;
use rock::rees::{parse_rules, RuleSet};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

/// The `tests/chase_properties.rs` rule set plus r6, a same-tuple
/// attribute comparison — r3 (constant), r5 (`null(...)`) and r6
/// (`t.a = t.b`) are exactly the unary shapes the columnar prefilter
/// answers with `eval_const_op`, `null_mask` and `eval_col_op_col`.
fn rules(schema: &DatabaseSchema) -> RuleSet {
    RuleSet::new(
        parse_rules(
            "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
             rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
             rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
             rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
             rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'\n\
             rule r6: T(t) && t.a = t.b -> t.c = 'cab'",
            schema,
        )
        .unwrap(),
    )
}

/// `b` ranges over {bz, a1, a2, x} so it can collide with `a` (r6) and
/// still hit the `'bz'` arm (r5).
fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(match b % 4 {
                0 => "bz".into(),
                3 => "x".into(),
                n => format!("a{n}"),
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

/// Everything observable except the mechanism-dependent fields must match
/// byte-for-byte.
fn assert_equiv(row: &ChaseResult, col: &ChaseResult) {
    assert_eq!(
        serde_json::to_string(&row.db).unwrap(),
        serde_json::to_string(&col.db).unwrap(),
        "databases diverged"
    );
    assert_eq!(row.changes, col.changes, "change lists diverged");
    assert_eq!(row.merged_pairs, col.merged_pairs, "merges diverged");
    assert_eq!(row.conflicts, col.conflicts, "conflict counts diverged");
    assert_eq!(row.steps, col.steps, "step counts diverged");
    assert_eq!(row.rounds, col.rounds, "round counts diverged");
    assert!(col.fixes.is_valid());
}

/// Run the row-store oracle and the columnar chase on the same input.
fn run_pair(
    db: &Database,
    rs: &RuleSet,
    trusted: &[GlobalTid],
    cfg: ChaseConfig,
) -> (ChaseResult, ChaseResult) {
    let reg = ModelRegistry::new();
    let row = ChaseEngine::new(
        rs,
        &reg,
        ChaseConfig {
            columnar: false,
            ..cfg.clone()
        },
    )
    .run(db, trusted);
    let col = ChaseEngine::new(
        rs,
        &reg,
        ChaseConfig {
            columnar: true,
            ..cfg
        },
    )
    .run(db, trusted);
    (row, col)
}

// No explicit case count: these blocks stay default-configured so CI's
// global `PROPTEST_CASES=64` governs them (see .github/workflows/ci.yml).
proptest! {
    /// Batch equivalence across both gate modes, with row 0 trusted so the
    /// Strict gate has ground truth to bootstrap from.
    #[test]
    fn columnar_equals_row_store_batch(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4, prop::option::of(0u8..2)), 2..12),
        strict in any::<bool>(),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let trusted = vec![GlobalTid::new(RelId(0), TupleId(0))];
        let cfg = ChaseConfig {
            gate: if strict { GateMode::Strict } else { GateMode::Resolved },
            ..ChaseConfig::default()
        };
        let (row, col) = run_pair(&db, &rs, &trusted, cfg);
        assert_equiv(&row, &col);
    }

    /// Multi-worker columnar ≡ row store: the kernel masks feed the same
    /// pinned work units, so stealing must not change the outcome.
    #[test]
    fn columnar_equals_row_store_parallel(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4, prop::option::of(0u8..2)), 2..10),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let cfg = ChaseConfig {
            workers: 4,
            partitions_per_rule: 8,
            ..ChaseConfig::default()
        };
        let (row, col) = run_pair(&db, &rs, &[], cfg);
        assert_equiv(&row, &col);
    }

    /// `run_incremental` over random ΔDs: the delta path mutates relations
    /// mid-run, so this exercises cache invalidation and write-through —
    /// stale column snapshots would diverge here.
    #[test]
    fn columnar_equals_row_store_incremental(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4, prop::option::of(0u8..2)), 3..10),
        edits in prop::collection::vec((0u8..10, 0u8..4, prop::option::of(0u8..3)), 1..6),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let updates: Vec<Update> = edits
            .iter()
            .map(|(t, attr, v)| Update::SetCell {
                rel: RelId(0),
                tid: TupleId(*t as u32 % rows.len() as u32),
                attr: AttrId(*attr as u16),
                value: match v {
                    None => Value::Null,
                    Some(x) => Value::str(format!("v{x}")),
                },
            })
            .collect();
        let delta = Delta::new(updates);
        let reg = ModelRegistry::new();
        let run = |columnar: bool| {
            ChaseEngine::new(&rs, &reg, ChaseConfig { columnar, ..ChaseConfig::default() })
                .run_incremental(&db, &[], &delta).unwrap()
        };
        let (row, col) = (run(false), run(true));
        assert_equiv(&row, &col);
    }

    /// Detection equivalence: the columnar detector must flag exactly the
    /// row-store detector's cells.
    #[test]
    fn columnar_detection_flags_identical_cells(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..4, prop::option::of(0u8..2)), 2..12),
    ) {
        let schema = schema();
        let rs = rules(&schema);
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let flagged = |columnar: bool| {
            let report = rock::detect::Detector::new(&rs, &reg)
                .with_columnar(columnar)
                .detect(&db);
            let mut cells: Vec<_> = report.flagged_cells.into_iter().collect();
            cells.sort_unstable();
            (cells, report.violations.len())
        };
        assert_eq!(flagged(false), flagged(true), "detections diverged");
    }
}

/// End-to-end byte-identity on all three curated workloads (small
/// instances; `figures -- columnar` asserts the same at panel scale).
#[test]
fn workloads_repair_byte_identically_under_columnar() {
    use rock::workloads::workload::GenConfig;
    let gen = |seed| GenConfig {
        rows: 90,
        error_rate: 0.08,
        seed,
        trusted_per_rel: 15,
    };
    for (name, w) in [
        ("Bank", rock::workloads::bank::generate(&gen(42))),
        ("Logistics", rock::workloads::logistics::generate(&gen(43))),
        ("Sales", rock::workloads::sales::generate(&gen(44))),
    ] {
        let task = w.tasks.last().expect("workload has tasks").clone();
        let run = |columnar: bool| {
            rock::core::RockSystem::new(rock::core::RockConfig {
                columnar,
                ..rock::core::RockConfig::default()
            })
            .correct(&w, &task)
        };
        let (row, col) = (run(false), run(true));
        assert_eq!(
            serde_json::to_string(&row.repaired).unwrap(),
            serde_json::to_string(&col.repaired).unwrap(),
            "{name}: repairs diverged"
        );
        assert_eq!(
            (row.rounds, row.changes, row.conflicts),
            (col.rounds, col.changes, col.conflicts),
            "{name}: chase semantics diverged"
        );
    }
}

/// Dictionary re-encoding: write-through grows the dictionary append-only;
/// the next rebuild (after an insert invalidates the snapshot) re-encodes
/// from live data and drops stranded payloads.
#[test]
fn dictionary_reencodes_on_rebuild() {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for i in 0..6u32 {
        r.insert_row(vec![
            Value::str(format!("k{i}")),
            Value::str("a1"),
            Value::str("b1"),
            Value::Null,
        ])
        .unwrap();
    }
    let dict_len = |rel: &rock::data::Relation| -> usize {
        match &rel.columns().column(AttrId(0)).data {
            ColumnData::Str { dict, .. } => dict.len(),
            other => panic!("k must be a string column, got {other:?}"),
        }
    };
    assert_eq!(dict_len(r), 6, "six distinct keys intern six payloads");
    // overwrite every key with one shared payload: write-through interns
    // append-only, so the dictionary grows rather than shrinks...
    let tids: Vec<TupleId> = r.tids().collect();
    for tid in &tids {
        assert!(r.set_cell(*tid, AttrId(0), Value::str("same")));
    }
    assert_eq!(dict_len(r), 7, "write-through interning is append-only");
    for tid in &tids {
        assert_eq!(r.get(*tid).unwrap().get(AttrId(0)), &Value::str("same"));
    }
    // ...and the rebuild after a structural change re-encodes compactly.
    r.insert_row(vec![
        Value::str("same"),
        Value::str("a1"),
        Value::str("b1"),
        Value::Null,
    ])
    .unwrap();
    assert_eq!(dict_len(r), 1, "rebuild re-encodes live payloads only");
}

/// Null bitmap round-trip: every live cell decodes to exactly the row
/// store's value, nulls included, and `null_mask` agrees with the tuples.
#[test]
fn null_bitmap_roundtrips_exactly() {
    let db = build_db(&[
        (0, 1, 0, None),
        (1, 0, 2, Some(1)),
        (2, 2, 3, None),
        (3, 1, 1, Some(0)),
    ]);
    let rel = db.relation(RelId(0));
    let cols = rel.columns();
    for tid in rel.tids() {
        let t = rel.get(tid).unwrap();
        for (attr, _) in rel.schema.iter_attrs() {
            assert_eq!(
                &cols.value_at(attr, tid.index()),
                t.get(attr),
                "cell ({tid:?}, {attr:?}) diverged"
            );
            assert_eq!(
                cols.null_mask(attr).get(tid.index()),
                t.get(attr).is_null(),
                "null mask diverged at ({tid:?}, {attr:?})"
            );
        }
    }
}

/// Tombstones and `TupleId` stability: deleting a middle tuple leaves the
/// survivors' ids (and their column slots) untouched, and no kernel ever
/// matches the dead slot.
#[test]
fn tombstones_keep_tuple_ids_stable() {
    let mut db = build_db(&[(0, 0, 3, None), (1, 0, 3, None), (2, 1, 0, Some(1))]);
    let r = db.relation_mut(RelId(0));
    let tids: Vec<TupleId> = r.tids().collect();
    assert!(r.delete(tids[1]));
    let cols = r.columns();
    assert!(!cols.live().get(tids[1].index()), "deleted slot stays dead");
    for tid in [tids[0], tids[2]] {
        assert!(cols.live().get(tid.index()), "survivor {tid:?} stays live");
        assert_eq!(
            cols.value_at(AttrId(0), tid.index()),
            r.get(tid).unwrap().get(AttrId(0)).clone(),
            "survivor {tid:?} kept its slot"
        );
    }
    // row 1 had a = 'x' (a % 3 == 0); the tombstoned slot must not match
    // even though its payload bytes are still in the column.
    let hits = cols.eval_const_op(AttrId(1), PredOp::Eq, &Value::str("x"));
    assert!(hits.get(tids[0].index()), "live 'x' row matches");
    assert!(!hits.get(tids[1].index()), "tombstoned row never matches");
}

/// Satellite 6 end-to-end: `Int(3)` and `Float(3.0)` compare equal through
/// both planes — the kernel answer on a heterogeneously-typed column must
/// match the scalar path cell for cell.
#[test]
fn int_float_equality_agrees_between_planes() {
    let schema = DatabaseSchema::new(vec![RelationSchema::of("N", &[("x", AttrType::Int)])]);
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for v in [
        Value::Int(3),
        Value::Float(3.0),
        Value::Float(3.5),
        Value::Int(4),
        Value::Null,
    ] {
        r.insert_row(vec![v]).unwrap();
    }
    let cols = r.columns();
    for op in [
        PredOp::Eq,
        PredOp::Neq,
        PredOp::Lt,
        PredOp::Le,
        PredOp::Gt,
        PredOp::Ge,
    ] {
        for konst in [Value::Int(3), Value::Float(3.0), Value::Float(3.25)] {
            let mask = cols.eval_const_op(AttrId(0), op, &konst);
            for tid in r.tids() {
                let scalar = op.eval(r.get(tid).unwrap().get(AttrId(0)), &konst);
                assert_eq!(
                    mask.get(tid.index()),
                    scalar,
                    "kernel vs scalar diverged: {op:?} {konst:?} at {tid:?}"
                );
            }
        }
    }
    assert_eq!(
        cols.eval_const_op(AttrId(0), PredOp::Eq, &Value::Int(3))
            .count_ones(),
        2,
        "Int(3) matches both Int(3) and Float(3.0)"
    );
}
