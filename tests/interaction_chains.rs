//! The §4.2 interaction chains, asserted explicitly: the errors that need
//! MI → ER → CR (Bank) or MI → ER → MI (Sales) chains are fixed by the
//! unified chase (and by the iterating Rockseq), but NOT by the single-pass
//! RocknoC — the mechanism behind Fig 4(i)/(j)'s ablation gap.

use rock::core::{RockConfig, RockSystem, Variant};
use rock::data::{AttrId, CellRef, RelId, Value};
use rock::workloads::workload::GenConfig;
use rock::workloads::{bank, sales};

fn cfg(seed: u64) -> GenConfig {
    GenConfig {
        rows: 180,
        error_rate: 0.08,
        seed,
        trusted_per_rel: 20,
    }
}

#[test]
fn bank_phone_chain_needs_iteration() {
    // chain: MI fills nulled phones -> ML ER merges cid-corrupted
    // duplicates -> CR repairs the duplicate's cid
    let w = bank::generate(&cfg(23));
    let task = w.task("CNC").unwrap().clone();
    // the chain's targets: corrupted duplicate cids
    let cid_errors: Vec<(CellRef, Value)> = w
        .truth
        .corrupted
        .iter()
        .filter(|(c, _)| c.rel == RelId(bank::rels::CUSTOMER) && c.attr == AttrId(bank::cust::CID))
        .map(|(c, v)| (*c, v.clone()))
        .collect();
    assert!(
        !cid_errors.is_empty(),
        "workload must corrupt duplicate cids"
    );

    let repaired_by = |variant: Variant| {
        let out = RockSystem::new(RockConfig {
            variant,
            ..RockConfig::default()
        })
        .correct(&w, &task);
        cid_errors
            .iter()
            .filter(|(c, correct)| out.repaired.cell(c.rel, c.tid, c.attr) == Some(correct))
            .count()
    };
    let rock = repaired_by(Variant::Rock);
    let seq = repaired_by(Variant::RockSeq);
    let noc = repaired_by(Variant::RockNoC);
    assert!(rock > 0, "the unified chase must complete the chain");
    assert_eq!(rock, seq, "Rockseq iterates to the same result");
    assert!(
        noc < rock,
        "single-pass RocknoC must miss chained cid repairs: noc={noc} rock={rock}"
    );
}

#[test]
fn sales_category_chain_needs_iteration() {
    // chain: MI fills nulled categories -> ER aligns Item↔ItemExt ->
    // MI imputes the manufactory from the aligned external row
    let w = sales::generate(&cfg(29));
    let task = w.task("SClean").unwrap().clone();
    // targets: Item rows whose mfg AND cat were both nulled
    let item = RelId(sales::rels::ITEM);
    let chained: Vec<CellRef> = w
        .truth
        .nulled
        .keys()
        .filter(|c| {
            c.rel == item
                && c.attr == AttrId(sales::item::MFG)
                && w.truth
                    .nulled
                    .contains_key(&CellRef::new(item, c.tid, AttrId(sales::item::CAT)))
        })
        .copied()
        .collect();
    assert!(!chained.is_empty(), "workload must null cat+mfg together");

    let filled_by = |variant: Variant| {
        let out = RockSystem::new(RockConfig {
            variant,
            ..RockConfig::default()
        })
        .correct(&w, &task);
        chained
            .iter()
            .filter(|c| {
                out.repaired
                    .cell(c.rel, c.tid, c.attr)
                    .map(|v| !v.is_null())
                    .unwrap_or(false)
            })
            .count()
    };
    let rock = filled_by(Variant::Rock);
    let noc = filled_by(Variant::RockNoC);
    assert_eq!(rock, chained.len(), "Rock fills every chained manufactory");
    assert!(
        noc < rock,
        "RocknoC misses chained imputations: {noc} vs {rock}"
    );
}

#[test]
fn incremental_correction_handles_new_dirty_rows() {
    let w = rock::workloads::logistics::generate(&cfg(31));
    let task = w.task("RClean").unwrap().clone();
    // a new scan event arrives with a wrong region
    let sample = w
        .dirty
        .relation(RelId(0))
        .iter()
        .next()
        .expect("non-empty")
        .clone();
    let mut values = sample.values.clone();
    values[4] = Value::str("West"); // region that contradicts the city FD
    let delta = rock::data::Delta::new(vec![rock::data::Update::Insert {
        rel: RelId(0),
        eid: rock::data::Eid(999_999),
        values,
    }]);
    let sys = RockSystem::new(RockConfig::default());
    let out = sys.correct_incremental(&w, &task, &delta);
    // the inserted row's region got reconciled with its city group
    let new_tid = rock::data::TupleId(w.dirty.relation(RelId(0)).capacity() as u32);
    let fixed = out.repaired.cell(RelId(0), new_tid, AttrId(4)).unwrap();
    assert_ne!(
        fixed,
        &Value::str("West"),
        "incremental chase must repair the insert"
    );
    assert!(out.changes > 0);
}
