//! Property tests for rule discovery: every accepted rule clears the
//! configured support/confidence thresholds when re-measured, sampled
//! mining never returns rules failing full-data verification, and the
//! Hoeffding helpers are mutually consistent.

use proptest::prelude::*;
use rock::data::{AttrType, Database, DatabaseSchema, RelId, RelationSchema, Value};
use rock::discovery::levelwise::{Discoverer, DiscoveryConfig};
use rock::discovery::sampling::{
    deviation_bound, mine_with_sampling, required_sample, sample_database,
};
use rock::discovery::space::{PredicateSpace, SpaceConfig};
use rock::ml::ModelRegistry;
use rock::rees::measures::measure;
use rock::rees::EvalContext;

fn db_from(rows: &[(u8, u8)]) -> Database {
    let schema = DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[("a", AttrType::Str), ("b", AttrType::Str)],
    )]);
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (a, b) in rows {
        r.insert_row(vec![
            Value::str(format!("a{}", a % 3)),
            Value::str(format!("b{}", b % 3)),
        ])
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Accepted rules re-measure at or above the thresholds.
    #[test]
    fn accepted_rules_clear_thresholds(
        rows in prop::collection::vec((0u8..3, 0u8..3), 4..24),
    ) {
        let db = db_from(&rows);
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let cfg = DiscoveryConfig {
            min_support: 0.01,
            min_confidence: 0.9,
            max_preconditions: 2,
            ..Default::default()
        };
        let report = Discoverer::new(&reg, cfg.clone()).mine_relation(&db, RelId(0), &space);
        let ctx = EvalContext::new(&db, &reg);
        for rule in report.rules.iter() {
            let m = measure(rule, &ctx);
            prop_assert!(m.support() >= cfg.min_support - 1e-12, "{}", rule.name);
            prop_assert!(m.confidence() >= cfg.min_confidence - 1e-12, "{}", rule.name);
        }
    }

    /// Sampled mining: every returned rule passes full-data verification
    /// (the multi-round guarantee of [36]).
    #[test]
    fn sampled_rules_verified_on_full_data(
        rows in prop::collection::vec((0u8..3, 0u8..3), 12..40),
        seed in 0u64..50,
    ) {
        let db = db_from(&rows);
        let reg = ModelRegistry::new();
        let space = PredicateSpace::build(&db, RelId(0), &[], &SpaceConfig::default());
        let cfg = DiscoveryConfig {
            min_support: 0.01,
            min_confidence: 0.9,
            max_preconditions: 1,
            ..Default::default()
        };
        let disc = Discoverer::new(&reg, cfg.clone());
        let report = mine_with_sampling(&disc, &db, RelId(0), &space, 0.5, 0.1, seed);
        let ctx = EvalContext::new(&db, &reg);
        for rule in report.rules.iter() {
            let m = measure(rule, &ctx);
            prop_assert!(m.support() >= cfg.min_support - 1e-12);
            prop_assert!(m.confidence() >= cfg.min_confidence - 1e-12);
        }
    }

    /// Hoeffding helpers invert each other.
    #[test]
    fn hoeffding_inversion(eps in 0.01f64..0.3, delta in 0.001f64..0.2) {
        let n = required_sample(eps, delta);
        prop_assert!(deviation_bound(n, delta) <= eps + 1e-9);
        if n > 1 {
            prop_assert!(deviation_bound(n - 1, delta) > eps - 1e-9);
        }
    }

    /// Sampling preserves schema and respects the requested ratio.
    #[test]
    fn sample_size_is_exact(
        rows in prop::collection::vec((0u8..3, 0u8..3), 1..60),
        ratio_pct in 0u32..=100,
        seed in 0u64..20,
    ) {
        let db = db_from(&rows);
        let ratio = f64::from(ratio_pct) / 100.0;
        let sampled = sample_database(&db, ratio, seed);
        let expect = ((rows.len() as f64) * ratio).round() as usize;
        prop_assert_eq!(sampled.relation(RelId(0)).len(), expect);
    }
}
