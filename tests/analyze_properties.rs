//! Property suite for `rock-analyze` (static ruleset analysis) and the
//! rule-dependency-graph chase scheduling it exports.
//!
//! Four guarantees are pinned down here:
//!
//! 1. **Schedule equivalence** — `ChaseConfig { use_rule_graph: true }`
//!    commits byte-identical repairs to the classic activation oracle
//!    while evaluating a subset of its rule × round pairs (the graph
//!    filter is a `retain()` over the oracle's activation set).
//! 2. **Defect recall** — every defect class seeded by
//!    `rock_workloads::defects` is reported with its expected diagnostic
//!    code on the expected rule, across workloads and seeds (100% recall)
//!    — including the certifier band (`E301`/`W301`/`W302`).
//! 3. **No false positives** — the curated rulesets of all three standard
//!    workloads analyze clean, and injected-defect runs never flag an
//!    original (non-injected) rule.
//! 4. **Certified scheduling** — `ChaseConfig { use_schedule: true }` is
//!    repair-equivalent to the classic oracle, carries a termination
//!    certificate, and the observed rounds never exceed the certified
//!    bound (the runtime check never fires on curated rulesets).

use proptest::prelude::*;
use rock::analyze::Analyzer;
use rock::chase::{ChaseConfig, ChaseEngine, ChaseResult, ConflictPolicy, GateMode};
use rock::data::{AttrType, Database, DatabaseSchema, RelId, RelationSchema, Value};
use rock::ml::ModelRegistry;
use rock::rees::parse_rules;
use rock::workloads::workload::{GenConfig, Workload};
use rock::workloads::{inject_defects, DefectKind};
use rustc_hash::FxHashSet;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new(vec![RelationSchema::of(
        "T",
        &[
            ("k", AttrType::Str),
            ("a", AttrType::Str),
            ("b", AttrType::Str),
            ("c", AttrType::Str),
        ],
    )])
}

/// The `tests/chase_properties.rs` cascade rules (propagation, a constant
/// rule, an ER merge, a null-fill) plus two statically dead rules the
/// analyzer must keep out of every round: an unsatisfiable precondition
/// (`u1`, E101) and a reflexive merge consequence (`d1`, union–find
/// no-op). The oracle evaluates them every round they activate; the graph
/// schedule never does — with identical repairs.
fn rules_text() -> &'static str {
    "rule r1: T(t) && T(s) && t.k = s.k -> t.a = s.a\n\
     rule r2: T(t) && T(s) && t.a = s.a -> t.b = s.b\n\
     rule r3: T(t) && t.a = 'x' -> t.c = 'cx'\n\
     rule r4: T(t) && T(s) && t.k = s.k -> t.eid = s.eid\n\
     rule r5: T(t) && null(t.c) && t.b = 'bz' -> t.c = 'cz'\n\
     rule u1: T(t) && t.a = 'p' && t.a = 'q' -> t.c = 'zz'\n\
     rule d1: T(t) && t.b = 'b1' -> t.eid = t.eid"
}

fn build_db(rows: &[(u8, u8, u8, Option<u8>)]) -> Database {
    let schema = schema();
    let mut db = Database::new(&schema);
    let r = db.relation_mut(RelId(0));
    for (k, a, b, c) in rows {
        r.insert_row(vec![
            Value::str(format!("k{}", k % 4)),
            Value::str(if a % 3 == 0 {
                "x".into()
            } else {
                format!("a{}", a % 3)
            }),
            Value::str(if b % 3 == 0 {
                "bz".into()
            } else {
                format!("b{}", b % 3)
            }),
            match c {
                None => Value::Null,
                Some(v) => Value::str(format!("c{}", v % 2)),
            },
        ])
        .unwrap();
    }
    db
}

/// Repairs must be byte-identical. Round counts may differ by the tail:
/// when the oracle's final activation holds only dead rules, the graph
/// schedule stops a round earlier, so `rounds` is ≤, not =.
fn assert_same_repairs(classic: &ChaseResult, graph: &ChaseResult) {
    assert_eq!(
        serde_json::to_string(&classic.db).unwrap(),
        serde_json::to_string(&graph.db).unwrap(),
        "repaired databases diverged"
    );
    assert_eq!(classic.changes, graph.changes, "change lists diverged");
    assert_eq!(classic.merged_pairs, graph.merged_pairs, "merges diverged");
    assert_eq!(classic.conflicts, graph.conflicts, "conflicts diverged");
    assert_eq!(classic.steps, graph.steps, "steps diverged");
    assert!(graph.rounds <= classic.rounds, "graph mode added rounds");
    assert!(graph.fixes.is_valid());
}

fn rule_rounds(r: &ChaseResult) -> usize {
    r.round_stats.iter().map(|s| s.active_rules).sum()
}

/// A `use_schedule` run must carry a certificate the chase respected: no
/// violation, observed rounds within the resolved bound, and non-negative
/// per-round bound margins.
fn assert_certified(run: &ChaseResult, name: &str) {
    let cert = run
        .certification
        .as_ref()
        .unwrap_or_else(|| panic!("{name}: schedule run must carry a certificate"));
    assert!(
        cert.violation.is_none(),
        "{name}: certified bound violated: {:?}",
        cert.violation
    );
    match cert.resolved_bound {
        Some(bound) => {
            assert!(
                run.rounds as u64 <= bound,
                "{name}: {} rounds exceed certified bound {bound}",
                run.rounds
            );
            for s in &run.round_stats {
                assert!(
                    s.bound_margin >= 0,
                    "{name}: negative bound margin {}",
                    s.bound_margin
                );
                assert!(
                    s.strata >= 1 || s.active_rules == 0,
                    "{name}: active round reports no strata"
                );
            }
        }
        None => assert_eq!(
            cert.class,
            rock::rees::TerminationClass::Unbounded,
            "{name}: only unbounded rulesets may lack a resolved bound"
        ),
    }
}

fn pruned_total(r: &ChaseResult) -> usize {
    r.round_stats.iter().map(|s| s.rules_pruned).sum()
}

// Default-configured blocks: CI's global `PROPTEST_CASES=64` governs them.
proptest! {
    /// Graph scheduling ≡ classic activation, across gate modes, the
    /// semi-naive/full-rescan mechanisms and the naive-activation
    /// ablation, with strictly fewer rule × round pairs (the two dead
    /// rules never activate).
    #[test]
    fn graph_schedule_equals_classic(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..12),
        strict in any::<bool>(),
        semi_naive in any::<bool>(),
        lazy in any::<bool>(),
    ) {
        let schema = schema();
        let rs = rock::rees::RuleSet::new(parse_rules(rules_text(), &schema).unwrap());
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let run = |use_rule_graph: bool| {
            let cfg = ChaseConfig {
                gate: if strict { GateMode::Strict } else { GateMode::Resolved },
                semi_naive,
                lazy_activation: lazy,
                use_rule_graph,
                ..ChaseConfig::default()
            };
            ChaseEngine::new(&rs, &reg, cfg).run(&db, &[])
        };
        let classic = run(false);
        let graph = run(true);
        assert_same_repairs(&classic, &graph);
        prop_assert!(rule_rounds(&graph) < rule_rounds(&classic),
            "graph {} !< classic {}", rule_rounds(&graph), rule_rounds(&classic));
        // both dead rules are pruned from the very first activation
        prop_assert_eq!(graph.round_stats[0].rules_pruned, 2);
        prop_assert_eq!(pruned_total(&classic), 0);
    }

    /// Same equivalence through `run_incremental`: seeded activation is
    /// filtered by the same graph, over random ΔDs.
    #[test]
    fn graph_schedule_equals_classic_incremental(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 3..10),
        edits in prop::collection::vec((0u8..10, 0u8..4, prop::option::of(0u8..3)), 1..6),
    ) {
        use rock::data::{AttrId, Delta, TupleId, Update};
        let schema = schema();
        let rs = rock::rees::RuleSet::new(parse_rules(rules_text(), &schema).unwrap());
        let db = build_db(&rows);
        let updates: Vec<Update> = edits
            .iter()
            .map(|(t, attr, v)| Update::SetCell {
                rel: RelId(0),
                tid: TupleId(*t as u32 % rows.len() as u32),
                attr: AttrId(*attr as u16),
                value: match v {
                    None => Value::Null,
                    Some(x) => Value::str(format!("v{x}")),
                },
            })
            .collect();
        let delta = Delta::new(updates);
        let reg = ModelRegistry::new();
        let run = |use_rule_graph: bool| {
            let cfg = ChaseConfig { use_rule_graph, ..ChaseConfig::default() };
            ChaseEngine::new(&rs, &reg, cfg).run_incremental(&db, &[], &delta).unwrap()
        };
        let classic = run(false);
        let graph = run(true);
        assert_same_repairs(&classic, &graph);
        prop_assert!(rule_rounds(&graph) <= rule_rounds(&classic));
    }

    /// Certified stratified scheduling ≡ classic activation on the
    /// synthetic cascade, across gate modes and evaluation mechanisms —
    /// and the run always stays inside its certificate.
    #[test]
    fn certified_schedule_equals_classic(
        rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3, prop::option::of(0u8..2)), 2..12),
        strict in any::<bool>(),
        semi_naive in any::<bool>(),
    ) {
        let schema = schema();
        let rs = rock::rees::RuleSet::new(parse_rules(rules_text(), &schema).unwrap());
        let db = build_db(&rows);
        let reg = ModelRegistry::new();
        let run = |use_schedule: bool| {
            let cfg = ChaseConfig {
                gate: if strict { GateMode::Strict } else { GateMode::Resolved },
                semi_naive,
                use_schedule,
                ..ChaseConfig::default()
            };
            ChaseEngine::new(&rs, &reg, cfg).run(&db, &[])
        };
        let classic = run(false);
        let sched = run(true);
        assert_same_repairs(&classic, &sched);
        prop_assert!(classic.certification.is_none(), "classic runs are uncertified");
        assert_certified(&sched, "synthetic");
        prop_assert!(rule_rounds(&sched) <= rule_rounds(&classic));
    }

    /// The ISSUE acceptance property on real workloads: `use_schedule`
    /// repairs byte-identically to the classic oracle on all three
    /// standard workloads with no more rule × round pairs, and every
    /// curated ruleset earns a finite-bound termination certificate.
    #[test]
    fn certified_schedule_equals_classic_on_workloads(
        which in 0usize..3,
        rows in 8usize..32,
    ) {
        let cfg = GenConfig { rows, ..GenConfig::default() };
        let w = match which {
            0 => rock::workloads::bank::generate(&cfg),
            1 => rock::workloads::logistics::generate(&cfg),
            _ => rock::workloads::sales::generate(&cfg),
        };
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let run = |use_schedule: bool| {
            let cfg = ChaseConfig {
                max_rounds: 32,
                policy: policy.clone(),
                use_schedule,
                ..ChaseConfig::default()
            };
            let engine = ChaseEngine::new(&w.rules, &w.registry, cfg);
            let engine = match &w.graph {
                Some(g) => engine.with_graph(g),
                None => engine,
            };
            engine.run(&w.dirty, &w.trusted)
        };
        let classic = run(false);
        let sched = run(true);
        assert_same_repairs(&classic, &sched);
        prop_assert!(rule_rounds(&sched) <= rule_rounds(&classic));
        assert_certified(&sched, "workload");
        let cert = sched.certification.as_ref().unwrap();
        prop_assert!(
            cert.bound.is_some() && cert.resolved_bound.is_some(),
            "curated ruleset must earn a finite-bound certificate, got {:?}",
            cert.class
        );
    }

    /// Defect recall is seed-independent: every injected defect is
    /// reported with its expected code on its expected rule.
    #[test]
    fn injected_defects_all_flagged(seed in 0u64..32) {
        let w = rock::workloads::bank::generate(&GenConfig {
            rows: 40,
            ..GenConfig::default()
        });
        check_recall(&w, seed);
    }
}

fn check_recall(w: &Workload, seed: u64) {
    let schema = w.dirty.schema();
    let (defective, injected) = inject_defects(&w.rules, &schema, seed, &DefectKind::ALL);
    let report = Analyzer::new(&schema).analyze(&defective);
    for d in &injected {
        assert!(
            report
                .diagnostics
                .iter()
                .any(|diag| diag.rule == d.rule_name && diag.code == d.expected),
            "defect {:?} on '{}' not reported as {}; got {:#?}",
            d.kind,
            d.rule_name,
            d.expected.as_str(),
            report.diagnostics
        );
    }
    // no spillover: every diagnostic names an injected rule, never one of
    // the curated originals
    let originals: FxHashSet<&str> = w.rules.iter().map(|r| r.name.as_str()).collect();
    for diag in &report.diagnostics {
        assert!(
            !originals.contains(diag.rule.as_str()),
            "curated rule '{}' falsely flagged: {diag}",
            diag.rule
        );
    }
}

/// 100% recall on every workload's curated base (the proptest above
/// fuzzes seeds on bank; this pins all three workloads deterministically).
#[test]
fn injected_defects_flagged_on_all_workloads() {
    let cfg = GenConfig {
        rows: 40,
        ..GenConfig::default()
    };
    for w in [
        rock::workloads::bank::generate(&cfg),
        rock::workloads::logistics::generate(&cfg),
        rock::workloads::sales::generate(&cfg),
    ] {
        for seed in [1, 5, 9] {
            check_recall(&w, seed);
        }
    }
}

/// Zero false positives: the curated rulesets are clean oracles.
#[test]
fn curated_rulesets_analyze_clean() {
    let cfg = GenConfig {
        rows: 40,
        ..GenConfig::default()
    };
    for (name, w) in [
        ("bank", rock::workloads::bank::generate(&cfg)),
        ("logistics", rock::workloads::logistics::generate(&cfg)),
        ("sales", rock::workloads::sales::generate(&cfg)),
    ] {
        let schema = w.dirty.schema();
        let report = Analyzer::new(&schema).analyze(&w.rules);
        assert!(
            report.is_clean(),
            "{name} curated rules flagged: {:#?}",
            report.diagnostics
        );
        assert_eq!(report.exit_code(), 0);
        // every curated ruleset earns a finite-bound termination
        // certificate — the certifier never refuses a bound on them
        assert_ne!(
            report.schedule.class,
            rock::rees::TerminationClass::Unbounded,
            "{name} curated rules must certify as terminating"
        );
        assert!(
            report.schedule.bound.is_some(),
            "{name} curated rules must earn a finite round bound"
        );
    }
}

/// The acceptance benchmark: on the standard workloads the graph-driven
/// chase repairs byte-identically while evaluating no more rule × round
/// pairs than the classic schedule — and strictly fewer on the
/// defect-augmented bank run (the `rock-analyze --defects` demo shape),
/// whose dead rules the classic schedule keeps re-evaluating.
#[test]
fn graph_chase_matches_classic_on_workloads() {
    let cfg = GenConfig {
        rows: 80,
        ..GenConfig::default()
    };
    let bank = rock::workloads::bank::generate(&cfg);
    let logistics = rock::workloads::logistics::generate(&cfg);
    let sales = rock::workloads::sales::generate(&cfg);
    let bank_defective = {
        let schema = bank.dirty.schema();
        inject_defects(&bank.rules, &schema, 7, &DefectKind::ALL).0
    };
    let mut strict_somewhere = false;
    let runs: [(&str, &Workload, &rock::rees::RuleSet); 4] = [
        ("bank", &bank, &bank.rules),
        ("bank+defects", &bank, &bank_defective),
        ("logistics", &logistics, &logistics.rules),
        ("sales", &sales, &sales.rules),
    ];
    for (name, w, rules) in runs {
        let policy = ConflictPolicy {
            mc: w.registry.id("Mc"),
            mrank: ["Mstatus", "Mtier", "Mrank"]
                .iter()
                .find_map(|n| w.registry.id(n)),
        };
        let run = |use_rule_graph: bool| {
            let cfg = ChaseConfig {
                max_rounds: 32,
                policy: policy.clone(),
                use_rule_graph,
                ..ChaseConfig::default()
            };
            let engine = ChaseEngine::new(rules, &w.registry, cfg);
            let engine = match &w.graph {
                Some(g) => engine.with_graph(g),
                None => engine,
            };
            engine.run(&w.dirty, &w.trusted)
        };
        let classic = run(false);
        let graph = run(true);
        assert_same_repairs(&classic, &graph);
        let (on, off) = (rule_rounds(&graph), rule_rounds(&classic));
        assert!(on <= off, "{name}: graph schedule grew ({on} > {off})");
        if name == "bank+defects" {
            assert!(
                pruned_total(&graph) > 0 && on < off,
                "{name}: dead rules must be pruned ({on} vs {off})"
            );
        }
        if on < off {
            strict_somewhere = true;
        }
    }
    assert!(
        strict_somewhere,
        "graph scheduling pruned nothing on any standard workload"
    );
}
