//! # Rock — cleaning data by embedding ML in logic rules
//!
//! Facade crate re-exporting the whole Rock workspace. See the README for a
//! quickstart and `DESIGN.md` for the crate map. The sub-crates:
//!
//! * [`data`] — relational substrate (values, schemas, temporal relations).
//! * [`kg`] — knowledge graphs for the extraction predicates.
//! * [`ml`] — embedded-ML substrate (pair classifiers, `Mrank`, `Mc`/`Md`,
//!   HER, LSH blocking, model registry).
//! * [`rees`] — the REE++ rule language.
//! * [`analyze`] — static analysis over rulesets: typed diagnostics and
//!   the rule-dependency graph the chase can schedule with.
//! * [`chase`] — the unified ER+CR+MI+TD chase engine with certain fixes.
//! * [`discovery`] — rule discovery (levelwise, sampling, top-k, anytime).
//! * [`detect`] — batch and incremental error detection.
//! * [`crystal`] — the distributed substrate (consistent hashing, block
//!   store, work-stealing scheduler).
//! * [`core`] — the end-to-end Rock system facade and its ablation
//!   variants.
//! * [`baselines`] — ES, T5s, RB, SparkSQL-sim, Presto-sim.
//! * [`workloads`] — synthetic Bank / Logistics / Sales generators with
//!   seeded error injection.

pub use rock_analyze as analyze;
pub use rock_baselines as baselines;
pub use rock_chase as chase;
pub use rock_core as core;
pub use rock_crystal as crystal;
pub use rock_data as data;
pub use rock_detect as detect;
pub use rock_discovery as discovery;
pub use rock_kg as kg;
pub use rock_ml as ml;
pub use rock_rees as rees;
pub use rock_workloads as workloads;
